//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand 0.8` APIs the workspace actually uses are
//! re-implemented here and wired in as a path dependency. The generator
//! behind [`rngs::SmallRng`] is xoshiro256++ (the same family the real
//! `SmallRng` uses on 64-bit targets), seeded through a SplitMix64
//! expansion. Streams are deterministic and high-quality, but are not
//! guaranteed to be bit-identical to the upstream crate; seed-sensitive
//! tests in the workspace pin their expectations against *this*
//! implementation.

// Vendored stand-in: exempt from workspace lint policy.
#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type returned by fallible RNG operations.
///
/// The generators in this crate are infallible, so this is never actually
/// constructed; it exists so signatures like `try_fill_bytes` match the
/// upstream trait.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure. Never fails here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod distributions {
    //! The subset of `rand::distributions` the workspace relies on.

    use super::RngCore;

    /// The standard distribution: uniform over a type's natural range
    /// (`[0, 1)` for floats).
    pub struct Standard;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u8> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
            rng.next_u32() as u8
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits, uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128).wrapping_add(draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    let mut out = [0u8; std::mem::size_of::<$t>()];
                    rng.fill_bytes(&mut out);
                    return <$t>::from_le_bytes(out);
                }
                let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128).wrapping_add(draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = distributions::Distribution::sample(&distributions::Standard, rng);
                let v = self.start + (self.end - self.start) * unit;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit: $t = distributions::Distribution::sample(&distributions::Standard, rng);
                start + (end - start) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = self.gen();
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// Returns the raw xoshiro256++ state words (for checkpointing).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from raw state words previously returned by
        /// [`SmallRng::state`]. The all-zero state is remapped exactly as
        /// `from_seed` does, so a round-trip is always a valid generator.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return SmallRng {
                    s: [
                        0x9E37_79B9_7F4A_7C15,
                        0xBF58_476D_1CE4_E5B9,
                        0x94D0_49BB_1331_11EB,
                        0x2545_F491_4F6C_DD1D,
                    ],
                };
            }
            SmallRng { s }
        }

        #[inline]
        fn step(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(0..=5u32);
            assert!(j <= 5);
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.try_fill_bytes(&mut buf).unwrap();
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn gen_bool_is_biased_by_p() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
