//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize` / `Deserialize` impls for the value-based facade in
//! the vendored `serde` crate. The parser walks the raw token stream by hand
//! (no `syn`/`quote` available offline) and supports the shapes this
//! workspace uses:
//!
//! * named-field structs (field attrs `#[serde(default)]`, `#[serde(skip)]`)
//! * newtype and tuple structs (serialized transparently / as arrays)
//! * unit structs (serialized as `null`)
//! * externally-tagged enums with unit, newtype, tuple, or struct variants
//!
//! Generics are not supported; deriving on a generic type is a compile
//! error with a clear message.

// Vendored stand-in: exempt from workspace lint policy.
#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    render(&parsed, Mode::Ser).parse().expect("generated impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    render(&parsed, Mode::De).parse().expect("generated impl")
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    default: bool,
    skip: bool,
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes leading attributes, returning (default, skip) flags gathered
    /// from any `#[serde(...)]` among them.
    fn eat_attrs(&mut self) -> (bool, bool) {
        let mut default = false;
        let mut skip = false;
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next();
            let Some(TokenTree::Group(group)) = self.next() else {
                panic!("serde derive: expected attribute body after `#`");
            };
            let mut inner = group.stream().into_iter();
            if let Some(TokenTree::Ident(id)) = inner.next() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.next() {
                        for t in args.stream() {
                            if let TokenTree::Ident(arg) = t {
                                match arg.to_string().as_str() {
                                    "default" => default = true,
                                    "skip" => skip = true,
                                    other => panic!(
                                        "serde derive: unsupported serde attribute `{other}`"
                                    ),
                                }
                            }
                        }
                    }
                }
            }
        }
        (default, skip)
    }

    /// Consumes an optional `pub` / `pub(...)` visibility.
    fn eat_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            self.next();
            if matches!(
                self.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive: expected {what}, got {other:?}"),
        }
    }

    /// Skips a type, stopping before a top-level `,` (or at end of stream).
    fn skip_type(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) => match p.as_char() {
                    ',' if depth == 0 => return,
                    '<' => {
                        depth += 1;
                        self.next();
                    }
                    '>' => {
                        depth -= 1;
                        self.next();
                    }
                    '-' => {
                        // `->` in fn-pointer types: consume both so the `>`
                        // is not mistaken for a generic close.
                        self.next();
                        if matches!(self.peek(), Some(TokenTree::Punct(q)) if q.as_char() == '>') {
                            self.next();
                        }
                    }
                    _ => {
                        self.next();
                    }
                },
                _ => {
                    self.next();
                }
            }
        }
    }
}

fn parse(input: TokenStream) -> Input {
    let mut cur = Cursor::new(input);
    cur.eat_attrs();
    cur.eat_visibility();
    let keyword = cur.expect_ident("`struct` or `enum`");
    let name = cur.expect_ident("type name");
    if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive: generic types are not supported by the vendored serde_derive");
    }
    let kind = match keyword.as_str() {
        "struct" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde derive: unexpected struct body {other:?}"),
        },
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde derive: cannot derive for `{other}` items"),
    };
    Input { name, kind }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let (default, skip) = cur.eat_attrs();
        cur.eat_visibility();
        let name = cur.expect_ident("field name");
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field `{name}`, got {other:?}"),
        }
        cur.skip_type();
        // Trailing comma between fields.
        if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            cur.next();
        }
        fields.push(Field {
            name,
            default,
            skip,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut count = 0;
    while !cur.at_end() {
        cur.eat_attrs();
        cur.eat_visibility();
        cur.skip_type();
        count += 1;
        if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            cur.next();
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cur.at_end() {
        cur.eat_attrs();
        let name = cur.expect_ident("variant name");
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                cur.next();
                VariantFields::Named(parse_named_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                cur.next();
                VariantFields::Tuple(count_tuple_fields(inner))
            }
            _ => VariantFields::Unit,
        };
        if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            cur.next();
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---- code generation -------------------------------------------------------

fn render(input: &Input, mode: Mode) -> String {
    let name = &input.name;
    let body = match (&input.kind, mode) {
        (Kind::NamedStruct(fields), Mode::Ser) => ser_named_struct(name, fields),
        (Kind::NamedStruct(fields), Mode::De) => de_named_struct(name, fields),
        (Kind::TupleStruct(len), Mode::Ser) => ser_tuple_struct(*len),
        (Kind::TupleStruct(len), Mode::De) => de_tuple_struct(name, *len),
        (Kind::UnitStruct, Mode::Ser) => "::serde::Value::Null".to_string(),
        (Kind::UnitStruct, Mode::De) => format!(
            "match __v {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), \
             _ => ::std::result::Result::Err(::serde::Error::custom(\
             \"expected null for unit struct {name}\")) }}"
        ),
        (Kind::Enum(variants), Mode::Ser) => ser_enum(name, variants),
        (Kind::Enum(variants), Mode::De) => de_enum(name, variants),
    };
    match mode {
        Mode::Ser => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
             }}"
        ),
        Mode::De => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
             }}"
        ),
    }
}

fn ser_named_struct(_name: &str, fields: &[Field]) -> String {
    let mut out = String::from(
        "let mut __entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields.iter().filter(|f| !f.skip) {
        let fname = &f.name;
        out.push_str(&format!(
            "__entries.push((::std::string::String::from(\"{fname}\"), \
             ::serde::Serialize::to_value(&self.{fname})));\n"
        ));
    }
    out.push_str("::serde::Value::Map(__entries)");
    out
}

fn de_named_struct(name: &str, fields: &[Field]) -> String {
    let mut out = format!(
        "let __map = match __v.as_map() {{ Some(__m) => __m, \
         None => return ::std::result::Result::Err(::serde::Error::custom(\
         \"expected map for struct {name}\")) }};\n\
         ::std::result::Result::Ok({name} {{\n"
    );
    for f in fields {
        let fname = &f.name;
        if f.skip {
            out.push_str(&format!("{fname}: ::std::default::Default::default(),\n"));
        } else {
            let missing = if f.default {
                "::std::default::Default::default()".to_string()
            } else {
                format!(
                    "return ::std::result::Result::Err(\
                     ::serde::Error::missing_field(\"{name}\", \"{fname}\"))"
                )
            };
            out.push_str(&format!(
                "{fname}: match ::serde::__find(__map, \"{fname}\") {{ \
                 Some(__x) => ::serde::Deserialize::from_value(__x)?, \
                 None => {missing} }},\n"
            ));
        }
    }
    out.push_str("})");
    out
}

fn ser_tuple_struct(len: usize) -> String {
    if len == 1 {
        "::serde::Serialize::to_value(&self.0)".to_string()
    } else {
        let items: Vec<String> = (0..len)
            .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
            .collect();
        format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
    }
}

fn de_tuple_struct(name: &str, len: usize) -> String {
    if len == 1 {
        return format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        );
    }
    let mut out = format!(
        "let __items = match __v.as_seq() {{ Some(__s) if __s.len() == {len} => __s, \
         _ => return ::std::result::Result::Err(::serde::Error::custom(\
         \"expected sequence of {len} for {name}\")) }};\n\
         ::std::result::Result::Ok({name}(\n"
    );
    for i in 0..len {
        out.push_str(&format!(
            "::serde::Deserialize::from_value(&__items[{i}])?,\n"
        ));
    }
    out.push_str("))");
    out
}

fn ser_enum(name: &str, variants: &[Variant]) -> String {
    let mut out = String::from("match self {\n");
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            VariantFields::Unit => out.push_str(&format!(
                "{name}::{vname} => \
                 ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
            )),
            VariantFields::Tuple(len) => {
                let binds: Vec<String> = (0..*len).map(|i| format!("__f{i}")).collect();
                let payload = if *len == 1 {
                    "::serde::Serialize::to_value(__f0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                };
                out.push_str(&format!(
                    "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![\
                     (::std::string::String::from(\"{vname}\"), {payload})]),\n",
                    binds.join(", ")
                ));
            }
            VariantFields::Named(fields) => {
                let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                let mut payload = String::from(
                    "{ let mut __fields: ::std::vec::Vec<(::std::string::String, \
                     ::serde::Value)> = ::std::vec::Vec::new();\n",
                );
                for f in fields.iter().filter(|f| !f.skip) {
                    let fname = &f.name;
                    payload.push_str(&format!(
                        "__fields.push((::std::string::String::from(\"{fname}\"), \
                         ::serde::Serialize::to_value({fname})));\n"
                    ));
                }
                payload.push_str("::serde::Value::Map(__fields) }");
                out.push_str(&format!(
                    "{name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![\
                     (::std::string::String::from(\"{vname}\"), {payload})]),\n",
                    binds.join(", ")
                ));
            }
        }
    }
    out.push_str("}");
    out
}

fn de_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            VariantFields::Unit => {
                unit_arms.push_str(&format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                ));
            }
            VariantFields::Tuple(len) => {
                let body = if *len == 1 {
                    format!(
                        "::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__inner)?))"
                    )
                } else {
                    let mut b = format!(
                        "let __items = match __inner.as_seq() {{ \
                         Some(__s) if __s.len() == {len} => __s, \
                         _ => return ::std::result::Result::Err(::serde::Error::custom(\
                         \"expected sequence of {len} for {name}::{vname}\")) }};\n\
                         ::std::result::Result::Ok({name}::{vname}(\n"
                    );
                    for i in 0..*len {
                        b.push_str(&format!(
                            "::serde::Deserialize::from_value(&__items[{i}])?,\n"
                        ));
                    }
                    b.push_str("))");
                    b
                };
                tagged_arms.push_str(&format!("\"{vname}\" => {{ {body} }}\n"));
            }
            VariantFields::Named(fields) => {
                let mut body = format!(
                    "let __map = match __inner.as_map() {{ Some(__m) => __m, \
                     None => return ::std::result::Result::Err(::serde::Error::custom(\
                     \"expected map for variant {name}::{vname}\")) }};\n\
                     ::std::result::Result::Ok({name}::{vname} {{\n"
                );
                for f in fields {
                    let fname = &f.name;
                    if f.skip {
                        body.push_str(&format!("{fname}: ::std::default::Default::default(),\n"));
                    } else {
                        let missing = if f.default {
                            "::std::default::Default::default()".to_string()
                        } else {
                            format!(
                                "return ::std::result::Result::Err(\
                                 ::serde::Error::missing_field(\
                                 \"{name}::{vname}\", \"{fname}\"))"
                            )
                        };
                        body.push_str(&format!(
                            "{fname}: match ::serde::__find(__map, \"{fname}\") {{ \
                             Some(__x) => ::serde::Deserialize::from_value(__x)?, \
                             None => {missing} }},\n"
                        ));
                    }
                }
                body.push_str("})");
                tagged_arms.push_str(&format!("\"{vname}\" => {{ {body} }}\n"));
            }
        }
    }
    format!(
        "match __v {{\n\
         ::serde::Value::Str(__s) => match __s.as_str() {{\n\
         {unit_arms}\
         __other => ::std::result::Result::Err(::serde::Error::custom(\
         ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
         }},\n\
         ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
         let (__tag, __inner) = &__entries[0];\n\
         match __tag.as_str() {{\n\
         {tagged_arms}\
         __other => ::std::result::Result::Err(::serde::Error::custom(\
         ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
         }}\n\
         }},\n\
         __other => ::std::result::Result::Err(::serde::Error::custom(\
         ::std::format!(\"expected enum {name}, got {{}}\", __other.kind()))),\n\
         }}"
    )
}
