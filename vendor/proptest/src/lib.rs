//! Offline stand-in for the `proptest` crate.
//!
//! Implements the macro and strategy surface this workspace uses —
//! `proptest!`, `prop_assert!`, `prop_assert_eq!`, range/tuple strategies,
//! `prop::collection::{vec, btree_set}`, `prop::bool::ANY`, `prop_map`, and
//! `ProptestConfig::with_cases` — over a deterministic per-case RNG. There
//! is no shrinking: a failing case reports its case number and seed, and
//! re-running reproduces it exactly (cases are seeded from the test name
//! and case index, not from global state).

// Vendored stand-in: exempt from workspace lint policy.
#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
use std::collections::BTreeSet;
use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies; deterministic per (test name, case index).
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Creates the RNG for one test case.
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index, so every
        // property gets its own reproducible stream.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(hash ^ (u64::from(case) << 32 | u64::from(case))),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11)
);

/// A strategy producing a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};
    use rand::RngCore;

    /// Uniform over `true` / `false`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical instance of [`Any`].
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u32() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{BTreeSet, Range, Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with a target size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates sets whose elements come from `element`. If the element
    /// domain is too small to reach the drawn size, a smaller set is
    /// produced (mirroring proptest's duplicate-tolerant behaviour).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 10 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod strategy {
    //! Re-exports mirroring proptest's module layout.
    pub use super::{Just, Map, Strategy};
}

pub mod test_runner {
    //! The per-property driver behind `proptest!`.

    use super::{ProptestConfig, TestRng};

    /// Runs `body` once per configured case with a deterministic RNG.
    ///
    /// # Panics
    ///
    /// Re-raises the first panicking case after reporting its number, so
    /// the failure is reproducible by rerunning the same test binary.
    pub fn run<F: FnMut(&mut TestRng)>(config: &ProptestConfig, name: &str, mut body: F) {
        for case in 0..config.cases {
            let mut rng = TestRng::for_case(name, case);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
            if let Err(payload) = outcome {
                let total = config.cases;
                eprintln!("proptest: property `{name}` failed at case {case}/{total}");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use super::strategy::{Just, Strategy};
    pub use super::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! `prop::collection::vec(...)`, `prop::bool::ANY`, ...
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines property tests. Each function body runs for many random cases
/// with its parameters drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); ) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                $body
            });
        }
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = super::TestRng::for_case("ranges", 0);
        for _ in 0..200 {
            let x = Strategy::generate(&(3u32..9), &mut rng);
            assert!((3..9).contains(&x));
            let f = Strategy::generate(&(-1.0f64..2.0), &mut rng);
            assert!((-1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = super::TestRng::for_case("vecs", 0);
        let strat = prop::collection::vec(0u8..10, 2..5);
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 10));
        }
    }

    #[test]
    fn btree_set_strategy_is_duplicate_tolerant() {
        let mut rng = super::TestRng::for_case("sets", 0);
        let strat = prop::collection::btree_set(0u8..3, 0..10);
        for _ in 0..50 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!(s.len() <= 3);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|c| {
                let mut rng = super::TestRng::for_case("det", c);
                Strategy::generate(&(0u64..1000), &mut rng)
            })
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| {
                let mut rng = super::TestRng::for_case("det", c);
                Strategy::generate(&(0u64..1000), &mut rng)
            })
            .collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        fn macro_draws_and_maps(xs in prop::collection::vec(0u32..5, 0..6), flag in prop::bool::ANY) {
            prop_assert!(xs.len() < 6);
            let doubled = (0u32..4).prop_map(|x| x * 2);
            let mut rng = crate::TestRng::for_case("inner", 0);
            let d = Strategy::generate(&doubled, &mut rng);
            prop_assert_eq!(d % 2, 0);
            let _ = flag;
        }
    }
}
