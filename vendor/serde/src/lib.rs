//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! small serialization surface the workspace needs under the same names the
//! real `serde` exposes: `Serialize` / `Deserialize` traits plus derive
//! macros of the same names (re-exported from the companion `serde_derive`
//! path crate). Instead of the real visitor-based data model, both traits
//! go through an owned [`Value`] tree; `serde_json` (also vendored) renders
//! and parses that tree.
//!
//! Supported shapes are exactly what the workspace uses: primitives,
//! strings, `Option`, `Vec`, tuples, `BTreeMap` with string/integer keys,
//! structs (named / newtype / tuple / unit), and externally-tagged enums
//! with unit or struct variants. Field attributes `#[serde(default)]` and
//! `#[serde(skip)]` are honoured; unknown fields are ignored on input.

// Vendored stand-in: exempt from workspace lint policy.
#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned, JSON-shaped value tree: the data model both traits target.
///
/// Maps preserve insertion order so serialized field order matches
/// declaration order, like `serde_json` compact output.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of a map value, if this is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of a sequence value, if this is a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up `key` in a map value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short description of the value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Error produced when a [`Value`] cannot be interpreted as the requested
/// type.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    #[must_use]
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// Creates a "missing field" error.
    #[must_use]
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error {
            msg: format!("missing field `{field}` while deserializing {ty}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Finds `key` among map entries. Used by derive-generated code.
#[doc(hidden)]
#[must_use]
pub fn __find<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A type that can be converted to a [`Value`].
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitives ------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) if *n <= i64::MAX as u64 => *n as i64,
                    Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => *f as i64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error::custom(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// A `Value` serializes to itself, so derived types can embed opaque
// sub-documents (e.g. extension state captured by a trait object).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---- containers ------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = v.as_seq().ok_or_else(|| {
                    Error::custom(format!("expected sequence of {LEN}, got {}", v.kind()))
                })?;
                if items.len() != LEN {
                    return Err(Error::custom(format!(
                        "expected sequence of {LEN}, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// A type usable as a map key: rendered to and from an object-key string.
pub trait MapKey: Sized {
    /// The key as a string.
    fn to_map_key(&self) -> String;
    /// Parses the key back from a string.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the string does not parse.
    fn from_map_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_map_key(&self) -> String {
        self.clone()
    }
    fn from_map_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_map_key(&self) -> String {
                self.to_string()
            }
            fn from_map_key(s: &str) -> Result<Self, Error> {
                s.parse()
                    .map_err(|_| Error::custom(format!("invalid map key `{s}`")))
            }
        }
    )*};
}

impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_map_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| Error::custom(format!("expected map, got {}", v.kind())))?;
        entries
            .iter()
            .map(|(k, val)| Ok((K::from_map_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!((f64::from_value(&1.5f64.to_value()).unwrap() - 1.5).abs() < 1e-12);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_and_vec_round_trip() {
        let v: Option<f64> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn btreemap_integer_keys_become_strings() {
        let mut m = BTreeMap::new();
        m.insert(3u8, 0.5f64);
        let v = m.to_value();
        assert_eq!(v.get("3"), Some(&Value::F64(0.5)));
        assert_eq!(BTreeMap::<u8, f64>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn tuples_round_trip() {
        let t = (1.0f64, 2.0f64);
        assert_eq!(<(f64, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn mismatched_shapes_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(Vec::<u32>::from_value(&Value::Bool(true)).is_err());
        assert!(<(f64, f64)>::from_value(&Value::Seq(vec![Value::F64(1.0)])).is_err());
    }
}
