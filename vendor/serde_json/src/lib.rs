//! Offline stand-in for the `serde_json` crate.
//!
//! Provides `to_string`, `to_string_pretty`, and `from_str` over the
//! value-based facade in the vendored `serde` crate. Compact output matches
//! real `serde_json` byte-for-byte for the shapes this workspace emits
//! (`:` and `,` with no spaces, fields in declaration order), which some
//! tests rely on when splicing rendered JSON.

// Vendored stand-in: exempt from workspace lint policy.
#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
use std::fmt;

pub use serde::Value;

/// Error produced by JSON parsing or by a value-shape mismatch.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Returns an [`Error`] if the value contains a non-finite float.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (two-space indent).
///
/// # Errors
///
/// Returns an [`Error`] if the value contains a non-finite float.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0)?;
    Ok(out)
}

/// Deserializes a value of type `T` from a JSON string.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---- rendering -------------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<&str>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // Match serde_json: integral floats keep a trailing `.0`.
            if f.fract() == 0.0 && f.abs() < 1e16 {
                out.push_str(&format!("{f:.1}"));
            } else {
                let mut buf = ryu_like(*f);
                if !buf.contains('.') && !buf.contains('e') && !buf.contains("inf") {
                    buf.push_str(".0");
                }
                out.push_str(&buf);
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            write_break(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            write_break(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn write_break(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Shortest-ish float rendering: Rust's `{}` for f64 is already shortest
/// round-trip, matching what `serde_json` produces for typical values.
fn ryu_like(f: f64) -> String {
    format!("{f}")
}

// ---- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // workspace; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Multi-byte UTF-8: validate exactly this code point's
                    // bytes. Validating the whole remaining input here (as a
                    // `from_utf8(&bytes[pos..])` would) turns string parsing
                    // quadratic, which megabyte-scale documents cannot afford.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(Error::new("invalid UTF-8 in string")),
                    };
                    let end = self.pos + len;
                    let c = self
                        .bytes
                        .get(self.pos..end)
                        .and_then(|cp| std::str::from_utf8(cp).ok())
                        .and_then(|cp| cp.chars().next())
                        .ok_or_else(|| Error::new("invalid UTF-8 in string"))?;
                    out.push(c);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_has_no_spaces() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::U64(1)),
            ("b".to_string(), Value::Str("x".to_string())),
        ]);
        struct Raw(Value);
        impl serde::Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        assert_eq!(to_string(&Raw(v)).unwrap(), r#"{"a":1,"b":"x"}"#);
    }

    #[test]
    fn parses_nested_structures() {
        let v: Vec<Vec<f64>> = from_str("[[1.0, 2.5], [], [3e2]]").unwrap();
        assert_eq!(v, vec![vec![1.0, 2.5], vec![], vec![300.0]]);
    }

    #[test]
    fn round_trips_strings_with_escapes() {
        let s = "line\nbreak \"quoted\" back\\slash \u{7}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn floats_keep_trailing_zero() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        let back: f64 = from_str("3.0").unwrap();
        assert_eq!(back, 3.0);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("nope").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<f64>("1.0 trailing").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn integers_survive_exactly() {
        let n: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(n, u64::MAX);
        let m: i64 = from_str("-42").unwrap();
        assert_eq!(m, -42);
    }

    #[test]
    fn round_trips_multibyte_strings() {
        let s = "km² · raccourci — ✓ 城".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
        // Invalid UTF-8 mid-string is a parse error, not a panic.
        let bad = String::from_utf8(vec![b'"', 0xC3, b'"']);
        assert!(bad.is_err() || from_str::<String>(&bad.unwrap()).is_err());
        assert!(from_str::<String>("\"\u{80}").is_err(), "unterminated");
    }

    #[test]
    fn string_parsing_scales_linearly() {
        // A megabyte-scale document must parse in linear time: per-character
        // validation of the remaining input would take minutes here.
        let big = "é".repeat(1 << 20);
        let t0 = std::time::Instant::now();
        let back: String = from_str(&to_string(&big).unwrap()).unwrap();
        assert_eq!(back.len(), big.len());
        assert!(
            t0.elapsed().as_secs() < 20,
            "string parsing looks superlinear: {:?}",
            t0.elapsed()
        );
    }
}
