//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro and method surface the workspace's benches use —
//! `criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`, `Bencher::iter` / `iter_batched`, `black_box` — with
//! a simple wall-clock measurement loop instead of criterion's statistical
//! machinery. Good enough to keep `cargo bench` runnable and to spot
//! order-of-magnitude regressions by eye.

// Vendored stand-in: exempt from workspace lint policy.
#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup between measurements.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// One setup per routine invocation.
    SmallInput,
    /// Same behaviour here as [`BatchSize::SmallInput`].
    LargeInput,
    /// Same behaviour here as [`BatchSize::SmallInput`].
    PerIteration,
}

/// Drives the measured routine.
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Measures `routine` with a fresh `setup` value per invocation;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The top-level bench context.
pub struct Criterion {
    samples: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 20 }
    }
}

impl Criterion {
    /// Applies command-line configuration. Accepted for signature parity;
    /// the stand-in has no tunable CLI options.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.samples, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            samples: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    samples: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n as u64);
        self
    }

    /// Sets the measurement time. Accepted for parity; unused here.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        let samples = self.samples.unwrap_or(self.parent.samples);
        run_one(&label, samples, &mut f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: u64, f: &mut F) {
    let mut b = Bencher {
        samples,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if samples == 0 {
        Duration::ZERO
    } else {
        b.elapsed / u32::try_from(samples).unwrap_or(u32::MAX)
    };
    println!("bench: {name:<50} {per_iter:>12.2?}/iter ({samples} samples)");
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        Criterion { samples: 5 }.bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 5);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut seen = Vec::new();
        let mut counter = 0u32;
        Criterion { samples: 3 }.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    counter += 1;
                    counter
                },
                |input| seen.push(input),
                BatchSize::SmallInput,
            );
        });
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(4);
        g.bench_function("inner", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 4);
    }
}
