//! Integration tests for the kernel's protocol-facing API surface:
//! cancellation, contact queries, energy accounting, sampling, and the
//! less-travelled SimApi paths.

use dtn_sim::buffer::InsertOutcome;
use dtn_sim::kernel::{ScheduledMessage, SimApi, SimulationBuilder};
use dtn_sim::prelude::*;

fn msg(at: f64, source: u32, size: u64) -> ScheduledMessage {
    ScheduledMessage {
        at: SimTime::from_secs(at),
        source: NodeId(source),
        size_bytes: size,
        ttl_secs: 100_000.0,
        priority: Priority::High,
        quality: Quality::new(0.8),
        ground_truth: vec![Keyword(1)],
        source_tags: vec![Keyword(1)],
        expected_destinations: vec![NodeId(1)],
    }
}

/// A protocol that sends on creation and then cancels its own transfer on
/// the first tick after a trigger time.
#[derive(Debug)]
struct CancelAfter {
    cancel_at: f64,
    cancelled: bool,
    cancel_result: Option<bool>,
}

impl Protocol for CancelAfter {
    fn on_message_created(&mut self, api: &mut SimApi, node: NodeId, message: MessageId) {
        for peer in api.peers_of(node) {
            api.send(node, peer, message);
        }
    }

    fn on_tick(&mut self, api: &mut SimApi) {
        if !self.cancelled && api.now().as_secs() >= self.cancel_at {
            self.cancelled = true;
            self.cancel_result = Some(api.cancel_send(NodeId(0), NodeId(1), MessageId(0)));
        }
    }
}

#[test]
fn cancel_send_aborts_a_pending_transfer() {
    // 10 MB at 250 kB/s = 40 s of airtime; cancel at t = 5 s.
    let mut sim = SimulationBuilder::new(Area::new(500.0, 500.0), 1)
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(50.0, 0.0))))
        .message(msg(1.0, 0, 10_000_000))
        .build(CancelAfter {
            cancel_at: 5.0,
            cancelled: false,
            cancel_result: None,
        });
    let summary = sim.run_until(SimTime::from_secs(60.0));
    assert_eq!(sim.protocol().cancel_result, Some(true), "cancel succeeded");
    assert_eq!(summary.relays_completed, 0);
    assert_eq!(summary.transfers_aborted, 1, "cancel counted as abort");
    assert!(!sim.api().buffer(NodeId(1)).contains(MessageId(0)));
}

#[test]
fn cancel_send_returns_false_when_nothing_pending() {
    let mut sim = SimulationBuilder::new(Area::new(500.0, 500.0), 1)
        .node(Box::new(Stationary))
        .node(Box::new(Stationary))
        .build(CancelAfter {
            cancel_at: 1.0,
            cancelled: false,
            cancel_result: None,
        });
    let _ = sim.run_until(SimTime::from_secs(5.0));
    assert_eq!(sim.protocol().cancel_result, Some(false));
}

/// A protocol that records what it observes about contacts and energy.
#[derive(Debug, Default)]
struct Recorder {
    contact_seen: bool,
    up_since_checked: bool,
    energy_after_transfer: f64,
}

impl Protocol for Recorder {
    fn on_message_created(&mut self, api: &mut SimApi, node: NodeId, message: MessageId) {
        for peer in api.peers_of(node) {
            api.send(node, peer, message);
        }
    }

    fn on_contact_up(&mut self, api: &mut SimApi, a: NodeId, b: NodeId) {
        self.contact_seen = true;
        assert!(api.in_contact(a, b));
        assert!(api.contact_up_since(a, b).is_some());
        assert!(api.distance(a, b) <= api.radio().range_m);
        self.up_since_checked = true;
    }

    fn on_transfer_complete(&mut self, api: &mut SimApi, r: &Reception<'_>) {
        assert!(r.tx_joules > 0.0);
        assert!(r.rx_joules > 0.0);
        assert!(r.rx_joules < r.tx_joules, "path loss attenuates reception");
        self.energy_after_transfer = api.energy_usage(r.transfer.from).tx_joules;
        assert!(matches!(r.outcome, InsertOutcome::Stored { .. }));
    }
}

#[test]
fn contact_and_energy_queries_are_consistent() {
    let mut sim = SimulationBuilder::new(Area::new(500.0, 500.0), 1)
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(80.0, 0.0))))
        .message(msg(1.0, 0, 1_000_000))
        .build(Recorder::default());
    let _ = sim.run_until(SimTime::from_secs(30.0));
    let recorder = sim.protocol();
    assert!(recorder.contact_seen);
    assert!(recorder.up_since_checked);
    assert!(recorder.energy_after_transfer > 0.0);
    // Kernel-side meter agrees with the reception report.
    assert!(sim.api().energy_usage(NodeId(1)).rx_joules > 0.0);
    assert_eq!(sim.api().energy_usage(NodeId(1)).tx_joules, 0.0);
}

/// Samples pushed by a protocol end up in the summary's named series.
#[derive(Debug, Default)]
struct Sampler;

impl Protocol for Sampler {
    fn on_tick(&mut self, api: &mut SimApi) {
        let t = api.now().as_secs();
        if (t as u64).is_multiple_of(10) {
            api.push_sample("tens", t);
        }
    }
}

#[test]
fn pushed_samples_appear_in_summary() {
    let mut sim = SimulationBuilder::new(Area::new(100.0, 100.0), 1)
        .node(Box::new(Stationary))
        .build(Sampler);
    let summary = sim.run_until(SimTime::from_secs(35.0));
    let series = &summary.series["tens"];
    assert_eq!(series.len(), 4, "t = 0, 10, 20, 30");
    assert!(series.windows(2).all(|w| w[1].0 - w[0].0 == 10.0));
}

#[test]
fn stillborn_message_counts_as_created_but_never_moves() {
    // A message bigger than the source's buffer is created (counted) but
    // cannot be stored, so it never transfers.
    let mut sim = SimulationBuilder::new(Area::new(500.0, 500.0), 1)
        .buffer_capacity(1_000)
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(50.0, 0.0))))
        .message(msg(1.0, 0, 10_000))
        .build(NullProtocol);
    let summary = sim.run_until(SimTime::from_secs(30.0));
    assert_eq!(summary.created, 1);
    assert_eq!(summary.relays_completed, 0);
    assert!(sim.api().buffer(NodeId(0)).is_empty());
}

#[test]
fn node_ids_enumerate_the_world() {
    let sim = SimulationBuilder::new(Area::new(100.0, 100.0), 1)
        .nodes(5, || Box::new(Stationary))
        .build(NullProtocol);
    let ids: Vec<NodeId> = sim.api().node_ids().collect();
    assert_eq!(ids, (0..5).map(NodeId).collect::<Vec<_>>());
    assert_eq!(sim.api().node_count(), 5);
    assert_eq!(sim.api().area(), Area::new(100.0, 100.0));
}

#[test]
fn body_lookup_tracks_created_messages() {
    let mut sim = SimulationBuilder::new(Area::new(100.0, 100.0), 1)
        .node(Box::new(Stationary))
        .message(ScheduledMessage {
            expected_destinations: vec![],
            ..msg(3.0, 0, 500)
        })
        .build(NullProtocol);
    assert!(sim.api().body(MessageId(0)).is_none(), "not created yet");
    let _ = sim.run_until(SimTime::from_secs(10.0));
    let body = sim.api().body(MessageId(0)).expect("created");
    assert_eq!(body.source, NodeId(0));
    assert_eq!(body.size_bytes, 500);
    assert!(sim.api().body(MessageId(99)).is_none());
}

#[test]
fn mark_delivered_for_unknown_message_is_refused() {
    /// Tries to mark a never-created message as delivered.
    #[derive(Debug, Default)]
    struct Bogus {
        result: Option<bool>,
    }
    impl Protocol for Bogus {
        fn on_tick(&mut self, api: &mut SimApi) {
            if self.result.is_none() {
                self.result = Some(api.mark_delivered(NodeId(0), MessageId(77)));
            }
        }
    }
    let mut sim = SimulationBuilder::new(Area::new(100.0, 100.0), 1)
        .node(Box::new(Stationary))
        .build(Bogus::default());
    let summary = sim.run_until(SimTime::from_secs(5.0));
    assert_eq!(sim.protocol().result, Some(false));
    assert_eq!(summary.delivered_pairs, 0);
}

#[test]
fn smaller_steps_preserve_delivery_outcomes() {
    // Halving the step must not change whether an easy delivery happens
    // (finer steps refine timing, not reachability).
    let run = |step: f64| {
        let mut sim = SimulationBuilder::new(Area::new(500.0, 500.0), 5)
            .step(SimDuration::from_secs(step))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(60.0, 0.0))))
            .message(msg(5.0, 0, 1_000_000))
            .build(Recorder::default());
        sim.run_until(SimTime::from_secs(120.0))
    };
    let coarse = run(1.0);
    let fine = run(0.5);
    assert_eq!(coarse.relays_completed, 1);
    assert_eq!(fine.relays_completed, 1);
    assert_eq!(coarse.relay_bytes, fine.relay_bytes);
}

#[test]
fn send_queue_len_tracks_backlog() {
    /// Enqueues three big transfers at once and reads back the queue depth.
    #[derive(Debug, Default)]
    struct Backlogger {
        depth_seen: usize,
    }
    impl Protocol for Backlogger {
        fn on_message_created(&mut self, api: &mut SimApi, node: NodeId, message: MessageId) {
            for peer in api.peers_of(node) {
                api.send(node, peer, message);
            }
            self.depth_seen = self.depth_seen.max(api.send_queue_len(node));
        }
    }
    let mut sim = SimulationBuilder::new(Area::new(500.0, 500.0), 5)
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(60.0, 0.0))))
        .messages((0..3u32).map(|k| msg(5.0, 0, 80_000_000 + u64::from(k)))) // same step
        .build(Backlogger::default());
    let _ = sim.run_until(SimTime::from_secs(20.0));
    assert!(
        sim.protocol().depth_seen >= 2,
        "transfers serialized behind one radio: {}",
        sim.protocol().depth_seen
    );
}

#[test]
fn trace_records_a_message_lifecycle() {
    let mut sim = SimulationBuilder::new(Area::new(500.0, 500.0), 5)
        .trace(TraceLog::unbounded())
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(60.0, 0.0))))
        .message(ScheduledMessage {
            ttl_secs: 30.0,
            ..msg(5.0, 0, 1_000_000)
        })
        .build(Recorder::default());
    let _ = sim.run_until(SimTime::from_secs(200.0));
    let trace = sim.api().trace();
    assert!(trace.is_enabled());
    let history = trace.history_of(MessageId(0));
    let kinds: Vec<&str> = history
        .iter()
        .map(|e| match e.event {
            TraceEvent::Created { .. } => "created",
            TraceEvent::Transferred { .. } => "transferred",
            TraceEvent::Delivered { .. } => "delivered",
            TraceEvent::Expired { .. } => "expired",
            _ => "other",
        })
        .collect();
    // (Recorder never calls mark_delivered, so the lifecycle here is
    // create → transfer → TTL expiry on both copies.)
    assert!(kinds.starts_with(&["created", "transferred"]), "{kinds:?}");
    assert!(
        kinds.iter().filter(|k| **k == "expired").count() >= 1,
        "TTL purge traced"
    );
    // Contact events are present in the full log but not in per-message history.
    assert!(trace
        .entries()
        .iter()
        .any(|e| matches!(e.event, TraceEvent::ContactUp { .. })));
    assert!(!trace.render().is_empty());
}

#[test]
fn trace_disabled_by_default() {
    let mut sim = SimulationBuilder::new(Area::new(500.0, 500.0), 5)
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(60.0, 0.0))))
        .message(msg(5.0, 0, 1_000_000))
        .build(Recorder::default());
    let _ = sim.run_until(SimTime::from_secs(60.0));
    assert!(!sim.api().trace().is_enabled());
    assert!(sim.api().trace().entries().is_empty());
}
