//! Property-based tests over the simulator substrate.

use proptest::prelude::*;

use dtn_sim::buffer::{Buffer, DropPolicy, InsertOutcome};
use dtn_sim::contact::{ContactKey, ContactTable};
use dtn_sim::geometry::{Area, Point};
use dtn_sim::message::{Keyword, MessageBody, MessageCopy, MessageId, Priority, Quality};
use dtn_sim::mobility::{MobilityModel, RandomWalk, RandomWaypoint};
use dtn_sim::radio::RadioConfig;
use dtn_sim::rng::SimRng;
use dtn_sim::time::{SimDuration, SimTime};
use dtn_sim::world::{NodeId, SpatialGrid};
use std::sync::Arc;

fn copy(id: u64, size: u64, received: f64) -> MessageCopy {
    let body = Arc::new(MessageBody {
        id: MessageId(id),
        source: NodeId(0),
        created_at: SimTime::from_secs(received),
        size_bytes: size,
        ttl_secs: 10_000.0,
        priority: Priority::Medium,
        quality: Quality::new(0.5),
        ground_truth: vec![Keyword(0)],
    });
    MessageCopy::original(body, vec![Keyword(0)], SimTime::from_secs(received))
}

proptest! {
    /// The buffer never exceeds its capacity and its byte accounting always
    /// matches the sum of stored copies, under arbitrary insert/remove
    /// sequences and any drop policy.
    #[test]
    fn buffer_accounting_is_exact(
        capacity in 1_000u64..100_000,
        policy_pick in 0u8..3,
        ops in prop::collection::vec((0u64..50, 100u64..40_000, 0.0f64..1000.0, prop::bool::ANY), 1..60)
    ) {
        let policy = match policy_pick {
            0 => DropPolicy::RejectNew,
            1 => DropPolicy::DropOldest,
            _ => DropPolicy::DropLowestPriority,
        };
        let mut buf = Buffer::new(capacity, policy);
        for (id, size, at, insert) in ops {
            if insert {
                let _ = buf.insert(copy(id, size, at));
            } else {
                let _ = buf.remove(MessageId(id));
            }
            prop_assert!(buf.used_bytes() <= buf.capacity_bytes());
            let actual: u64 = buf.iter().map(|c| c.size_bytes()).sum();
            prop_assert_eq!(actual, buf.used_bytes());
            prop_assert_eq!(buf.len(), buf.ids_sorted().len());
        }
    }

    /// An insert outcome of `Stored` always leaves the copy present; a
    /// rejected insert leaves the buffer untouched.
    #[test]
    fn insert_outcomes_are_consistent(
        sizes in prop::collection::vec(100u64..50_000, 1..30)
    ) {
        let mut buf = Buffer::new(60_000, DropPolicy::DropOldest);
        for (i, size) in sizes.into_iter().enumerate() {
            let before_used = buf.used_bytes();
            let id = MessageId(i as u64);
            match buf.insert(copy(i as u64, size, i as f64)) {
                InsertOutcome::Stored { .. } => prop_assert!(buf.contains(id)),
                InsertOutcome::Rejected(_) => {
                    prop_assert!(!buf.contains(id));
                    prop_assert_eq!(buf.used_bytes(), before_used);
                }
            }
        }
    }

    /// The spatial grid finds exactly the brute-force pair set for any
    /// layout and range.
    #[test]
    fn grid_matches_brute_force(
        points in prop::collection::vec((0.0f64..2000.0, 0.0f64..1500.0), 0..50),
        range in 1.0f64..500.0
    ) {
        let area = Area::new(2000.0, 1500.0);
        let positions: Vec<Point> = points.into_iter().map(|(x, y)| Point::new(x, y)).collect();
        let mut grid = SpatialGrid::new(area, range);
        grid.rebuild(&positions);
        let mut got = std::collections::BTreeSet::new();
        let mut ordered = true;
        grid.for_each_pair_within(&positions, range, |a, b| {
            ordered &= a < b;
            got.insert((a.0, b.0));
        });
        prop_assert!(ordered, "pairs are reported with the smaller id first");
        let mut expected = std::collections::BTreeSet::new();
        for i in 0..positions.len() {
            for j in i + 1..positions.len() {
                if positions[i].distance_to(positions[j]) <= range {
                    expected.insert((i as u32, j as u32));
                }
            }
        }
        prop_assert_eq!(got, expected);
    }

    /// Mobility models never leave the world area and never exceed their
    /// speed bound per step.
    #[test]
    fn mobility_respects_bounds(
        seed in 0u64..1000,
        steps in 1usize..200,
        dt in 0.1f64..5.0
    ) {
        let area = Area::new(300.0, 300.0);
        let mut rng = SimRng::new(seed);
        let mut wp = RandomWaypoint::new(0.5, 2.0, 10.0);
        let mut walk = RandomWalk::new(3.0);
        let mut p_wp = wp.initial_position(area, &mut rng);
        let mut p_walk = walk.initial_position(area, &mut rng);
        for _ in 0..steps {
            let d = SimDuration::from_secs(dt);
            let next_wp = wp.step(p_wp, d, area, &mut rng);
            prop_assert!(area.contains(next_wp));
            prop_assert!(next_wp.distance_to(p_wp) <= 2.0 * dt + 1e-9);
            p_wp = next_wp;
            let next_walk = walk.step(p_walk, d, area, &mut rng);
            prop_assert!(area.contains(next_walk));
            prop_assert!(next_walk.distance_to(p_walk) <= 3.0 * dt + 1e-9);
            p_walk = next_walk;
        }
    }

    /// Contact diffs preserve the invariant: active set == last in-range
    /// set, and every up is eventually matched by at most one down.
    #[test]
    fn contact_table_tracks_in_range_sets(
        frames in prop::collection::vec(
            prop::collection::btree_set((0u32..8, 0u32..8), 0..10),
            1..20
        )
    ) {
        let mut table = ContactTable::new();
        let mut t = 0.0;
        for frame in frames {
            let keys: Vec<ContactKey> = frame
                .into_iter()
                .filter(|(a, b)| a != b)
                .map(|(a, b)| ContactKey::new(NodeId(a), NodeId(b)))
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            t += 1.0;
            let _ = table.diff(&keys, SimTime::from_secs(t));
            prop_assert_eq!(table.active_count(), keys.len());
            for k in &keys {
                prop_assert!(table.is_up(k.0, k.1));
            }
        }
    }

    /// Friis reception power is monotone non-increasing in distance and
    /// never exceeds the transmit power.
    #[test]
    fn friis_monotone(d1 in 0.0f64..10_000.0, d2 in 0.0f64..10_000.0) {
        let radio = RadioConfig::paper_default();
        let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let p_near = radio.rx_power(near);
        let p_far = radio.rx_power(far);
        prop_assert!(p_near >= p_far);
        prop_assert!(p_near <= radio.tx_power_w + 1e-12);
        prop_assert!(p_far > 0.0);
    }

    /// Message copies: enrichment never duplicates a keyword; the keyword
    /// list is duplicate-free; hop records grow by exactly one per arrival.
    #[test]
    fn message_copy_invariants(
        tags in prop::collection::vec(0u32..20, 1..10),
        enrichments in prop::collection::vec((0u32..20, 1u32..5), 0..20)
    ) {
        let mut tags_dedup = tags.clone();
        tags_dedup.sort_unstable();
        tags_dedup.dedup();
        let body = Arc::new(MessageBody {
            id: MessageId(1),
            source: NodeId(0),
            created_at: SimTime::ZERO,
            size_bytes: 100,
            ttl_secs: 100.0,
            priority: Priority::High,
            quality: Quality::new(1.0),
            ground_truth: tags_dedup.iter().map(|&t| Keyword(t)).collect(),
        });
        let mut c = MessageCopy::original(
            body,
            tags.iter().map(|&t| Keyword(t)).collect(),
            SimTime::ZERO,
        );
        let mut hops = 0usize;
        #[allow(clippy::explicit_counter_loop)] // hops counts arrivals, not iterations per se
        for (kw, node) in enrichments {
            let before = c.keywords().len();
            let added = c.enrich(Keyword(kw), NodeId(node), SimTime::from_secs(1.0));
            let after = c.keywords().len();
            prop_assert_eq!(after, before + usize::from(added));
            c = c.arrived_at(NodeId(node), SimTime::from_secs(1.0));
            hops += 1;
            prop_assert_eq!(c.hop_count(), hops);
        }
        let kws = c.keywords();
        let set: std::collections::BTreeSet<Keyword> = kws.iter().copied().collect();
        prop_assert_eq!(set.len(), kws.len(), "keywords stay duplicate-free");
    }

    /// Derived RNG streams are insensitive to sibling-stream consumption.
    #[test]
    fn rng_streams_are_independent(seed in 0u64..10_000, label in 0u64..1_000) {
        use rand::RngCore;
        let root = SimRng::new(seed);
        let mut direct = root.stream(label);
        // Interleave: consume an unrelated stream first.
        let mut noise = root.stream(label.wrapping_add(1));
        let _ = noise.next_u64();
        let mut after = root.stream(label);
        prop_assert_eq!(direct.next_u64(), after.next_u64());
    }
}
