//! Integration tests for the finite-battery model.

use dtn_sim::kernel::{ScheduledMessage, SimApi, SimulationBuilder};
use dtn_sim::prelude::*;

fn msg(at: f64, source: u32, size: u64) -> ScheduledMessage {
    ScheduledMessage {
        at: SimTime::from_secs(at),
        source: NodeId(source),
        size_bytes: size,
        ttl_secs: 100_000.0,
        priority: Priority::High,
        quality: Quality::new(0.8),
        ground_truth: vec![Keyword(1)],
        source_tags: vec![Keyword(1)],
        expected_destinations: vec![NodeId(1)],
    }
}

/// Pushes everything to everyone, marking node 1's receptions delivered.
#[derive(Debug, Default)]
struct Flood;

impl Protocol for Flood {
    fn on_contact_up(&mut self, api: &mut SimApi, a: NodeId, b: NodeId) {
        for (from, to) in [(a, b), (b, a)] {
            for id in api.buffer(from).ids_sorted() {
                if !api.buffer(to).contains(id) {
                    api.send(from, to, id);
                }
            }
        }
    }

    fn on_message_created(&mut self, api: &mut SimApi, node: NodeId, message: MessageId) {
        for peer in api.peers_of(node) {
            api.send(node, peer, message);
        }
    }

    fn on_transfer_complete(&mut self, api: &mut SimApi, r: &Reception<'_>) {
        api.mark_delivered(r.transfer.to, r.transfer.message);
        let to = r.transfer.to;
        let id = r.transfer.message;
        for peer in api.peers_of(to) {
            if !api.buffer(peer).contains(id) {
                api.send(to, peer, id);
            }
        }
    }
}

#[test]
fn transmitter_battery_depletes_and_radio_dies() {
    // Each 1 MB transfer costs the sender 0.1 W × 4 s = 0.4 J. Energy is
    // charged at transfer completion and depletion takes effect at the
    // contact layer, so a transfer that *starts* on a live battery still
    // completes (the radio's last gasp): a 1 J battery yields three
    // transfers (0.4, 0.8, then 1.2 J — dead), never a fourth.
    let mut sim = SimulationBuilder::new(Area::new(500.0, 500.0), 1)
        .battery_joules(1.0)
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(50.0, 0.0))))
        .messages((0..5u32).map(|k| msg(10.0 + f64::from(k) * 30.0, 0, 1_000_000)))
        .build(Flood);
    let summary = sim.run_until(SimTime::from_secs(600.0));
    assert_eq!(
        summary.relays_completed, 3,
        "three transfers, then the radio dies"
    );
    assert!(sim.api().is_depleted(NodeId(0)));
    assert_eq!(sim.api().battery_remaining(NodeId(0)), Some(0.0));
    assert_eq!(sim.api().depleted_count(), 1);
    // The receiver spent only reception power, far below 1 J.
    assert!(!sim.api().is_depleted(NodeId(1)));
    // The dead radio's contact went down.
    assert!(!sim.api().in_contact(NodeId(0), NodeId(1)));
}

#[test]
fn depletion_kills_subsequent_traffic() {
    // A 0.5 J battery: the first transfer completes (0.4 J), the second
    // starts while still alive and completes as the last gasp (0.8 J);
    // everything after that is dead air.
    let mut sim = SimulationBuilder::new(Area::new(500.0, 500.0), 1)
        .battery_joules(0.5)
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(50.0, 0.0))))
        .messages([
            msg(10.0, 0, 1_000_000),
            msg(20.0, 0, 1_000_000),
            msg(60.0, 0, 1_000_000),
        ])
        .build(Flood);
    let summary = sim.run_until(SimTime::from_secs(300.0));
    assert_eq!(summary.relays_completed, 2);
    assert!(sim.api().is_depleted(NodeId(0)));
    assert!(!sim.api().in_contact(NodeId(0), NodeId(1)));
}

#[test]
fn ideal_power_never_depletes() {
    let mut sim = SimulationBuilder::new(Area::new(500.0, 500.0), 1)
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(50.0, 0.0))))
        .messages((0..20u32).map(|k| msg(5.0 + f64::from(k) * 10.0, 0, 1_000_000)))
        .build(Flood);
    let summary = sim.run_until(SimTime::from_secs(600.0));
    assert_eq!(summary.relays_completed, 20);
    assert_eq!(sim.api().depleted_count(), 0);
    assert!(sim.api().battery_remaining(NodeId(0)).is_none());
}

#[test]
fn dead_nodes_partition_the_network() {
    // Chain n0—n1—n2; n1's battery dies after relaying a couple messages,
    // cutting n0 off from n2 for the rest of the run.
    let mut sim = SimulationBuilder::new(Area::new(500.0, 500.0), 1)
        .battery_joules(1.3) // ~1 relayed message (rx+2×tx across contacts)
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(90.0, 0.0))))
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(180.0, 0.0))))
        .messages((0..8u32).map(|k| ScheduledMessage {
            expected_destinations: vec![NodeId(2)],
            ..msg(10.0 + f64::from(k) * 40.0, 0, 1_000_000)
        }))
        .build(Flood);
    let summary = sim.run_until(SimTime::from_secs(600.0));
    assert!(
        summary.delivered_pairs < 8,
        "the relay died before moving everything: {} delivered",
        summary.delivered_pairs
    );
    assert!(summary.delivered_pairs >= 1, "it did relay something first");
}
