//! Structured event tracing.
//!
//! A [`TraceLog`] records the kernel's externally-visible events — contacts,
//! transfers, deliveries, expiries — as typed entries with timestamps. It is
//! opt-in (zero cost when disabled): attach one with
//! [`crate::kernel::SimulationBuilder::trace`] and read it back from
//! [`crate::kernel::SimApi::trace`] or after the run. The CLI's `--trace`
//! flag and the debugging examples are built on it, and tests use it to
//! assert *sequences* of behavior rather than only aggregate counters.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::message::MessageId;
use crate::time::SimTime;
use crate::world::NodeId;

/// One traced kernel event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A contact came up.
    ContactUp {
        /// Smaller endpoint.
        a: NodeId,
        /// Larger endpoint.
        b: NodeId,
    },
    /// A contact went down.
    ContactDown {
        /// Smaller endpoint.
        a: NodeId,
        /// Larger endpoint.
        b: NodeId,
    },
    /// A message was created at its source.
    Created {
        /// The new message.
        message: MessageId,
        /// Its source.
        source: NodeId,
    },
    /// A transfer finished and the copy reached the receiver's buffer
    /// (`stored` is false for duplicates / no-room rejections).
    Transferred {
        /// The message moved.
        message: MessageId,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Whether the receiver kept the copy.
        stored: bool,
    },
    /// A transfer was aborted.
    Aborted {
        /// The message that did not make it.
        message: MessageId,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// A first delivery was recorded for the statistics.
    Delivered {
        /// The message delivered.
        message: MessageId,
        /// The destination.
        to: NodeId,
    },
    /// Copies were purged by TTL at a node.
    Expired {
        /// The purged message.
        message: MessageId,
        /// Where it expired.
        at: NodeId,
    },
    /// The fault layer crashed a node.
    NodeCrashed {
        /// The crashed node.
        node: NodeId,
    },
    /// A crashed node came back up.
    NodeRebooted {
        /// The rebooted node.
        node: NodeId,
    },
    /// The fault layer cut an active link.
    LinkCut {
        /// Smaller endpoint.
        a: NodeId,
        /// Larger endpoint.
        b: NodeId,
    },
    /// The fault layer drained a node's battery.
    BatterySpike {
        /// The drained node.
        node: NodeId,
    },
    /// The fault layer destroyed a completed transfer's payload in flight.
    TransferLost {
        /// The lost message.
        message: MessageId,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// The fault layer corrupted a completed transfer's payload.
    TransferCorrupted {
        /// The corrupted message.
        message: MessageId,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// The recovery layer scheduled a retry of an aborted transfer.
    RetryScheduled {
        /// The message to redeliver.
        message: MessageId,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// 1-based retry attempt number.
        attempt: u32,
    },
    /// An enqueue resumed from a saved partial-transfer checkpoint.
    TransferResumed {
        /// The resumed message.
        message: MessageId,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// The recovery layer gave up on a queued retry (copy or demand gone).
    RetryAbandoned {
        /// The abandoned message.
        message: MessageId,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::ContactUp { a, b } => write!(f, "contact-up {a}<->{b}"),
            TraceEvent::ContactDown { a, b } => write!(f, "contact-down {a}<->{b}"),
            TraceEvent::Created { message, source } => write!(f, "created {message} @ {source}"),
            TraceEvent::Transferred {
                message,
                from,
                to,
                stored,
            } => write!(
                f,
                "transfer {message} {from}->{to}{}",
                if stored { "" } else { " (dropped)" }
            ),
            TraceEvent::Aborted { message, from, to } => {
                write!(f, "abort {message} {from}->{to}")
            }
            TraceEvent::Delivered { message, to } => write!(f, "delivered {message} -> {to}"),
            TraceEvent::Expired { message, at } => write!(f, "expired {message} @ {at}"),
            TraceEvent::NodeCrashed { node } => write!(f, "crash {node}"),
            TraceEvent::NodeRebooted { node } => write!(f, "reboot {node}"),
            TraceEvent::LinkCut { a, b } => write!(f, "link-cut {a}<->{b}"),
            TraceEvent::BatterySpike { node } => write!(f, "battery-spike {node}"),
            TraceEvent::TransferLost { message, from, to } => {
                write!(f, "lost {message} {from}->{to}")
            }
            TraceEvent::TransferCorrupted { message, from, to } => {
                write!(f, "corrupt {message} {from}->{to}")
            }
            TraceEvent::RetryScheduled {
                message,
                from,
                to,
                attempt,
            } => {
                write!(f, "retry #{attempt} {message} {from}->{to}")
            }
            TraceEvent::TransferResumed { message, from, to } => {
                write!(f, "resume {message} {from}->{to}")
            }
            TraceEvent::RetryAbandoned { message, from, to } => {
                write!(f, "abandon {message} {from}->{to}")
            }
        }
    }
}

/// A timestamped trace entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// When the event happened.
    pub at: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

/// An in-memory, optionally bounded event log.
#[derive(Debug, Default)]
pub struct TraceLog {
    enabled: bool,
    capacity: Option<usize>,
    dropped: u64,
    entries: Vec<TraceEntry>,
}

impl TraceLog {
    /// An enabled, unbounded log.
    #[must_use]
    pub fn unbounded() -> Self {
        TraceLog {
            enabled: true,
            capacity: None,
            dropped: 0,
            entries: Vec::new(),
        }
    }

    /// An enabled log that keeps at most `capacity` entries (later events
    /// are counted but not stored).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceLog {
            enabled: true,
            capacity: Some(capacity),
            dropped: 0,
            entries: Vec::new(),
        }
    }

    /// A disabled log: [`TraceLog::record`] is a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        TraceLog::default()
    }

    /// Whether recording is active.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled or full).
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if let Some(cap) = self.capacity {
            if self.entries.len() >= cap {
                self.dropped += 1;
                return;
            }
        }
        self.entries.push(TraceEntry { at, event });
    }

    /// The recorded entries, in order.
    #[must_use]
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of events discarded after the capacity filled.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Entries concerning `message`, in order.
    #[must_use]
    pub fn history_of(&self, message: MessageId) -> Vec<TraceEntry> {
        self.entries
            .iter()
            .filter(|e| match e.event {
                TraceEvent::Created { message: m, .. }
                | TraceEvent::Transferred { message: m, .. }
                | TraceEvent::Aborted { message: m, .. }
                | TraceEvent::Delivered { message: m, .. }
                | TraceEvent::Expired { message: m, .. }
                | TraceEvent::TransferLost { message: m, .. }
                | TraceEvent::TransferCorrupted { message: m, .. }
                | TraceEvent::RetryScheduled { message: m, .. }
                | TraceEvent::TransferResumed { message: m, .. }
                | TraceEvent::RetryAbandoned { message: m, .. } => m == message,
                TraceEvent::ContactUp { .. }
                | TraceEvent::ContactDown { .. }
                | TraceEvent::NodeCrashed { .. }
                | TraceEvent::NodeRebooted { .. }
                | TraceEvent::LinkCut { .. }
                | TraceEvent::BatterySpike { .. } => false,
            })
            .copied()
            .collect()
    }

    /// Captures the recorded entries and overflow count for a snapshot.
    /// The `enabled`/`capacity` configuration is not included — it is
    /// rebuilt from the scenario on restore.
    #[must_use]
    pub fn export_state(&self) -> TraceLogState {
        TraceLogState {
            entries: self.entries.clone(),
            dropped: self.dropped,
        }
    }

    /// Overwrites the recorded entries and overflow count from a snapshot,
    /// keeping this log's `enabled`/`capacity` configuration.
    ///
    /// # Errors
    ///
    /// Rejects a state whose entry count exceeds this log's capacity.
    pub fn import_state(&mut self, state: &TraceLogState) -> Result<(), String> {
        if let Some(cap) = self.capacity {
            if state.entries.len() > cap {
                return Err(format!(
                    "snapshot has {} trace entries, log capacity is {cap}",
                    state.entries.len()
                ));
            }
        }
        self.entries = state.entries.clone();
        self.dropped = state.dropped;
        Ok(())
    }

    /// Renders the log (or the slice about one message) as text, one event
    /// per line.
    #[must_use]
    pub fn render(&self) -> String {
        self.entries
            .iter()
            .map(|e| format!("{} {}\n", e.at, e.event))
            .collect()
    }
}

/// The dynamic state of a [`TraceLog`] — the recorded entries plus the
/// overflow count, without the `enabled`/`capacity` configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceLogState {
    /// Recorded entries, in order.
    pub entries: Vec<TraceEntry>,
    /// Events discarded after the capacity filled.
    pub dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::disabled();
        log.record(
            t(1.0),
            TraceEvent::ContactUp {
                a: NodeId(0),
                b: NodeId(1),
            },
        );
        assert!(log.entries().is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn bounded_log_counts_overflow() {
        let mut log = TraceLog::bounded(2);
        for i in 0..5u64 {
            log.record(
                t(i as f64),
                TraceEvent::Created {
                    message: MessageId(i),
                    source: NodeId(0),
                },
            );
        }
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.dropped(), 3);
    }

    #[test]
    fn history_filters_by_message() {
        let mut log = TraceLog::unbounded();
        log.record(
            t(0.0),
            TraceEvent::ContactUp {
                a: NodeId(0),
                b: NodeId(1),
            },
        );
        log.record(
            t(1.0),
            TraceEvent::Created {
                message: MessageId(7),
                source: NodeId(0),
            },
        );
        log.record(
            t(2.0),
            TraceEvent::Transferred {
                message: MessageId(7),
                from: NodeId(0),
                to: NodeId(1),
                stored: true,
            },
        );
        log.record(
            t(3.0),
            TraceEvent::Created {
                message: MessageId(8),
                source: NodeId(1),
            },
        );
        log.record(
            t(4.0),
            TraceEvent::Delivered {
                message: MessageId(7),
                to: NodeId(1),
            },
        );
        let h = log.history_of(MessageId(7));
        assert_eq!(h.len(), 3);
        assert!(matches!(h[0].event, TraceEvent::Created { .. }));
        assert!(matches!(h[2].event, TraceEvent::Delivered { .. }));
    }

    #[test]
    fn render_is_line_per_event() {
        let mut log = TraceLog::unbounded();
        log.record(
            t(65.0),
            TraceEvent::Delivered {
                message: MessageId(1),
                to: NodeId(2),
            },
        );
        let text = log.render();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("00:01:05"));
        assert!(text.contains("delivered m1 -> n2"));
    }

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<TraceEvent> = vec![
            TraceEvent::ContactUp {
                a: NodeId(0),
                b: NodeId(1),
            },
            TraceEvent::ContactDown {
                a: NodeId(0),
                b: NodeId(1),
            },
            TraceEvent::Created {
                message: MessageId(1),
                source: NodeId(0),
            },
            TraceEvent::Transferred {
                message: MessageId(1),
                from: NodeId(0),
                to: NodeId(1),
                stored: false,
            },
            TraceEvent::Aborted {
                message: MessageId(1),
                from: NodeId(0),
                to: NodeId(1),
            },
            TraceEvent::Delivered {
                message: MessageId(1),
                to: NodeId(1),
            },
            TraceEvent::Expired {
                message: MessageId(1),
                at: NodeId(1),
            },
            TraceEvent::NodeCrashed { node: NodeId(1) },
            TraceEvent::NodeRebooted { node: NodeId(1) },
            TraceEvent::LinkCut {
                a: NodeId(0),
                b: NodeId(1),
            },
            TraceEvent::BatterySpike { node: NodeId(1) },
            TraceEvent::TransferLost {
                message: MessageId(1),
                from: NodeId(0),
                to: NodeId(1),
            },
            TraceEvent::TransferCorrupted {
                message: MessageId(1),
                from: NodeId(0),
                to: NodeId(1),
            },
            TraceEvent::RetryScheduled {
                message: MessageId(1),
                from: NodeId(0),
                to: NodeId(1),
                attempt: 2,
            },
            TraceEvent::TransferResumed {
                message: MessageId(1),
                from: NodeId(0),
                to: NodeId(1),
            },
            TraceEvent::RetryAbandoned {
                message: MessageId(1),
                from: NodeId(0),
                to: NodeId(1),
            },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }
}
