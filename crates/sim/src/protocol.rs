//! The protocol extension point.
//!
//! A [`Protocol`] is the store-carry-forward logic layered over the kernel:
//! it owns all routing state (interest tables, token ledgers, reputation
//! tables — partitioned per node *by convention*) and reacts to kernel
//! events through `&mut SimApi`, which exposes buffers, contacts, transfers
//! and statistics. The kernel mediates everything physical: movement,
//! contacts, bandwidth, buffer space, TTLs and energy.
//!
//! This "one protocol object, per-node state inside" shape is the standard
//! simulator architecture (ONE does the same with per-node router objects
//! that the kernel wires together); it keeps pairwise negotiation — which
//! the incentive mechanism leans on heavily — free of object-graph gymnastics
//! while still modelling strictly local knowledge.

use crate::buffer::InsertOutcome;
use crate::kernel::SimApi;
use crate::message::MessageId;
use crate::metrics::MetricsRegistry;
use crate::transfer::{AbortedTransfer, CompletedTransfer};
use crate::world::NodeId;

/// The result of a completed transfer, as seen by the receiver's buffer.
#[derive(Debug)]
pub struct Reception<'a> {
    /// The physical transfer record (airtime, distance, bytes).
    pub transfer: &'a CompletedTransfer,
    /// How the receiver's buffer handled the arriving copy.
    pub outcome: &'a InsertOutcome,
    /// Joules the sender spent transmitting.
    pub tx_joules: f64,
    /// Joules the receiver spent receiving (Friis-attenuated).
    pub rx_joules: f64,
}

/// Store-carry-forward protocol logic driven by the kernel.
///
/// All methods have empty defaults so simple protocols implement only what
/// they need. Within one step the kernel invokes hooks in this order:
/// contact downs, contact ups, message creations, transfer completions and
/// aborts, expirations, then [`Protocol::on_tick`].
pub trait Protocol {
    /// Called once before the first step.
    fn on_start(&mut self, api: &mut SimApi) {
        let _ = api;
    }

    /// A contact between `a` and `b` just came up (`a < b`).
    fn on_contact_up(&mut self, api: &mut SimApi, a: NodeId, b: NodeId) {
        let _ = (api, a, b);
    }

    /// The contact between `a` and `b` just went down (`a < b`). Pending
    /// transfers between them have already been aborted and reported.
    fn on_contact_down(&mut self, api: &mut SimApi, a: NodeId, b: NodeId) {
        let _ = (api, a, b);
    }

    /// `node` just created `message` (already placed in its buffer).
    fn on_message_created(&mut self, api: &mut SimApi, node: NodeId, message: MessageId) {
        let _ = (api, node, message);
    }

    /// A transfer finished; the arriving copy was offered to the receiver's
    /// buffer with the outcome in `reception`.
    fn on_transfer_complete(&mut self, api: &mut SimApi, reception: &Reception<'_>) {
        let _ = (api, reception);
    }

    /// A transfer was aborted (contact loss, source loss or cancellation).
    fn on_transfer_aborted(&mut self, api: &mut SimApi, aborted: &AbortedTransfer) {
        let _ = (api, aborted);
    }

    /// Buffered copies at `node` were purged by TTL.
    fn on_expired(&mut self, api: &mut SimApi, node: NodeId, messages: &[MessageId]) {
        let _ = (api, node, messages);
    }

    /// Buffered copies at `node` were evicted by buffer pressure (from a
    /// message creation or an incoming transfer). Protocols holding
    /// per-copy side state (carried metadata, spray tickets, …) clean it
    /// up here.
    fn on_evicted(&mut self, api: &mut SimApi, node: NodeId, messages: &[MessageId]) {
        let _ = (api, node, messages);
    }

    /// End-of-step hook (periodic work, sampling).
    fn on_tick(&mut self, api: &mut SimApi) {
        let _ = api;
    }

    /// Called once after the last step, before statistics are finalized.
    fn on_finish(&mut self, api: &mut SimApi) {
        let _ = api;
    }

    /// Contributes protocol-owned gauges (watched settlement pairs, wheel
    /// bucket occupancy, arena bytes in use, …) to the metrics registry
    /// the kernel exports (`--verbose` / `--metrics-out`). The default
    /// exports nothing.
    fn export_metrics(&self, registry: &mut MetricsRegistry) {
        let _ = registry;
    }

    /// Audits protocol-owned invariants (token conservation, rating
    /// bounds, …), returning one human-readable line per violation. The
    /// kernel calls this from its invariant checker (see
    /// [`crate::invariants`]) when one is attached; a breach aborts the
    /// run with a replayable report. The default has nothing to audit.
    fn check_invariants(&self, api: &SimApi) -> Vec<String> {
        let _ = api;
        Vec::new()
    }

    /// The protocol's full dynamic state as an opaque document, for a
    /// whole-world snapshot. Stateless protocols return
    /// [`serde::Value::Null`] (the default); stateful protocols must
    /// override both this and [`Protocol::restore_state`] or a resumed run
    /// will restart their routing state from scratch and diverge.
    fn snapshot_state(&self) -> serde::Value {
        serde::Value::Null
    }

    /// Restores the dynamic state captured by [`Protocol::snapshot_state`]
    /// into a freshly built protocol (same scenario, same seed).
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch when `state` is not a document
    /// this protocol produces (e.g. a snapshot taken under a different
    /// arm or protocol configuration).
    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        if matches!(state, serde::Value::Null) {
            Ok(())
        } else {
            Err("snapshot carries protocol state but this protocol keeps none".to_string())
        }
    }
}

/// A protocol that does nothing; useful for mobility/contact-only studies
/// and kernel tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProtocol;

impl Protocol for NullProtocol {}
