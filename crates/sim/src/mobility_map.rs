//! Map-constrained mobility.
//!
//! The ONE simulator's flagship feature beyond Random Waypoint is
//! map-based movement: nodes walk along streets rather than through
//! buildings. [`ManhattanGrid`] reproduces the standard *Manhattan
//! mobility model*: a rectangular lattice of streets with a fixed block
//! size; nodes walk along grid lines to a randomly chosen intersection
//! (one axis-aligned leg at a time), pause, and repeat. It slots into the
//! same [`MobilityModel`] interface as the free-space models, so any
//! scenario can swap it in.

use serde::{Deserialize, Serialize};

use crate::geometry::{Area, Point};
use crate::mobility::MobilityModel;
use crate::rng::SimRng;
use crate::time::SimDuration;

/// Manhattan-grid mobility: movement restricted to a street lattice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ManhattanGrid {
    /// Distance between parallel streets, meters.
    pub block_m: f64,
    /// Minimum walking speed, m/s.
    pub min_speed: f64,
    /// Maximum walking speed, m/s.
    pub max_speed: f64,
    /// Maximum pause at a destination intersection, seconds.
    pub max_pause_secs: f64,
    #[serde(skip)]
    state: GridState,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
enum GridState {
    #[default]
    NeedTarget,
    /// Walking the first (horizontal) leg toward `corner`, then the
    /// vertical leg toward `target`.
    Walking {
        corner: Point,
        target: Point,
        speed: f64,
        on_second_leg: bool,
    },
    Paused {
        remaining: f64,
    },
}

impl ManhattanGrid {
    /// Creates a grid walker.
    ///
    /// # Panics
    ///
    /// Panics if `block_m` is not strictly positive or the speed range is
    /// empty or non-positive.
    #[must_use]
    pub fn new(block_m: f64, min_speed: f64, max_speed: f64, max_pause_secs: f64) -> Self {
        assert!(block_m > 0.0, "block size must be positive");
        assert!(
            min_speed > 0.0 && max_speed >= min_speed,
            "speed range must be positive and non-empty"
        );
        assert!(max_pause_secs >= 0.0, "pause must be non-negative");
        ManhattanGrid {
            block_m,
            min_speed,
            max_speed,
            max_pause_secs,
            state: GridState::NeedTarget,
        }
    }

    /// A downtown pedestrian profile: 100 m blocks, 0.8–1.8 m/s, ≤60 s
    /// pauses.
    #[must_use]
    pub fn downtown() -> Self {
        Self::new(100.0, 0.8, 1.8, 60.0)
    }

    /// Snaps a coordinate onto the nearest street line within `area`.
    fn snap(&self, x: f64, limit: f64) -> f64 {
        let snapped = (x / self.block_m).round() * self.block_m;
        snapped.clamp(0.0, (limit / self.block_m).floor() * self.block_m)
    }

    /// A uniformly random intersection of the lattice inside `area`.
    fn random_intersection(&self, area: Area, rng: &mut SimRng) -> Point {
        let cols = (area.width / self.block_m).floor() as usize + 1;
        let rows = (area.height / self.block_m).floor() as usize + 1;
        Point::new(
            rng.index(cols) as f64 * self.block_m,
            rng.index(rows) as f64 * self.block_m,
        )
    }
}

impl MobilityModel for ManhattanGrid {
    fn step(&mut self, current: Point, dt: SimDuration, area: Area, rng: &mut SimRng) -> Point {
        let mut pos = current;
        let mut budget = dt.as_secs();
        while budget > 0.0 {
            match self.state {
                GridState::NeedTarget => {
                    let target = self.random_intersection(area, rng);
                    // Walk the horizontal leg first: corner shares the
                    // current y (snapped onto a street) and the target x.
                    let corner = Point::new(target.x, self.snap(pos.y, area.height));
                    let speed = if self.max_speed > self.min_speed {
                        rng.uniform(self.min_speed, self.max_speed)
                    } else {
                        self.min_speed
                    };
                    self.state = GridState::Walking {
                        corner,
                        target,
                        speed,
                        on_second_leg: false,
                    };
                }
                GridState::Walking {
                    corner,
                    target,
                    speed,
                    on_second_leg,
                } => {
                    let waypoint = if on_second_leg { target } else { corner };
                    let dist_left = pos.distance_to(waypoint);
                    let dist_possible = speed * budget;
                    if dist_possible >= dist_left {
                        pos = waypoint;
                        budget -= if speed > 0.0 {
                            dist_left / speed
                        } else {
                            budget
                        };
                        if on_second_leg {
                            let pause = if self.max_pause_secs > 0.0 {
                                rng.uniform(0.0, self.max_pause_secs)
                            } else {
                                0.0
                            };
                            self.state = GridState::Paused { remaining: pause };
                        } else {
                            self.state = GridState::Walking {
                                corner,
                                target,
                                speed,
                                on_second_leg: true,
                            };
                        }
                    } else {
                        pos = pos.step_toward(waypoint, dist_possible);
                        budget = 0.0;
                    }
                }
                GridState::Paused { remaining } => {
                    if remaining > budget {
                        self.state = GridState::Paused {
                            remaining: remaining - budget,
                        };
                        budget = 0.0;
                    } else {
                        budget -= remaining;
                        self.state = GridState::NeedTarget;
                    }
                }
            }
        }
        pos
    }

    fn initial_position(&mut self, area: Area, rng: &mut SimRng) -> Point {
        self.random_intersection(area, rng)
    }

    fn snapshot_state(&self) -> serde::Value {
        self.state.to_value()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        self.state = GridState::from_value(state)
            .map_err(|e| format!("manhattan-grid state does not parse: {e}"))?;
        Ok(())
    }

    fn speed_cap_m_s(&self) -> Option<f64> {
        Some(self.max_speed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on_street(p: Point, block: f64) -> bool {
        let near = |x: f64| {
            let r = x / block;
            (r - r.round()).abs() < 1e-6
        };
        near(p.x) || near(p.y)
    }

    #[test]
    fn walker_stays_on_streets() {
        let area = Area::new(1000.0, 800.0);
        let mut m = ManhattanGrid::downtown();
        let mut rng = SimRng::new(5);
        let mut pos = m.initial_position(area, &mut rng);
        assert!(on_street(pos, 100.0), "initial position is an intersection");
        for _ in 0..3000 {
            pos = m.step(pos, SimDuration::from_secs(1.0), area, &mut rng);
            assert!(area.contains(pos), "inside the map: {pos:?}");
            assert!(on_street(pos, 100.0), "on a street line: {pos:?}");
        }
    }

    #[test]
    fn walker_moves_and_respects_speed() {
        let area = Area::new(1000.0, 1000.0);
        let mut m = ManhattanGrid::new(100.0, 1.0, 2.0, 0.0);
        let mut rng = SimRng::new(7);
        let mut pos = m.initial_position(area, &mut rng);
        let start = pos;
        let mut moved = false;
        for _ in 0..600 {
            let next = m.step(pos, SimDuration::from_secs(1.0), area, &mut rng);
            // Displacement per second bounded by max speed (corner turns
            // shorten net displacement, never lengthen it).
            assert!(next.distance_to(pos) <= 2.0 + 1e-9);
            if next.distance_to(start) > 50.0 {
                moved = true;
            }
            pos = next;
        }
        assert!(moved, "the walker actually goes places");
    }

    #[test]
    fn intersections_fit_the_area() {
        let area = Area::new(450.0, 250.0); // not a multiple of the block
        let m = ManhattanGrid::new(100.0, 1.0, 1.0, 0.0);
        let mut rng = SimRng::new(9);
        for _ in 0..200 {
            let p = m.random_intersection(area, &mut rng);
            assert!(p.x <= 400.0 && p.y <= 200.0, "snapped inside: {p:?}");
            assert!(on_street(p, 100.0));
        }
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_rejected() {
        let _ = ManhattanGrid::new(0.0, 1.0, 2.0, 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let area = Area::new(500.0, 500.0);
        let run = |seed| {
            let mut m = ManhattanGrid::downtown();
            let mut rng = SimRng::new(seed);
            let mut pos = m.initial_position(area, &mut rng);
            for _ in 0..100 {
                pos = m.step(pos, SimDuration::from_secs(1.0), area, &mut rng);
            }
            pos
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
