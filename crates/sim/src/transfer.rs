//! Bandwidth-limited message transfers.
//!
//! Each node transmits at most one message at a time (a half-duplex serial
//! radio, as in ONE); queued transfers to any peer wait behind the current
//! one. A transfer progresses at the link speed while the contact stays up
//! and is aborted if the contact drops or the sender loses its buffered copy
//! mid-flight.
//!
//! With [`RecoveryPolicy::resume`] enabled the engine additionally keeps a
//! per-`(src, dst, message)` checkpoint of the bytes already on the air when
//! a `ContactDown` abort strikes, and a later enqueue of the same transfer
//! resumes from that offset instead of restarting from zero (reactive
//! fragmentation). Checkpoints are sender-side bookkeeping only — no payload
//! is stored — and are dropped on completion, cancellation, source loss, or
//! a buffer wipe at either endpoint.

use std::collections::{BTreeSet, HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::message::MessageId;
use crate::time::{SimDuration, SimTime};
use crate::world::NodeId;

/// Recovery knobs for the transfer path: checkpoint/resume plus the
/// kernel's deterministic retry queue.
///
/// Absent (`recovery: None` in a scenario) the kernel behaves exactly as
/// before: aborted transfers lose all progress and are never retried. The
/// [`Default`] is a sensible *enabled* configuration — presence of the
/// policy is what turns recovery on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct RecoveryPolicy {
    /// Checkpoint partial progress on `ContactDown` aborts and resume from
    /// the saved byte offset at the next enqueue of the same transfer.
    pub resume: bool,
    /// Maximum retry attempts per `(src, dst, message)` transfer; `0`
    /// disables the retry queue entirely.
    pub retry_max: u32,
    /// Base backoff in seconds: attempt `k` (0-based) waits
    /// `base * 2^k`, jittered ±50%, capped at `backoff_cap_secs`.
    pub backoff_base_secs: f64,
    /// Upper bound on any single backoff delay, in seconds.
    pub backoff_cap_secs: f64,
    /// Per-message cap on corruption (`Injected`) redeliveries: a payload
    /// destroyed more than this many times on one link is abandoned.
    pub redelivery_cap: u32,
    /// Per-`(sender, receiver)` budget of retransmissions across the whole
    /// run; exhausted pairs stop retrying (starvation guard against a
    /// pathologically lossy link eating the radio).
    pub peer_budget: u32,
    /// Upper bound on live checkpoints; `0` means unbounded. At capacity
    /// the least-recently-touched checkpoint (by sim time, ties broken by
    /// key) is evicted — its transfer restarts from byte zero if retried.
    pub checkpoint_capacity: usize,
    /// Derive the retry backoff base from *observed* per-peer inter-contact
    /// gaps instead of the fixed `backoff_base_secs`: once a pair has seen
    /// at least two complete down→up gaps, the mean observed gap becomes
    /// the base for that pair (still doubled per attempt, jittered, and
    /// capped by `backoff_cap_secs`). Pairs with fewer than two observed
    /// gaps keep `backoff_base_secs`. `None`/`Some(false)` (the default)
    /// disables it; a disabled run is byte-identical to one without the
    /// field.
    pub adaptive_backoff: Option<bool>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            resume: true,
            retry_max: 3,
            backoff_base_secs: 10.0,
            backoff_cap_secs: 300.0,
            redelivery_cap: 2,
            peer_budget: 64,
            checkpoint_capacity: 1024,
            adaptive_backoff: None,
        }
    }
}

impl RecoveryPolicy {
    /// A policy that changes nothing: no resume, no retries.
    #[must_use]
    pub fn disabled() -> Self {
        RecoveryPolicy {
            resume: false,
            retry_max: 0,
            ..RecoveryPolicy::default()
        }
    }

    /// Whether this policy perturbs a run at all.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        !self.resume && self.retry_max == 0
    }

    /// Validates the knobs, returning a description of the first problem.
    ///
    /// # Errors
    ///
    /// Returns `Err` if any delay is non-finite or negative, the cap is
    /// below the base, or retries are enabled with a zero base delay.
    pub fn validate(&self) -> Result<(), String> {
        if !self.backoff_base_secs.is_finite() || self.backoff_base_secs < 0.0 {
            return Err(format!(
                "backoff_base_secs must be finite and >= 0, got {}",
                self.backoff_base_secs
            ));
        }
        if !self.backoff_cap_secs.is_finite() || self.backoff_cap_secs < self.backoff_base_secs {
            return Err(format!(
                "backoff_cap_secs must be finite and >= backoff_base_secs, got {}",
                self.backoff_cap_secs
            ));
        }
        if self.retry_max > 0 && self.backoff_base_secs == 0.0 {
            return Err("retries enabled but backoff_base_secs is zero".into());
        }
        Ok(())
    }
}

/// A saved partial-transfer offset: how many bytes of a transfer of
/// `bytes_total` were already on the air when the contact dropped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Checkpoint {
    /// Bytes already transmitted.
    pub bytes_sent: f64,
    /// Total payload size the checkpoint was taken against; a resume only
    /// applies when the re-enqueued size matches.
    pub bytes_total: u64,
}

/// A stored checkpoint plus the LRU bookkeeping the capacity bound needs.
#[derive(Debug, Clone, Copy)]
struct CheckpointSlot {
    checkpoint: Checkpoint,
    /// Sim time of the last save or resume-read; the eviction victim is
    /// the minimum `(last_touch, key)` (the key tie-break keeps eviction
    /// order deterministic when several checkpoints share a timestamp).
    last_touch: SimTime,
}

/// A transfer that has been requested but not yet finished.
#[derive(Debug, Clone, PartialEq)]
pub struct Transfer {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// The message being pushed.
    pub message: MessageId,
    /// Payload size in bytes.
    pub bytes_total: u64,
    /// Bytes already on the air.
    pub bytes_sent: f64,
    /// When transmission of this message actually began (None while queued).
    pub started_at: Option<SimTime>,
    /// When the transfer was requested.
    pub requested_at: SimTime,
}

/// A finished transfer, reported to the protocol layer.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedTransfer {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// The message moved.
    pub message: MessageId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Time spent on the air.
    pub airtime: SimDuration,
    /// Distance between the endpoints at completion, in meters (feeds the
    /// Friis reception-power term of the hardware incentive).
    pub distance_m: f64,
    /// Completion time.
    pub finished_at: SimTime,
}

/// Why a transfer was aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The contact between the endpoints went down.
    ContactDown,
    /// The sender no longer holds the message (TTL expiry or eviction).
    SourceGone,
    /// The protocol cancelled it.
    Cancelled,
    /// The fault-injection layer destroyed the payload (loss or
    /// corruption): the transfer physically completed but nothing usable
    /// arrived.
    Injected,
}

/// An aborted transfer, reported to the protocol layer.
#[derive(Debug, Clone, PartialEq)]
pub struct AbortedTransfer {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// The message that did not make it.
    pub message: MessageId,
    /// Bytes wasted on the air before the abort.
    pub bytes_sent: f64,
    /// Why it failed.
    pub reason: AbortReason,
}

/// Snapshot image of one queued or in-flight [`Transfer`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferState {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// The message being pushed.
    pub message: MessageId,
    /// Payload size in bytes.
    pub bytes_total: u64,
    /// Bytes already on the air.
    pub bytes_sent: f64,
    /// When transmission actually began (`None` while queued).
    pub started_at: Option<SimTime>,
    /// When the transfer was requested.
    pub requested_at: SimTime,
}

/// Snapshot image of one saved checkpoint, key included.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointState {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// The checkpointed message.
    pub message: MessageId,
    /// Bytes already transmitted when the checkpoint was taken.
    pub bytes_sent: f64,
    /// Payload size the checkpoint was taken against.
    pub bytes_total: u64,
    /// Sim time of the last save or resume-read (LRU bookkeeping).
    pub last_touch: SimTime,
}

/// The dynamic state of a [`TransferEngine`], detached from its
/// configuration (node count, link speed, resume flag, capacity — all of
/// which are rebuilt from the scenario on restore).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferEngineState {
    /// Per-sender FIFOs, indexed by sender id; most are empty.
    pub queues: Vec<Vec<TransferState>>,
    /// Live checkpoints, sorted by `(from, to, message)` so the image is
    /// deterministic regardless of `HashMap` iteration order.
    pub checkpoints: Vec<CheckpointState>,
    /// Checkpoints dropped by the capacity bound so far.
    pub checkpoints_evicted: u64,
}

/// Per-sender transfer scheduling for the whole world.
#[derive(Debug)]
pub struct TransferEngine {
    /// One FIFO per sender; the head is the in-flight transfer.
    queues: Vec<VecDeque<Transfer>>,
    /// Senders with a non-empty queue, maintained incrementally by
    /// enqueue/cancel/abort/step. [`Self::step`] walks only this index in
    /// one batched pass instead of scanning every sender's (mostly empty)
    /// queue each step. A `BTreeSet` iterates in ascending sender id, which
    /// is exactly the order the full scan used — output is byte-identical.
    active: BTreeSet<NodeId>,
    /// Scratch for senders drained within one `step` call, reused across
    /// steps so the batched pass allocates nothing in steady state.
    scratch_drained: Vec<NodeId>,
    link_speed_bps: f64,
    /// Partial-progress offsets saved on `ContactDown`, keyed by
    /// `(from, to, message)`. Only populated when `resume` is on.
    checkpoints: HashMap<(NodeId, NodeId, MessageId), CheckpointSlot>,
    resume: bool,
    /// Max live checkpoints (`0` = unbounded); see
    /// [`RecoveryPolicy::checkpoint_capacity`].
    checkpoint_capacity: usize,
    /// Checkpoints dropped by the capacity bound (not by completion,
    /// cancellation, or wipes).
    checkpoints_evicted: u64,
}

impl TransferEngine {
    /// Creates an engine for `node_count` nodes at `link_speed_bps`.
    ///
    /// # Panics
    ///
    /// Panics if the link speed is not strictly positive.
    #[must_use]
    pub fn new(node_count: usize, link_speed_bps: f64) -> Self {
        assert!(link_speed_bps > 0.0, "link speed must be positive");
        TransferEngine {
            queues: vec![VecDeque::new(); node_count],
            active: BTreeSet::new(),
            scratch_drained: Vec::new(),
            link_speed_bps,
            checkpoints: HashMap::new(),
            resume: false,
            checkpoint_capacity: 0,
            checkpoints_evicted: 0,
        }
    }

    /// Number of senders with at least one queued or in-flight transfer —
    /// the size of the batched step index.
    #[must_use]
    pub fn active_senders(&self) -> usize {
        self.active.len()
    }

    /// Audit: checks the active-sender index against the queues themselves,
    /// returning a description of the first mismatch. Used by tests and the
    /// invariant checker; not on the hot path.
    pub fn audit_active_index(&self) -> Result<(), String> {
        let reference: BTreeSet<NodeId> = self
            .queues
            .iter()
            .enumerate()
            .filter(|(_, q)| !q.is_empty())
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        if reference == self.active {
            Ok(())
        } else {
            Err(format!(
                "active-sender index drifted: indexed {:?}, queues say {:?}",
                self.active, reference
            ))
        }
    }

    /// Enables (or disables) checkpoint/resume. Off by default; with it
    /// off the engine is byte-identical to the pre-recovery engine.
    pub fn set_resume(&mut self, on: bool) {
        self.resume = on;
        if !on {
            self.checkpoints.clear();
        }
    }

    /// The saved checkpoint for `(from, to, message)`, if any.
    #[must_use]
    pub fn checkpoint_of(
        &self,
        from: NodeId,
        to: NodeId,
        message: MessageId,
    ) -> Option<Checkpoint> {
        self.checkpoints
            .get(&(from, to, message))
            .map(|s| s.checkpoint)
    }

    /// Number of live checkpoints.
    #[must_use]
    pub fn checkpoint_count(&self) -> usize {
        self.checkpoints.len()
    }

    /// Bounds the checkpoint store to `capacity` entries (`0` = unbounded),
    /// evicting least-recently-touched entries immediately if already over.
    pub fn set_checkpoint_capacity(&mut self, capacity: usize) {
        self.checkpoint_capacity = capacity;
        self.evict_to_capacity();
    }

    /// Checkpoints dropped so far by the capacity bound.
    #[must_use]
    pub fn checkpoints_evicted(&self) -> u64 {
        self.checkpoints_evicted
    }

    /// Evicts least-recently-touched checkpoints until the store fits the
    /// capacity bound. Victim order is the minimum `(last_touch, key)` —
    /// deterministic even though the store itself is a `HashMap`.
    fn evict_to_capacity(&mut self) {
        if self.checkpoint_capacity == 0 {
            return;
        }
        while self.checkpoints.len() > self.checkpoint_capacity {
            let victim = self
                .checkpoints
                .iter()
                .map(|(&k, s)| (s.last_touch.as_secs(), k))
                .min_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)))
                .map(|(_, k)| k)
                .expect("store over capacity is non-empty");
            self.checkpoints.remove(&victim);
            self.checkpoints_evicted += 1;
        }
    }

    /// Drops every checkpoint involving `node` as sender or receiver.
    /// Called when a crash wipes a buffer: partial bytes at a wiped
    /// receiver are gone, and a wiped sender has nothing left to resume.
    pub fn clear_checkpoints_involving(&mut self, node: NodeId) {
        self.checkpoints
            .retain(|&(from, to, _), _| from != node && to != node);
    }

    /// Captures the engine's dynamic state for a snapshot. Queues keep
    /// their FIFO order; checkpoints are emitted sorted by key.
    #[must_use]
    pub fn export_state(&self) -> TransferEngineState {
        let queues = self
            .queues
            .iter()
            .map(|q| {
                q.iter()
                    .map(|t| TransferState {
                        from: t.from,
                        to: t.to,
                        message: t.message,
                        bytes_total: t.bytes_total,
                        bytes_sent: t.bytes_sent,
                        started_at: t.started_at,
                        requested_at: t.requested_at,
                    })
                    .collect()
            })
            .collect();
        let mut checkpoints: Vec<CheckpointState> = self
            .checkpoints
            .iter()
            .map(|(&(from, to, message), slot)| CheckpointState {
                from,
                to,
                message,
                bytes_sent: slot.checkpoint.bytes_sent,
                bytes_total: slot.checkpoint.bytes_total,
                last_touch: slot.last_touch,
            })
            .collect();
        checkpoints.sort_by_key(|c| (c.from, c.to, c.message));
        TransferEngineState {
            queues,
            checkpoints,
            checkpoints_evicted: self.checkpoints_evicted,
        }
    }

    /// Overwrites the engine's dynamic state from a snapshot, leaving the
    /// configuration (link speed, resume flag, checkpoint capacity) as
    /// built from the scenario. The active-sender index is rebuilt from
    /// the restored queues.
    ///
    /// # Errors
    ///
    /// Rejects a state whose queue count disagrees with this engine's node
    /// count, or that carries checkpoints while resume is off here.
    pub fn import_state(&mut self, state: &TransferEngineState) -> Result<(), String> {
        if state.queues.len() != self.queues.len() {
            return Err(format!(
                "snapshot has {} sender queues, world has {} nodes",
                state.queues.len(),
                self.queues.len()
            ));
        }
        if !self.resume && !state.checkpoints.is_empty() {
            return Err(format!(
                "snapshot carries {} checkpoints but resume is disabled in this scenario",
                state.checkpoints.len()
            ));
        }
        self.queues = state
            .queues
            .iter()
            .map(|q| {
                q.iter()
                    .map(|t| Transfer {
                        from: t.from,
                        to: t.to,
                        message: t.message,
                        bytes_total: t.bytes_total,
                        bytes_sent: t.bytes_sent,
                        started_at: t.started_at,
                        requested_at: t.requested_at,
                    })
                    .collect()
            })
            .collect();
        self.active = self
            .queues
            .iter()
            .enumerate()
            .filter(|(_, q)| !q.is_empty())
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        self.checkpoints = state
            .checkpoints
            .iter()
            .map(|c| {
                (
                    (c.from, c.to, c.message),
                    CheckpointSlot {
                        checkpoint: Checkpoint {
                            bytes_sent: c.bytes_sent,
                            bytes_total: c.bytes_total,
                        },
                        last_touch: c.last_touch,
                    },
                )
            })
            .collect();
        self.checkpoints_evicted = state.checkpoints_evicted;
        Ok(())
    }

    /// Byte-conservation audit: every queued transfer and every checkpoint
    /// must satisfy `0 <= bytes_sent <= bytes_total`. Violations are
    /// returned sorted (deterministic output for breach reports).
    #[must_use]
    pub fn audit_bytes(&self) -> Vec<String> {
        let mut out = Vec::new();
        for q in &self.queues {
            for t in q {
                if !(t.bytes_sent >= 0.0 && t.bytes_sent <= t.bytes_total as f64 + 1e-6) {
                    out.push(format!(
                        "transfer {}->{} msg {} has bytes_sent {} outside [0, {}]",
                        t.from.index(),
                        t.to.index(),
                        t.message.0,
                        t.bytes_sent,
                        t.bytes_total
                    ));
                }
            }
        }
        for (&(from, to, msg), slot) in &self.checkpoints {
            let c = slot.checkpoint;
            if !(c.bytes_sent > 0.0 && c.bytes_sent <= c.bytes_total as f64 + 1e-6) {
                out.push(format!(
                    "checkpoint {}->{} msg {} has bytes_sent {} outside (0, {}]",
                    from.index(),
                    to.index(),
                    msg.0,
                    c.bytes_sent,
                    c.bytes_total
                ));
            }
        }
        out.sort();
        out
    }

    /// Queues a transfer of `message` from `from` to `to`.
    ///
    /// Duplicate enqueues of the same `(from, to, message)` are ignored and
    /// return `false`. With resume enabled, a matching checkpoint (same
    /// payload size) seeds `bytes_sent` so transmission continues from the
    /// saved offset.
    pub fn enqueue(
        &mut self,
        from: NodeId,
        to: NodeId,
        message: MessageId,
        bytes: u64,
        now: SimTime,
    ) -> bool {
        let q = &mut self.queues[from.index()];
        if q.iter().any(|t| t.to == to && t.message == message) {
            return false;
        }
        let resumed_from = if self.resume {
            match self.checkpoints.get_mut(&(from, to, message)) {
                Some(slot) if slot.checkpoint.bytes_total == bytes => {
                    // A resume-read counts as a touch: a checkpoint that is
                    // actively being retried should outlive cold ones.
                    slot.last_touch = now;
                    slot.checkpoint.bytes_sent.min(bytes as f64)
                }
                _ => 0.0,
            }
        } else {
            0.0
        };
        q.push_back(Transfer {
            from,
            to,
            message,
            bytes_total: bytes,
            bytes_sent: resumed_from,
            started_at: None,
            requested_at: now,
        });
        self.active.insert(from);
        true
    }

    /// Number of queued + in-flight transfers for `from`.
    #[must_use]
    pub fn queue_len(&self, from: NodeId) -> usize {
        self.queues[from.index()].len()
    }

    /// Whether `(from, to, message)` is queued or in flight.
    #[must_use]
    pub fn is_pending(&self, from: NodeId, to: NodeId, message: MessageId) -> bool {
        self.queues[from.index()]
            .iter()
            .any(|t| t.to == to && t.message == message)
    }

    /// Total transfers pending across all senders.
    #[must_use]
    pub fn pending_total(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Aborts every pending transfer between `a` and `b` (both directions),
    /// returning the aborted records. Called on contact-down. With resume
    /// enabled, partial progress is checkpointed (touched at `now`) for a
    /// later re-enqueue.
    pub fn abort_between(&mut self, a: NodeId, b: NodeId, now: SimTime) -> Vec<AbortedTransfer> {
        let mut out = Vec::new();
        for (from, to) in [(a, b), (b, a)] {
            let q = &mut self.queues[from.index()];
            let mut keep = VecDeque::with_capacity(q.len());
            while let Some(t) = q.pop_front() {
                if t.to == to {
                    if self.resume && t.bytes_sent > 0.0 {
                        self.checkpoints.insert(
                            (t.from, t.to, t.message),
                            CheckpointSlot {
                                checkpoint: Checkpoint {
                                    bytes_sent: t.bytes_sent.min(t.bytes_total as f64),
                                    bytes_total: t.bytes_total,
                                },
                                last_touch: now,
                            },
                        );
                    }
                    out.push(AbortedTransfer {
                        from: t.from,
                        to: t.to,
                        message: t.message,
                        bytes_sent: t.bytes_sent,
                        reason: AbortReason::ContactDown,
                    });
                } else {
                    keep.push_back(t);
                }
            }
            *q = keep;
            if q.is_empty() {
                self.active.remove(&from);
            }
        }
        self.evict_to_capacity();
        out
    }

    /// Cancels a specific pending transfer, if present. Cancellation is
    /// deliberate, so any saved checkpoint is dropped too.
    pub fn cancel(
        &mut self,
        from: NodeId,
        to: NodeId,
        message: MessageId,
    ) -> Option<AbortedTransfer> {
        let q = &mut self.queues[from.index()];
        let pos = q.iter().position(|t| t.to == to && t.message == message)?;
        let t = q.remove(pos).expect("position valid");
        if q.is_empty() {
            self.active.remove(&from);
        }
        self.checkpoints.remove(&(from, to, message));
        Some(AbortedTransfer {
            from: t.from,
            to: t.to,
            message: t.message,
            bytes_sent: t.bytes_sent,
            reason: AbortReason::Cancelled,
        })
    }

    /// Advances every sender's head transfer by `dt`.
    ///
    /// `sender_has_copy(from, message)` lets the engine abort transfers whose
    /// sender lost the buffered copy; `distance(a, b)` supplies the current
    /// distance for the completion record. Completions and aborts are
    /// returned sorted by sender id (deterministic).
    pub fn step(
        &mut self,
        dt: SimDuration,
        now: SimTime,
        mut sender_has_copy: impl FnMut(NodeId, MessageId) -> bool,
        mut distance: impl FnMut(NodeId, NodeId) -> f64,
    ) -> (Vec<CompletedTransfer>, Vec<AbortedTransfer>) {
        let mut completed = Vec::new();
        let mut aborted = Vec::new();
        // One batched pass over the active-sender index. The index iterates
        // in ascending sender id — identical to the full queue scan this
        // replaces (empty queues contributed nothing there), so the output
        // order is unchanged.
        self.scratch_drained.clear();
        for &from in &self.active {
            let q = &mut self.queues[from.index()];
            // Drop head transfers whose source copy vanished, then progress
            // the surviving head. Budget is per-sender airtime within dt.
            let mut budget = dt.as_secs();
            while budget > 0.0 {
                let Some(head) = q.front_mut() else { break };
                if !sender_has_copy(head.from, head.message) {
                    let t = q.pop_front().expect("head exists");
                    // The source copy is gone for good (TTL or eviction):
                    // nothing is left to resume from.
                    self.checkpoints.remove(&(t.from, t.to, t.message));
                    aborted.push(AbortedTransfer {
                        from: t.from,
                        to: t.to,
                        message: t.message,
                        bytes_sent: t.bytes_sent,
                        reason: AbortReason::SourceGone,
                    });
                    continue;
                }
                if head.started_at.is_none() {
                    head.started_at = Some(now);
                }
                let remaining_bytes = head.bytes_total as f64 - head.bytes_sent;
                let need_secs = remaining_bytes / self.link_speed_bps;
                if need_secs <= budget {
                    budget -= need_secs;
                    let t = q.pop_front().expect("head exists");
                    self.checkpoints.remove(&(t.from, t.to, t.message));
                    // Airtime is transmission time: the radio only pushes
                    // this transfer while it is the head, at link speed, so
                    // the on-air seconds are exactly bytes/speed. (Wall
                    // clock since `started_at` would double-count when two
                    // transfers finish within one step.)
                    let airtime =
                        SimDuration::from_secs(t.bytes_total as f64 / self.link_speed_bps);
                    completed.push(CompletedTransfer {
                        from: t.from,
                        to: t.to,
                        message: t.message,
                        bytes: t.bytes_total,
                        airtime,
                        distance_m: distance(t.from, t.to),
                        // Completion is processed within the step that
                        // starts at `now` (the receiver's copy records
                        // `received_at = now`), so the finish time matches.
                        finished_at: now,
                    });
                } else {
                    head.bytes_sent += budget * self.link_speed_bps;
                    budget = 0.0;
                }
            }
            if q.is_empty() {
                self.scratch_drained.push(from);
            }
        }
        for i in 0..self.scratch_drained.len() {
            let drained = self.scratch_drained[i];
            self.active.remove(&drained);
        }
        (completed, aborted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> TransferEngine {
        TransferEngine::new(4, 100.0) // 100 B/s for easy math
    }

    fn step_all(
        e: &mut TransferEngine,
        dt: f64,
        now: f64,
    ) -> (Vec<CompletedTransfer>, Vec<AbortedTransfer>) {
        e.step(
            SimDuration::from_secs(dt),
            SimTime::from_secs(now),
            |_, _| true,
            |_, _| 50.0,
        )
    }

    #[test]
    fn transfer_takes_size_over_speed_seconds() {
        let mut e = engine();
        assert!(e.enqueue(NodeId(0), NodeId(1), MessageId(1), 250, SimTime::ZERO));
        // 250 B at 100 B/s = 2.5 s: not done after 2 s...
        let (done, _) = step_all(&mut e, 1.0, 0.0);
        assert!(done.is_empty());
        let (done, _) = step_all(&mut e, 1.0, 1.0);
        assert!(done.is_empty());
        // ...done during the third second.
        let (done, _) = step_all(&mut e, 1.0, 2.0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].message, MessageId(1));
        assert_eq!(done[0].bytes, 250);
        assert_eq!(done[0].distance_m, 50.0);
        assert_eq!(e.pending_total(), 0);
    }

    #[test]
    fn sender_serializes_transfers() {
        let mut e = engine();
        e.enqueue(NodeId(0), NodeId(1), MessageId(1), 100, SimTime::ZERO);
        e.enqueue(NodeId(0), NodeId(2), MessageId(2), 100, SimTime::ZERO);
        // Both fit in one 2 s step (1 s each) because the budget rolls over.
        let (done, _) = step_all(&mut e, 2.0, 0.0);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].message, MessageId(1));
        assert_eq!(done[1].message, MessageId(2));
    }

    #[test]
    fn duplicate_enqueue_ignored() {
        let mut e = engine();
        assert!(e.enqueue(NodeId(0), NodeId(1), MessageId(1), 100, SimTime::ZERO));
        assert!(!e.enqueue(NodeId(0), NodeId(1), MessageId(1), 100, SimTime::ZERO));
        assert_eq!(e.queue_len(NodeId(0)), 1);
        assert!(e.is_pending(NodeId(0), NodeId(1), MessageId(1)));
    }

    #[test]
    fn abort_between_clears_both_directions() {
        let mut e = engine();
        e.enqueue(NodeId(0), NodeId(1), MessageId(1), 1000, SimTime::ZERO);
        e.enqueue(NodeId(1), NodeId(0), MessageId(2), 1000, SimTime::ZERO);
        e.enqueue(NodeId(0), NodeId(2), MessageId(3), 1000, SimTime::ZERO);
        let aborted = e.abort_between(NodeId(0), NodeId(1), SimTime::ZERO);
        assert_eq!(aborted.len(), 2);
        assert!(aborted.iter().all(|a| a.reason == AbortReason::ContactDown));
        assert!(
            e.is_pending(NodeId(0), NodeId(2), MessageId(3)),
            "unrelated survives"
        );
    }

    #[test]
    fn source_gone_aborts_in_flight() {
        let mut e = engine();
        e.enqueue(NodeId(0), NodeId(1), MessageId(1), 1000, SimTime::ZERO);
        let (done, aborted) = e.step(
            SimDuration::from_secs(1.0),
            SimTime::ZERO,
            |_, _| false,
            |_, _| 10.0,
        );
        assert!(done.is_empty());
        assert_eq!(aborted.len(), 1);
        assert_eq!(aborted[0].reason, AbortReason::SourceGone);
    }

    #[test]
    fn cancel_removes_pending() {
        let mut e = engine();
        e.enqueue(NodeId(0), NodeId(1), MessageId(1), 1000, SimTime::ZERO);
        let a = e
            .cancel(NodeId(0), NodeId(1), MessageId(1))
            .expect("pending");
        assert_eq!(a.reason, AbortReason::Cancelled);
        assert!(e.cancel(NodeId(0), NodeId(1), MessageId(1)).is_none());
        assert_eq!(e.pending_total(), 0);
    }

    #[test]
    fn partial_progress_is_tracked() {
        let mut e = engine();
        e.enqueue(NodeId(0), NodeId(1), MessageId(1), 1000, SimTime::ZERO);
        step_all(&mut e, 3.0, 0.0);
        let aborted = e.abort_between(NodeId(0), NodeId(1), SimTime::ZERO);
        assert_eq!(aborted.len(), 1);
        assert!((aborted[0].bytes_sent - 300.0).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_transfer_completes_immediately() {
        let mut e = engine();
        e.enqueue(NodeId(0), NodeId(1), MessageId(1), 0, SimTime::ZERO);
        let (done, _) = step_all(&mut e, 1.0, 0.0);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn resume_restores_partial_progress() {
        let mut e = engine();
        e.set_resume(true);
        e.enqueue(NodeId(0), NodeId(1), MessageId(1), 1000, SimTime::ZERO);
        step_all(&mut e, 3.0, 0.0); // 300 of 1000 bytes on the air
        let aborted = e.abort_between(NodeId(0), NodeId(1), SimTime::ZERO);
        assert_eq!(aborted.len(), 1);
        let cp = e
            .checkpoint_of(NodeId(0), NodeId(1), MessageId(1))
            .expect("checkpointed");
        assert!((cp.bytes_sent - 300.0).abs() < 1e-9);
        assert_eq!(cp.bytes_total, 1000);

        // Re-enqueue: only the remaining 700 bytes are left, so the
        // transfer completes within 7 s instead of 10.
        assert!(e.enqueue(
            NodeId(0),
            NodeId(1),
            MessageId(1),
            1000,
            SimTime::from_secs(60.0)
        ));
        let (done, _) = step_all(&mut e, 7.0, 60.0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].bytes, 1000);
        assert_eq!(e.checkpoint_count(), 0, "completion drops the checkpoint");
    }

    #[test]
    fn resume_off_restarts_from_zero() {
        let mut e = engine();
        e.enqueue(NodeId(0), NodeId(1), MessageId(1), 1000, SimTime::ZERO);
        step_all(&mut e, 3.0, 0.0);
        e.abort_between(NodeId(0), NodeId(1), SimTime::ZERO);
        assert_eq!(e.checkpoint_count(), 0, "no checkpoints without resume");
        e.enqueue(
            NodeId(0),
            NodeId(1),
            MessageId(1),
            1000,
            SimTime::from_secs(60.0),
        );
        let (done, _) = step_all(&mut e, 7.0, 60.0);
        assert!(done.is_empty(), "restart needs the full 10 s again");
    }

    #[test]
    fn checkpoint_ignored_when_size_differs() {
        let mut e = engine();
        e.set_resume(true);
        e.enqueue(NodeId(0), NodeId(1), MessageId(1), 1000, SimTime::ZERO);
        step_all(&mut e, 3.0, 0.0);
        e.abort_between(NodeId(0), NodeId(1), SimTime::ZERO);
        // Same key, different payload size: must not resume from 300.
        e.enqueue(
            NodeId(0),
            NodeId(1),
            MessageId(1),
            500,
            SimTime::from_secs(60.0),
        );
        let (done, _) = step_all(&mut e, 3.0, 60.0);
        assert!(done.is_empty(), "500 B at 100 B/s needs 5 s from scratch");
        assert!(e.audit_bytes().is_empty());
    }

    #[test]
    fn cancel_and_source_gone_drop_checkpoints() {
        let mut e = engine();
        e.set_resume(true);
        e.enqueue(NodeId(0), NodeId(1), MessageId(1), 1000, SimTime::ZERO);
        step_all(&mut e, 3.0, 0.0);
        e.abort_between(NodeId(0), NodeId(1), SimTime::ZERO);
        assert_eq!(e.checkpoint_count(), 1);
        // Re-enqueue then cancel: deliberate abandonment clears custody.
        e.enqueue(
            NodeId(0),
            NodeId(1),
            MessageId(1),
            1000,
            SimTime::from_secs(10.0),
        );
        e.cancel(NodeId(0), NodeId(1), MessageId(1));
        assert_eq!(e.checkpoint_count(), 0);

        // Source-gone mid-flight clears the checkpoint too.
        e.enqueue(
            NodeId(0),
            NodeId(1),
            MessageId(2),
            1000,
            SimTime::from_secs(20.0),
        );
        step_all(&mut e, 3.0, 20.0);
        e.abort_between(NodeId(0), NodeId(1), SimTime::ZERO);
        assert_eq!(e.checkpoint_count(), 1);
        e.enqueue(
            NodeId(0),
            NodeId(1),
            MessageId(2),
            1000,
            SimTime::from_secs(30.0),
        );
        let (_, aborted) = e.step(
            SimDuration::from_secs(1.0),
            SimTime::from_secs(30.0),
            |_, _| false,
            |_, _| 10.0,
        );
        assert_eq!(aborted[0].reason, AbortReason::SourceGone);
        assert_eq!(e.checkpoint_count(), 0);
    }

    #[test]
    fn wipe_clears_checkpoints_for_either_endpoint() {
        let mut e = engine();
        e.set_resume(true);
        for (msg, from, to) in [(1, 0, 1), (2, 2, 0), (3, 2, 3)] {
            e.enqueue(
                NodeId(from),
                NodeId(to),
                MessageId(msg),
                1000,
                SimTime::ZERO,
            );
            step_all(&mut e, 3.0, 0.0);
            e.abort_between(NodeId(from), NodeId(to), SimTime::ZERO);
        }
        assert_eq!(e.checkpoint_count(), 3);
        e.clear_checkpoints_involving(NodeId(0));
        assert_eq!(e.checkpoint_count(), 1, "only 2->3 survives a wipe of 0");
        assert!(e
            .checkpoint_of(NodeId(2), NodeId(3), MessageId(3))
            .is_some());
    }

    #[test]
    fn active_index_tracks_queue_population() {
        let mut e = engine();
        assert_eq!(e.active_senders(), 0);
        e.enqueue(NodeId(0), NodeId(1), MessageId(1), 100, SimTime::ZERO);
        e.enqueue(NodeId(2), NodeId(3), MessageId(2), 1000, SimTime::ZERO);
        assert_eq!(e.active_senders(), 2);
        e.audit_active_index().unwrap();

        // Node 0's 100 B finish in one 1 s step; node 2 stays in flight.
        let (done, _) = step_all(&mut e, 1.0, 0.0);
        assert_eq!(done.len(), 1);
        assert_eq!(e.active_senders(), 1);
        e.audit_active_index().unwrap();

        e.cancel(NodeId(2), NodeId(3), MessageId(2)).unwrap();
        assert_eq!(e.active_senders(), 0);
        e.audit_active_index().unwrap();

        e.enqueue(NodeId(1), NodeId(0), MessageId(3), 500, SimTime::ZERO);
        e.abort_between(NodeId(0), NodeId(1), SimTime::ZERO);
        assert_eq!(e.active_senders(), 0);
        e.audit_active_index().unwrap();
    }

    #[test]
    fn checkpoint_capacity_evicts_least_recently_touched() {
        let mut e = engine();
        e.set_resume(true);
        e.set_checkpoint_capacity(2);
        // Three partial transfers checkpointed at t=10, 20, 30.
        for (msg, at) in [(1u64, 10.0), (2, 20.0), (3, 30.0)] {
            e.enqueue(
                NodeId(0),
                NodeId(1),
                MessageId(msg),
                1000,
                SimTime::from_secs(at),
            );
            step_all(&mut e, 3.0, at);
            e.abort_between(NodeId(0), NodeId(1), SimTime::from_secs(at));
        }
        assert_eq!(e.checkpoint_count(), 2, "capacity bound holds");
        assert_eq!(e.checkpoints_evicted(), 1);
        assert!(
            e.checkpoint_of(NodeId(0), NodeId(1), MessageId(1))
                .is_none(),
            "oldest touch (t=10) evicted first"
        );
        assert!(e
            .checkpoint_of(NodeId(0), NodeId(1), MessageId(2))
            .is_some());

        // Touch msg 2 by resuming it at t=40, then checkpoint msg 4:
        // msg 3 (untouched since t=30) is now the LRU victim.
        e.enqueue(
            NodeId(0),
            NodeId(1),
            MessageId(2),
            1000,
            SimTime::from_secs(40.0),
        );
        e.abort_between(NodeId(0), NodeId(1), SimTime::from_secs(40.0));
        e.enqueue(
            NodeId(0),
            NodeId(1),
            MessageId(4),
            1000,
            SimTime::from_secs(50.0),
        );
        step_all(&mut e, 3.0, 50.0);
        e.abort_between(NodeId(0), NodeId(1), SimTime::from_secs(50.0));
        assert_eq!(e.checkpoints_evicted(), 2);
        assert!(
            e.checkpoint_of(NodeId(0), NodeId(1), MessageId(3))
                .is_none(),
            "LRU victim is the untouched checkpoint, not the resumed one"
        );
        assert!(e
            .checkpoint_of(NodeId(0), NodeId(1), MessageId(2))
            .is_some());
        assert!(e
            .checkpoint_of(NodeId(0), NodeId(1), MessageId(4))
            .is_some());
        assert!(e.audit_bytes().is_empty());
    }

    #[test]
    fn zero_capacity_means_unbounded() {
        let mut e = engine();
        e.set_resume(true);
        for msg in 1..=5u64 {
            e.enqueue(NodeId(0), NodeId(1), MessageId(msg), 1000, SimTime::ZERO);
            step_all(&mut e, 1.0, 0.0);
            e.abort_between(NodeId(0), NodeId(1), SimTime::ZERO);
        }
        assert_eq!(e.checkpoint_count(), 5);
        assert_eq!(e.checkpoints_evicted(), 0);
    }

    #[test]
    fn recovery_policy_validates_and_defaults() {
        assert!(RecoveryPolicy::default().validate().is_ok());
        assert!(!RecoveryPolicy::default().is_inert());
        assert!(RecoveryPolicy::disabled().is_inert());
        let bad = RecoveryPolicy {
            backoff_cap_secs: 1.0,
            backoff_base_secs: 10.0,
            ..RecoveryPolicy::default()
        };
        assert!(bad.validate().is_err());
        let zero_base = RecoveryPolicy {
            backoff_base_secs: 0.0,
            backoff_cap_secs: 0.0,
            ..RecoveryPolicy::default()
        };
        assert!(zero_base.validate().is_err());
    }
}
