//! Bandwidth-limited message transfers.
//!
//! Each node transmits at most one message at a time (a half-duplex serial
//! radio, as in ONE); queued transfers to any peer wait behind the current
//! one. A transfer progresses at the link speed while the contact stays up
//! and is aborted if the contact drops or the sender loses its buffered copy
//! mid-flight.

use std::collections::VecDeque;

use crate::message::MessageId;
use crate::time::{SimDuration, SimTime};
use crate::world::NodeId;

/// A transfer that has been requested but not yet finished.
#[derive(Debug, Clone, PartialEq)]
pub struct Transfer {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// The message being pushed.
    pub message: MessageId,
    /// Payload size in bytes.
    pub bytes_total: u64,
    /// Bytes already on the air.
    pub bytes_sent: f64,
    /// When transmission of this message actually began (None while queued).
    pub started_at: Option<SimTime>,
    /// When the transfer was requested.
    pub requested_at: SimTime,
}

/// A finished transfer, reported to the protocol layer.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedTransfer {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// The message moved.
    pub message: MessageId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Time spent on the air.
    pub airtime: SimDuration,
    /// Distance between the endpoints at completion, in meters (feeds the
    /// Friis reception-power term of the hardware incentive).
    pub distance_m: f64,
    /// Completion time.
    pub finished_at: SimTime,
}

/// Why a transfer was aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The contact between the endpoints went down.
    ContactDown,
    /// The sender no longer holds the message (TTL expiry or eviction).
    SourceGone,
    /// The protocol cancelled it.
    Cancelled,
    /// The fault-injection layer destroyed the payload (loss or
    /// corruption): the transfer physically completed but nothing usable
    /// arrived.
    Injected,
}

/// An aborted transfer, reported to the protocol layer.
#[derive(Debug, Clone, PartialEq)]
pub struct AbortedTransfer {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// The message that did not make it.
    pub message: MessageId,
    /// Bytes wasted on the air before the abort.
    pub bytes_sent: f64,
    /// Why it failed.
    pub reason: AbortReason,
}

/// Per-sender transfer scheduling for the whole world.
#[derive(Debug)]
pub struct TransferEngine {
    /// One FIFO per sender; the head is the in-flight transfer.
    queues: Vec<VecDeque<Transfer>>,
    link_speed_bps: f64,
}

impl TransferEngine {
    /// Creates an engine for `node_count` nodes at `link_speed_bps`.
    ///
    /// # Panics
    ///
    /// Panics if the link speed is not strictly positive.
    #[must_use]
    pub fn new(node_count: usize, link_speed_bps: f64) -> Self {
        assert!(link_speed_bps > 0.0, "link speed must be positive");
        TransferEngine {
            queues: vec![VecDeque::new(); node_count],
            link_speed_bps,
        }
    }

    /// Queues a transfer of `message` from `from` to `to`.
    ///
    /// Duplicate enqueues of the same `(from, to, message)` are ignored and
    /// return `false`.
    pub fn enqueue(
        &mut self,
        from: NodeId,
        to: NodeId,
        message: MessageId,
        bytes: u64,
        now: SimTime,
    ) -> bool {
        let q = &mut self.queues[from.index()];
        if q.iter().any(|t| t.to == to && t.message == message) {
            return false;
        }
        q.push_back(Transfer {
            from,
            to,
            message,
            bytes_total: bytes,
            bytes_sent: 0.0,
            started_at: None,
            requested_at: now,
        });
        true
    }

    /// Number of queued + in-flight transfers for `from`.
    #[must_use]
    pub fn queue_len(&self, from: NodeId) -> usize {
        self.queues[from.index()].len()
    }

    /// Whether `(from, to, message)` is queued or in flight.
    #[must_use]
    pub fn is_pending(&self, from: NodeId, to: NodeId, message: MessageId) -> bool {
        self.queues[from.index()]
            .iter()
            .any(|t| t.to == to && t.message == message)
    }

    /// Total transfers pending across all senders.
    #[must_use]
    pub fn pending_total(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Aborts every pending transfer between `a` and `b` (both directions),
    /// returning the aborted records. Called on contact-down.
    pub fn abort_between(&mut self, a: NodeId, b: NodeId) -> Vec<AbortedTransfer> {
        let mut out = Vec::new();
        for (from, to) in [(a, b), (b, a)] {
            let q = &mut self.queues[from.index()];
            let mut keep = VecDeque::with_capacity(q.len());
            while let Some(t) = q.pop_front() {
                if t.to == to {
                    out.push(AbortedTransfer {
                        from: t.from,
                        to: t.to,
                        message: t.message,
                        bytes_sent: t.bytes_sent,
                        reason: AbortReason::ContactDown,
                    });
                } else {
                    keep.push_back(t);
                }
            }
            *q = keep;
        }
        out
    }

    /// Cancels a specific pending transfer, if present.
    pub fn cancel(
        &mut self,
        from: NodeId,
        to: NodeId,
        message: MessageId,
    ) -> Option<AbortedTransfer> {
        let q = &mut self.queues[from.index()];
        let pos = q.iter().position(|t| t.to == to && t.message == message)?;
        let t = q.remove(pos).expect("position valid");
        Some(AbortedTransfer {
            from: t.from,
            to: t.to,
            message: t.message,
            bytes_sent: t.bytes_sent,
            reason: AbortReason::Cancelled,
        })
    }

    /// Advances every sender's head transfer by `dt`.
    ///
    /// `sender_has_copy(from, message)` lets the engine abort transfers whose
    /// sender lost the buffered copy; `distance(a, b)` supplies the current
    /// distance for the completion record. Completions and aborts are
    /// returned sorted by sender id (deterministic).
    pub fn step(
        &mut self,
        dt: SimDuration,
        now: SimTime,
        mut sender_has_copy: impl FnMut(NodeId, MessageId) -> bool,
        mut distance: impl FnMut(NodeId, NodeId) -> f64,
    ) -> (Vec<CompletedTransfer>, Vec<AbortedTransfer>) {
        let mut completed = Vec::new();
        let mut aborted = Vec::new();
        for q in &mut self.queues {
            // Drop head transfers whose source copy vanished, then progress
            // the surviving head. Budget is per-sender airtime within dt.
            let mut budget = dt.as_secs();
            while budget > 0.0 {
                let Some(head) = q.front_mut() else { break };
                if !sender_has_copy(head.from, head.message) {
                    let t = q.pop_front().expect("head exists");
                    aborted.push(AbortedTransfer {
                        from: t.from,
                        to: t.to,
                        message: t.message,
                        bytes_sent: t.bytes_sent,
                        reason: AbortReason::SourceGone,
                    });
                    continue;
                }
                if head.started_at.is_none() {
                    head.started_at = Some(now);
                }
                let remaining_bytes = head.bytes_total as f64 - head.bytes_sent;
                let need_secs = remaining_bytes / self.link_speed_bps;
                if need_secs <= budget {
                    budget -= need_secs;
                    let t = q.pop_front().expect("head exists");
                    // Airtime is transmission time: the radio only pushes
                    // this transfer while it is the head, at link speed, so
                    // the on-air seconds are exactly bytes/speed. (Wall
                    // clock since `started_at` would double-count when two
                    // transfers finish within one step.)
                    let airtime =
                        SimDuration::from_secs(t.bytes_total as f64 / self.link_speed_bps);
                    completed.push(CompletedTransfer {
                        from: t.from,
                        to: t.to,
                        message: t.message,
                        bytes: t.bytes_total,
                        airtime,
                        distance_m: distance(t.from, t.to),
                        // Completion is processed within the step that
                        // starts at `now` (the receiver's copy records
                        // `received_at = now`), so the finish time matches.
                        finished_at: now,
                    });
                } else {
                    head.bytes_sent += budget * self.link_speed_bps;
                    budget = 0.0;
                }
            }
        }
        (completed, aborted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> TransferEngine {
        TransferEngine::new(4, 100.0) // 100 B/s for easy math
    }

    fn step_all(
        e: &mut TransferEngine,
        dt: f64,
        now: f64,
    ) -> (Vec<CompletedTransfer>, Vec<AbortedTransfer>) {
        e.step(
            SimDuration::from_secs(dt),
            SimTime::from_secs(now),
            |_, _| true,
            |_, _| 50.0,
        )
    }

    #[test]
    fn transfer_takes_size_over_speed_seconds() {
        let mut e = engine();
        assert!(e.enqueue(NodeId(0), NodeId(1), MessageId(1), 250, SimTime::ZERO));
        // 250 B at 100 B/s = 2.5 s: not done after 2 s...
        let (done, _) = step_all(&mut e, 1.0, 0.0);
        assert!(done.is_empty());
        let (done, _) = step_all(&mut e, 1.0, 1.0);
        assert!(done.is_empty());
        // ...done during the third second.
        let (done, _) = step_all(&mut e, 1.0, 2.0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].message, MessageId(1));
        assert_eq!(done[0].bytes, 250);
        assert_eq!(done[0].distance_m, 50.0);
        assert_eq!(e.pending_total(), 0);
    }

    #[test]
    fn sender_serializes_transfers() {
        let mut e = engine();
        e.enqueue(NodeId(0), NodeId(1), MessageId(1), 100, SimTime::ZERO);
        e.enqueue(NodeId(0), NodeId(2), MessageId(2), 100, SimTime::ZERO);
        // Both fit in one 2 s step (1 s each) because the budget rolls over.
        let (done, _) = step_all(&mut e, 2.0, 0.0);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].message, MessageId(1));
        assert_eq!(done[1].message, MessageId(2));
    }

    #[test]
    fn duplicate_enqueue_ignored() {
        let mut e = engine();
        assert!(e.enqueue(NodeId(0), NodeId(1), MessageId(1), 100, SimTime::ZERO));
        assert!(!e.enqueue(NodeId(0), NodeId(1), MessageId(1), 100, SimTime::ZERO));
        assert_eq!(e.queue_len(NodeId(0)), 1);
        assert!(e.is_pending(NodeId(0), NodeId(1), MessageId(1)));
    }

    #[test]
    fn abort_between_clears_both_directions() {
        let mut e = engine();
        e.enqueue(NodeId(0), NodeId(1), MessageId(1), 1000, SimTime::ZERO);
        e.enqueue(NodeId(1), NodeId(0), MessageId(2), 1000, SimTime::ZERO);
        e.enqueue(NodeId(0), NodeId(2), MessageId(3), 1000, SimTime::ZERO);
        let aborted = e.abort_between(NodeId(0), NodeId(1));
        assert_eq!(aborted.len(), 2);
        assert!(aborted.iter().all(|a| a.reason == AbortReason::ContactDown));
        assert!(
            e.is_pending(NodeId(0), NodeId(2), MessageId(3)),
            "unrelated survives"
        );
    }

    #[test]
    fn source_gone_aborts_in_flight() {
        let mut e = engine();
        e.enqueue(NodeId(0), NodeId(1), MessageId(1), 1000, SimTime::ZERO);
        let (done, aborted) = e.step(
            SimDuration::from_secs(1.0),
            SimTime::ZERO,
            |_, _| false,
            |_, _| 10.0,
        );
        assert!(done.is_empty());
        assert_eq!(aborted.len(), 1);
        assert_eq!(aborted[0].reason, AbortReason::SourceGone);
    }

    #[test]
    fn cancel_removes_pending() {
        let mut e = engine();
        e.enqueue(NodeId(0), NodeId(1), MessageId(1), 1000, SimTime::ZERO);
        let a = e
            .cancel(NodeId(0), NodeId(1), MessageId(1))
            .expect("pending");
        assert_eq!(a.reason, AbortReason::Cancelled);
        assert!(e.cancel(NodeId(0), NodeId(1), MessageId(1)).is_none());
        assert_eq!(e.pending_total(), 0);
    }

    #[test]
    fn partial_progress_is_tracked() {
        let mut e = engine();
        e.enqueue(NodeId(0), NodeId(1), MessageId(1), 1000, SimTime::ZERO);
        step_all(&mut e, 3.0, 0.0);
        let aborted = e.abort_between(NodeId(0), NodeId(1));
        assert_eq!(aborted.len(), 1);
        assert!((aborted[0].bytes_sent - 300.0).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_transfer_completes_immediately() {
        let mut e = engine();
        e.enqueue(NodeId(0), NodeId(1), MessageId(1), 0, SimTime::ZERO);
        let (done, _) = step_all(&mut e, 1.0, 0.0);
        assert_eq!(done.len(), 1);
    }
}
