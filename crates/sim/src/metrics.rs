//! Wall-clock observability: a metrics registry and a kernel phase profiler.
//!
//! Simulation results are deterministic under a seed, but *how fast* they
//! are produced is not — and the ROADMAP's scaling work needs wall-clock
//! visibility to prove any win. This module provides:
//!
//! * [`MetricsRegistry`] — a dependency-free store of monotonic counters,
//!   gauges and fixed-bucket [`Histogram`]s, serializable for `--metrics-out`
//!   dumps and `BENCH_*.json` baselines;
//! * [`Phase`] / [`PhaseProfiler`] — per-stage timers for the kernel step
//!   (mobility, contact diff, fault injection, protocol exchange, transfers,
//!   TTL sweep, settlement tick, invariant checks). When disabled the
//!   profiler never reads the clock: every probe is a branch on one `bool`;
//! * [`KernelCounters`] — always-on event tallies (plain `u64` increments)
//!   the kernel maintains in its hot path, from which events/sec throughput
//!   is derived.
//!
//! Nothing here feeds back into simulation state: a profiled run and an
//! unprofiled run of the same `(scenario, seed)` produce byte-identical
//! traces and summaries (asserted by tests).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::transfer::AbortReason;

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper bound of
/// bucket `i`, with one implicit overflow bucket at the end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    #[must_use]
    pub fn with_bounds(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The bucket upper bounds.
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Folds another histogram with identical bounds into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different buckets"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// A store of named monotonic counters, gauges and fixed-bucket
/// histograms. No external deps, no interior mutability, no background
/// threads — callers own it and mutate it directly.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (created at zero on first use).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_default() += delta;
    }

    /// Increments the named counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Reads a counter (0 if never written).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Raises a gauge to `value` if it exceeds the current reading —
    /// the idiom for peaks (e.g. peak buffer occupancy).
    pub fn gauge_max(&mut self, name: &str, value: f64) {
        let g = self.gauges.entry(name.to_owned()).or_insert(f64::MIN);
        if value > *g {
            *g = value;
        }
    }

    /// Reads a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records an observation into the named histogram, creating it with
    /// `bounds` on first use.
    pub fn observe(&mut self, name: &str, bounds: &[f64], value: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::with_bounds(bounds))
            .observe(value);
    }

    /// Reads a histogram.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Stores a pre-built histogram under `name` (merging into an existing
    /// one with identical bounds, replacing otherwise).
    pub fn insert_histogram(&mut self, name: &str, hist: Histogram) {
        match self.histograms.get_mut(name) {
            Some(mine) if mine.bounds == hist.bounds => mine.merge(&hist),
            _ => {
                self.histograms.insert(name.to_owned(), hist);
            }
        }
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Folds `other` into this registry: counters sum, gauges keep the
    /// maximum, histograms with matching bounds merge (mismatched bounds
    /// are skipped rather than corrupting buckets).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, &v) in &other.counters {
            *self.counters.entry(name.clone()).or_default() += v;
        }
        for (name, &v) in &other.gauges {
            self.gauge_max(name, v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) if mine.bounds == h.bounds => mine.merge(h),
                Some(_) => {}
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }
}

/// The stages of one kernel step, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Mobility-model updates (kernel stage 1).
    Mobility,
    /// Node-level fault injection: crashes, wipes, battery spikes (1b).
    FaultInjection,
    /// Spatial-grid rebuild, range query, link vetoes and contact diff (2).
    ContactDiff,
    /// Contact up/down dispatch into the protocol (directory/offer
    /// exchange in the DCIM router).
    ProtocolExchange,
    /// Scheduled message creations due this step (3).
    MessageCreation,
    /// Transfer engine progress plus completion/abort handling (4).
    Transfers,
    /// Periodic TTL sweep (5).
    TtlSweep,
    /// Protocol housekeeping tick — settlement, rating decay, sampling (6).
    SettlementTick,
    /// Cadenced invariant audit (7).
    InvariantCheck,
}

impl Phase {
    /// All phases, in execution order.
    pub const ALL: [Phase; 9] = [
        Phase::Mobility,
        Phase::FaultInjection,
        Phase::ContactDiff,
        Phase::ProtocolExchange,
        Phase::MessageCreation,
        Phase::Transfers,
        Phase::TtlSweep,
        Phase::SettlementTick,
        Phase::InvariantCheck,
    ];

    /// Stable snake-case label used in reports and JSON dumps.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::Mobility => "mobility",
            Phase::FaultInjection => "fault_injection",
            Phase::ContactDiff => "contact_diff",
            Phase::ProtocolExchange => "protocol_exchange",
            Phase::MessageCreation => "message_creation",
            Phase::Transfers => "transfers",
            Phase::TtlSweep => "ttl_sweep",
            Phase::SettlementTick => "settlement_tick",
            Phase::InvariantCheck => "invariant_check",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// One phase's accumulated wall-clock, for reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// The phase label (see [`Phase::label`]).
    pub phase: String,
    /// Total wall-clock seconds spent in this phase.
    pub secs: f64,
    /// Number of timed scopes.
    pub calls: u64,
}

/// Microsecond bucket bounds for the per-step wall-clock histogram.
pub const STEP_WALL_US_BOUNDS: [f64; 12] = [
    50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0, 100_000.0,
    500_000.0,
];

/// Accumulates wall-clock per kernel phase, plus a per-step histogram.
///
/// Disabled is the default and costs one branch per probe: [`start`]
/// returns `None` without touching the clock, and [`stop`] on `None` is a
/// no-op. Timing never influences simulation state.
///
/// [`start`]: PhaseProfiler::start
/// [`stop`]: PhaseProfiler::stop
#[derive(Debug, Clone)]
pub struct PhaseProfiler {
    enabled: bool,
    totals: [Duration; Phase::ALL.len()],
    calls: [u64; Phase::ALL.len()],
    step_wall_us: Histogram,
}

impl Default for PhaseProfiler {
    fn default() -> Self {
        Self::disabled()
    }
}

impl PhaseProfiler {
    /// A profiler that records nothing (the kernel default).
    #[must_use]
    pub fn disabled() -> Self {
        Self::new(false)
    }

    /// A recording profiler.
    #[must_use]
    pub fn enabled() -> Self {
        Self::new(true)
    }

    fn new(enabled: bool) -> Self {
        PhaseProfiler {
            enabled,
            totals: [Duration::ZERO; Phase::ALL.len()],
            calls: [0; Phase::ALL.len()],
            step_wall_us: Histogram::with_bounds(&STEP_WALL_US_BOUNDS),
        }
    }

    /// Whether this profiler records.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a timing scope: `None` (no clock read) when disabled.
    #[inline]
    #[must_use]
    pub fn start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes a timing scope opened by [`PhaseProfiler::start`],
    /// attributing the elapsed time to `phase`.
    #[inline]
    pub fn stop(&mut self, phase: Phase, started: Option<Instant>) {
        if let Some(t0) = started {
            self.totals[phase.index()] += t0.elapsed();
            self.calls[phase.index()] += 1;
        }
    }

    /// Closes a whole-step scope, feeding the per-step histogram.
    #[inline]
    pub fn stop_step(&mut self, started: Option<Instant>) {
        if let Some(t0) = started {
            let us = t0.elapsed().as_secs_f64() * 1e6;
            self.step_wall_us.observe(us);
        }
    }

    /// Accumulated wall-clock seconds for `phase`.
    #[must_use]
    pub fn phase_secs(&self, phase: Phase) -> f64 {
        self.totals[phase.index()].as_secs_f64()
    }

    /// Sum of all phase totals, seconds.
    #[must_use]
    pub fn total_secs(&self) -> f64 {
        self.totals.iter().map(Duration::as_secs_f64).sum()
    }

    /// The per-step wall-clock histogram (microseconds).
    #[must_use]
    pub fn step_wall_us(&self) -> &Histogram {
        &self.step_wall_us
    }

    /// All phase totals in execution order (including zero-time phases,
    /// so downstream schemas are stable).
    #[must_use]
    pub fn timings(&self) -> Vec<PhaseTiming> {
        Phase::ALL
            .iter()
            .map(|&p| PhaseTiming {
                phase: p.label().to_owned(),
                secs: self.totals[p.index()].as_secs_f64(),
                calls: self.calls[p.index()],
            })
            .collect()
    }

    /// A human-readable phase table (the CLI's `--verbose` output).
    #[must_use]
    pub fn render_table(&self) -> String {
        let total = self.total_secs().max(1e-12);
        let mut out = String::from("phase              wall (s)    share   scopes\n");
        for t in self.timings() {
            let _ = writeln!(
                out,
                "  {:<16} {:>9.4}   {:>5.1}%  {:>7}",
                t.phase,
                t.secs,
                100.0 * t.secs / total,
                t.calls
            );
        }
        let steps = self.step_wall_us.count();
        if steps > 0 {
            let _ = writeln!(
                out,
                "  {:<16} {:>9.4}   100.0%  {:>7}  (mean {:.0} µs/step)",
                "total",
                total,
                steps,
                self.step_wall_us.mean()
            );
        }
        out
    }
}

/// Always-on kernel event tallies, maintained as plain field increments in
/// the step loop (no map lookups on the hot path). "Events" is the
/// denominator-friendly sum of everything the kernel processed: contact
/// transitions, message creations, completed and aborted transfers, and
/// TTL expiries.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelCounters {
    /// Steps executed.
    pub steps: u64,
    /// Contacts that came up.
    pub contacts_up: u64,
    /// Contacts that went down.
    pub contacts_down: u64,
    /// Messages created by the schedule.
    pub messages_created: u64,
    /// Physically completed transfers (before fault rolls).
    pub transfers_completed: u64,
    /// Aborted transfers — lumped total across every reason (equals the
    /// sum of the four per-reason fields below).
    pub transfers_aborted: u64,
    /// Aborts caused by the contact dropping mid-transfer.
    pub transfers_aborted_contact: u64,
    /// Aborts caused by the sender losing its copy (TTL/eviction).
    pub transfers_aborted_source: u64,
    /// Aborts caused by deliberate protocol cancellation.
    pub transfers_aborted_cancelled: u64,
    /// Aborts injected by the fault layer (payload loss/corruption).
    pub transfers_aborted_injected: u64,
    /// Retries scheduled by the recovery layer (0 without a policy).
    pub transfers_retried: u64,
    /// Enqueues that resumed from a saved checkpoint instead of byte zero.
    pub transfers_resumed: u64,
    /// Retries abandoned because the copy or the demand vanished.
    pub transfers_abandoned: u64,
    /// Checkpoints dropped by the [`RecoveryPolicy::checkpoint_capacity`]
    /// LRU bound (not by completion, cancellation, or wipes).
    ///
    /// [`RecoveryPolicy::checkpoint_capacity`]: crate::transfer::RecoveryPolicy::checkpoint_capacity
    pub checkpoints_evicted: u64,
    /// Copies purged by the TTL sweep.
    pub ttl_expiries: u64,
    /// In-range pairs emitted by contact detection, summed over all steps
    /// (the sharded sweep's workload measure). Not part of [`Self::events`]
    /// — pairs are an input to the diff, not a kernel event.
    pub contact_pairs: u64,
    /// Senders visited by the batched transfer pass, summed over all steps.
    /// Under the active-pair index this counts only populated queues; the
    /// pre-index engine would have scanned `steps * node_count`. Not part
    /// of [`Self::events`].
    pub transfer_batch_senders: u64,
    /// Peak total buffered bytes across all nodes. Only tracked while the
    /// phase profiler is enabled (the scan is O(nodes) per step); reads 0
    /// on unprofiled runs.
    pub peak_buffer_bytes: u64,
}

impl KernelCounters {
    /// Records one abort, bumping both the lumped total and the matching
    /// per-reason tally (so corruption is distinguishable from mobility
    /// churn in exports and the `--verbose` render).
    pub fn note_abort(&mut self, reason: AbortReason) {
        self.transfers_aborted += 1;
        match reason {
            AbortReason::ContactDown => self.transfers_aborted_contact += 1,
            AbortReason::SourceGone => self.transfers_aborted_source += 1,
            AbortReason::Cancelled => self.transfers_aborted_cancelled += 1,
            AbortReason::Injected => self.transfers_aborted_injected += 1,
        }
    }

    /// Total kernel events processed (throughput numerator). The
    /// per-reason abort fields are a breakdown of `transfers_aborted`, not
    /// additional events; retry-queue traffic does count.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.contacts_up
            + self.contacts_down
            + self.messages_created
            + self.transfers_completed
            + self.transfers_aborted
            + self.transfers_retried
            + self.transfers_resumed
            + self.transfers_abandoned
            + self.ttl_expiries
    }

    /// Exports the counters into `registry` under `kernel.*` names.
    pub fn export(&self, registry: &mut MetricsRegistry) {
        registry.add("kernel.steps", self.steps);
        registry.add("kernel.contacts_up", self.contacts_up);
        registry.add("kernel.contacts_down", self.contacts_down);
        registry.add("kernel.messages_created", self.messages_created);
        registry.add("kernel.transfers_completed", self.transfers_completed);
        registry.add("kernel.transfers_aborted", self.transfers_aborted);
        registry.add(
            "kernel.transfers_aborted_contact",
            self.transfers_aborted_contact,
        );
        registry.add(
            "kernel.transfers_aborted_source",
            self.transfers_aborted_source,
        );
        registry.add(
            "kernel.transfers_aborted_cancelled",
            self.transfers_aborted_cancelled,
        );
        registry.add(
            "kernel.transfers_aborted_injected",
            self.transfers_aborted_injected,
        );
        registry.add("kernel.transfers_retried", self.transfers_retried);
        registry.add("kernel.transfers_resumed", self.transfers_resumed);
        registry.add("kernel.transfers_abandoned", self.transfers_abandoned);
        registry.add("kernel.checkpoints_evicted", self.checkpoints_evicted);
        registry.add("kernel.ttl_expiries", self.ttl_expiries);
        registry.add("kernel.contact_pairs", self.contact_pairs);
        registry.add("kernel.transfer_batch_senders", self.transfer_batch_senders);
        registry.add("kernel.events", self.events());
        registry.gauge_max("kernel.peak_buffer_bytes", self.peak_buffer_bytes as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::with_bounds(&[1.0, 10.0]);
        h.observe(0.5);
        h.observe(1.0); // inclusive upper bound
        h.observe(5.0);
        h.observe(99.0); // overflow
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 105.5 / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::with_bounds(&[10.0, 1.0]);
    }

    #[test]
    fn histogram_merge_sums_buckets() {
        let mut a = Histogram::with_bounds(&[1.0]);
        let mut b = Histogram::with_bounds(&[1.0]);
        a.observe(0.5);
        b.observe(2.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1]);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut m = MetricsRegistry::new();
        m.inc("relays");
        m.add("relays", 4);
        assert_eq!(m.counter("relays"), 5);
        assert_eq!(m.counter("missing"), 0);
        m.set_gauge("occupancy", 10.0);
        m.gauge_max("occupancy", 7.0);
        assert_eq!(m.gauge("occupancy"), Some(10.0));
        m.gauge_max("occupancy", 12.0);
        assert_eq!(m.gauge("occupancy"), Some(12.0));
        m.observe("lat", &[1.0, 2.0], 1.5);
        assert_eq!(m.histogram("lat").unwrap().count(), 1);
    }

    #[test]
    fn registry_merge_sums_and_maxes() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.add("x", 2);
        b.add("x", 3);
        b.add("y", 1);
        a.set_gauge("peak", 5.0);
        b.set_gauge("peak", 9.0);
        a.observe("h", &[1.0], 0.5);
        b.observe("h", &[1.0], 2.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.gauge("peak"), Some(9.0));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = PhaseProfiler::disabled();
        let t = p.start();
        assert!(t.is_none(), "disabled profiler must not read the clock");
        p.stop(Phase::Mobility, t);
        p.stop_step(t);
        assert_eq!(p.total_secs(), 0.0);
        assert_eq!(p.step_wall_us().count(), 0);
        assert!(p.timings().iter().all(|t| t.calls == 0));
    }

    #[test]
    fn enabled_profiler_attributes_time() {
        let mut p = PhaseProfiler::enabled();
        let t = p.start();
        assert!(t.is_some());
        std::thread::sleep(std::time::Duration::from_millis(2));
        p.stop(Phase::Transfers, t);
        let step = p.start();
        p.stop_step(step);
        assert!(p.phase_secs(Phase::Transfers) > 0.0);
        assert_eq!(p.phase_secs(Phase::Mobility), 0.0);
        assert_eq!(p.step_wall_us().count(), 1);
        let timings = p.timings();
        assert_eq!(timings.len(), Phase::ALL.len());
        let t = timings.iter().find(|t| t.phase == "transfers").unwrap();
        assert_eq!(t.calls, 1);
        assert!(t.secs > 0.0);
        let table = p.render_table();
        assert!(table.contains("transfers"));
        assert!(table.contains("total"));
    }

    #[test]
    fn kernel_counters_event_sum_and_export() {
        let c = KernelCounters {
            steps: 10,
            contacts_up: 3,
            contacts_down: 2,
            messages_created: 4,
            transfers_completed: 5,
            transfers_aborted: 1,
            transfers_aborted_contact: 1,
            transfers_aborted_source: 0,
            transfers_aborted_cancelled: 0,
            transfers_aborted_injected: 0,
            transfers_retried: 2,
            transfers_resumed: 1,
            transfers_abandoned: 1,
            checkpoints_evicted: 1,
            ttl_expiries: 6,
            contact_pairs: 40,
            transfer_batch_senders: 7,
            peak_buffer_bytes: 1000,
        };
        // Workload gauges (pairs scanned, senders batched) are inputs, not
        // events: the throughput numerator must not change under them.
        assert_eq!(c.events(), 25);
        let mut m = MetricsRegistry::new();
        c.export(&mut m);
        assert_eq!(m.counter("kernel.events"), 25);
        assert_eq!(m.counter("kernel.contact_pairs"), 40);
        assert_eq!(m.counter("kernel.transfer_batch_senders"), 7);
        assert_eq!(m.counter("kernel.steps"), 10);
        assert_eq!(m.counter("kernel.transfers_aborted_contact"), 1);
        assert_eq!(m.counter("kernel.transfers_retried"), 2);
        assert_eq!(m.counter("kernel.transfers_resumed"), 1);
        assert_eq!(m.counter("kernel.transfers_abandoned"), 1);
        assert_eq!(m.gauge("kernel.peak_buffer_bytes"), Some(1000.0));
    }

    #[test]
    fn note_abort_splits_by_reason() {
        let mut c = KernelCounters::default();
        c.note_abort(AbortReason::ContactDown);
        c.note_abort(AbortReason::ContactDown);
        c.note_abort(AbortReason::SourceGone);
        c.note_abort(AbortReason::Cancelled);
        c.note_abort(AbortReason::Injected);
        assert_eq!(c.transfers_aborted, 5);
        assert_eq!(
            c.transfers_aborted,
            c.transfers_aborted_contact
                + c.transfers_aborted_source
                + c.transfers_aborted_cancelled
                + c.transfers_aborted_injected
        );
        assert_eq!(c.transfers_aborted_contact, 2);
        assert_eq!(c.transfers_aborted_injected, 1);
    }
}
