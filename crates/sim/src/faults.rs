//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes a chaos schedule — node crash/reboot churn,
//! cuts of active links (short cut durations model contact flaps), battery
//! drain spikes, and loss/corruption of completed transfers. The kernel
//! applies the plan through a [`FaultInjector`] that draws every roll from
//! its **own** RNG substream, so a given `(scenario, seed, plan)` triple
//! replays byte-for-byte: faults land at the same steps, on the same nodes,
//! in the same order, without perturbing mobility or protocol randomness.
//!
//! Rates are expressed per node-hour (or per link-hour) and converted to a
//! per-step Bernoulli probability, which keeps a plan meaningful across
//! different step lengths. Plans round-trip through a compact text spec
//! ([`FaultPlan::from_str`] / [`fmt::Display`]) so an invariant breach can
//! report a one-line string that reproduces the run from the CLI.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::contact::ContactKey;
use crate::rng::{RngState, SimRng};
use crate::time::{SimDuration, SimTime};
use crate::world::NodeId;

/// RNG substream label for the fault layer ("FAULT" in ASCII).
const FAULT_STREAM: u64 = 0x4641_554C_5400_0000;

/// A declarative chaos schedule. All rates default to zero (an inert plan).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Expected crashes per node-hour.
    pub crash_per_hour: f64,
    /// How long a crashed node stays down before rebooting, in seconds.
    pub crash_down_secs: f64,
    /// Whether a crash wipes the node's buffer (power loss vs. reboot of a
    /// node with persistent storage).
    pub crash_wipes_buffer: bool,
    /// Expected cuts per active-link-hour. Pair with a small
    /// [`FaultPlan::link_cut_secs`] to model contact flaps.
    pub link_cut_per_hour: f64,
    /// How long a cut link stays blocked, in seconds.
    pub link_cut_secs: f64,
    /// Expected battery drain spikes per node-hour.
    pub battery_spike_per_hour: f64,
    /// Joules drained by one spike.
    pub battery_spike_joules: f64,
    /// Probability that a completed transfer's payload is lost in flight.
    pub transfer_loss_prob: f64,
    /// Probability that a completed transfer's payload arrives corrupted.
    /// Rolled after loss; both destroy the copy before it is stored.
    pub transfer_corrupt_prob: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            crash_per_hour: 0.0,
            crash_down_secs: 300.0,
            crash_wipes_buffer: false,
            link_cut_per_hour: 0.0,
            link_cut_secs: 60.0,
            battery_spike_per_hour: 0.0,
            battery_spike_joules: 10.0,
            transfer_loss_prob: 0.0,
            transfer_corrupt_prob: 0.0,
        }
    }
}

impl FaultPlan {
    /// Whether the plan injects nothing (all rates and probabilities zero).
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.crash_per_hour == 0.0
            && self.link_cut_per_hour == 0.0
            && self.battery_spike_per_hour == 0.0
            && self.transfer_loss_prob == 0.0
            && self.transfer_corrupt_prob == 0.0
    }

    /// Checks the plan for nonsense values.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found: negative or
    /// non-finite rates, probabilities outside `[0, 1]`, or non-positive
    /// durations/magnitudes on an active fault class.
    pub fn validate(&self) -> Result<(), String> {
        let rate = |name: &str, v: f64| {
            if v.is_finite() && v >= 0.0 {
                Ok(())
            } else {
                Err(format!(
                    "{name} must be a finite non-negative rate, got {v}"
                ))
            }
        };
        rate("crash_per_hour", self.crash_per_hour)?;
        rate("link_cut_per_hour", self.link_cut_per_hour)?;
        rate("battery_spike_per_hour", self.battery_spike_per_hour)?;
        let prob = |name: &str, v: f64| {
            if v.is_finite() && (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{name} must be a probability in [0, 1], got {v}"))
            }
        };
        prob("transfer_loss_prob", self.transfer_loss_prob)?;
        prob("transfer_corrupt_prob", self.transfer_corrupt_prob)?;
        // `is_nan() || <= 0` rather than `!(v > 0.0)`: same NaN-rejecting
        // semantics, readable to clippy.
        if self.crash_per_hour > 0.0
            && (self.crash_down_secs.is_nan() || self.crash_down_secs <= 0.0)
        {
            return Err(format!(
                "crash_down_secs must be positive when crashes are enabled, got {}",
                self.crash_down_secs
            ));
        }
        if self.link_cut_per_hour > 0.0
            && (self.link_cut_secs.is_nan() || self.link_cut_secs <= 0.0)
        {
            return Err(format!(
                "link_cut_secs must be positive when link cuts are enabled, got {}",
                self.link_cut_secs
            ));
        }
        if self.battery_spike_per_hour > 0.0
            && (self.battery_spike_joules.is_nan() || self.battery_spike_joules <= 0.0)
        {
            return Err(format!(
                "battery_spike_joules must be positive when spikes are enabled, got {}",
                self.battery_spike_joules
            ));
        }
        Ok(())
    }
}

/// Renders the compact spec accepted by [`FaultPlan::from_str`]; the
/// round-trip is exact (`f64` `Display` is lossless).
impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "crash={},crashdown={},wipe={},cut={},cutdown={},spike={},spikej={},loss={},corrupt={}",
            self.crash_per_hour,
            self.crash_down_secs,
            self.crash_wipes_buffer,
            self.link_cut_per_hour,
            self.link_cut_secs,
            self.battery_spike_per_hour,
            self.battery_spike_joules,
            self.transfer_loss_prob,
            self.transfer_corrupt_prob,
        )
    }
}

/// Parses the compact `key=value` spec, e.g.
/// `crash=2,crashdown=120,wipe,cut=4,cutdown=30,loss=0.02`.
///
/// Keys may appear in any order; missing keys keep their defaults. `wipe`
/// may be given bare (meaning `wipe=true`) or as `wipe=true|false`. Rates
/// (`crash`, `cut`, `spike`) are per hour; durations (`crashdown`,
/// `cutdown`) are seconds; `spikej` is joules; `loss`/`corrupt` are
/// probabilities.
impl FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut plan = FaultPlan::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = match part.split_once('=') {
                Some((k, v)) => (k.trim(), Some(v.trim())),
                None => (part, None),
            };
            let num = || -> Result<f64, String> {
                let v = value.ok_or_else(|| format!("chaos key `{key}` needs a value"))?;
                v.parse::<f64>()
                    .map_err(|_| format!("chaos key `{key}`: `{v}` is not a number"))
            };
            match key {
                "crash" => plan.crash_per_hour = num()?,
                "crashdown" => plan.crash_down_secs = num()?,
                "wipe" => {
                    plan.crash_wipes_buffer = match value {
                        None | Some("true") => true,
                        Some("false") => false,
                        Some(v) => return Err(format!("chaos key `wipe`: `{v}` is not a bool")),
                    };
                }
                "cut" => plan.link_cut_per_hour = num()?,
                "cutdown" => plan.link_cut_secs = num()?,
                "spike" => plan.battery_spike_per_hour = num()?,
                "spikej" => plan.battery_spike_joules = num()?,
                "loss" => plan.transfer_loss_prob = num()?,
                "corrupt" => plan.transfer_corrupt_prob = num()?,
                other => return Err(format!("unknown chaos key `{other}`")),
            }
        }
        plan.validate()?;
        Ok(plan)
    }
}

/// Counters for every fault the injector actually landed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Nodes crashed.
    pub crashes: u64,
    /// Nodes rebooted after a crash.
    pub reboots: u64,
    /// Buffered copies destroyed by crash wipes.
    pub copies_wiped: u64,
    /// Active links cut.
    pub link_cuts: u64,
    /// Battery drain spikes applied.
    pub battery_spikes: u64,
    /// Completed transfers whose payload was lost.
    pub transfers_lost: u64,
    /// Completed transfers whose payload arrived corrupted.
    pub transfers_corrupted: u64,
}

impl FaultStats {
    /// Total number of injected fault events (wipes count via their crash).
    #[must_use]
    pub fn total_injected(&self) -> u64 {
        self.crashes
            + self.link_cuts
            + self.battery_spikes
            + self.transfers_lost
            + self.transfers_corrupted
    }
}

/// A node-level fault the kernel must apply this step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeFault {
    /// The node crashed: its links drop and, if `wipe`, its buffer empties.
    Crashed {
        /// The crashed node.
        node: NodeId,
        /// Whether the buffer is wiped.
        wipe: bool,
    },
    /// The node finished its downtime and is back.
    Rebooted {
        /// The rebooted node.
        node: NodeId,
    },
    /// A battery drain spike.
    BatterySpike {
        /// The drained node.
        node: NodeId,
        /// Joules to drain.
        joules: f64,
    },
}

/// What happened to a completed transfer's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferFault {
    /// The payload never arrived.
    Loss,
    /// The payload arrived unusable.
    Corruption,
}

/// Applies a [`FaultPlan`] deterministically, step by step.
///
/// All randomness comes from one substream of the simulation's root RNG, so
/// the injector neither reads nor perturbs mobility/protocol streams.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SimRng,
    /// Per node: when a crashed node reboots (`None` = node is up).
    down_until: Vec<Option<SimTime>>,
    /// Cut links and when they unblock.
    blocked_until: HashMap<ContactKey, SimTime>,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector for `node_count` nodes, drawing from a dedicated
    /// substream of `root`.
    #[must_use]
    pub fn new(plan: FaultPlan, root: &SimRng, node_count: usize) -> Self {
        FaultInjector {
            plan,
            rng: root.stream(FAULT_STREAM),
            down_until: vec![None; node_count],
            blocked_until: HashMap::new(),
            stats: FaultStats::default(),
        }
    }

    /// The plan being applied.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counts of faults landed so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Whether `node` is currently crashed.
    #[must_use]
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down_until[node.index()].is_some()
    }

    /// Converts a per-hour rate into this step's Bernoulli probability.
    fn step_prob(rate_per_hour: f64, dt: SimDuration) -> f64 {
        (rate_per_hour / 3600.0 * dt.as_secs()).clamp(0.0, 1.0)
    }

    /// Advances the per-node crash/reboot machines and rolls battery
    /// spikes for one step. Returns the faults the kernel must apply, in
    /// deterministic node order.
    pub fn step_nodes(&mut self, now: SimTime, dt: SimDuration) -> Vec<NodeFault> {
        let crash_p = Self::step_prob(self.plan.crash_per_hour, dt);
        let spike_p = Self::step_prob(self.plan.battery_spike_per_hour, dt);
        if crash_p == 0.0 && spike_p == 0.0 && self.down_until.iter().all(Option::is_none) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for i in 0..self.down_until.len() {
            let node = NodeId(i as u32);
            match self.down_until[i] {
                Some(until) if until <= now => {
                    self.down_until[i] = None;
                    self.stats.reboots += 1;
                    out.push(NodeFault::Rebooted { node });
                }
                Some(_) => continue, // still down: no further faults apply
                None => {}
            }
            if crash_p > 0.0 && self.rng.chance(crash_p) {
                self.down_until[i] = Some(now + SimDuration::from_secs(self.plan.crash_down_secs));
                self.stats.crashes += 1;
                out.push(NodeFault::Crashed {
                    node,
                    wipe: self.plan.crash_wipes_buffer,
                });
                continue; // a node that just crashed takes no spike
            }
            if spike_p > 0.0 && self.rng.chance(spike_p) {
                self.stats.battery_spikes += 1;
                out.push(NodeFault::BatterySpike {
                    node,
                    joules: self.plan.battery_spike_joules,
                });
            }
        }
        out
    }

    /// Records buffer copies destroyed by a crash wipe.
    pub(crate) fn note_wiped(&mut self, copies: usize) {
        self.stats.copies_wiped += copies as u64;
    }

    /// Filters this step's in-range pairs: removes pairs touching a crashed
    /// node or a still-blocked cut link, then rolls fresh cuts on pairs
    /// whose contact is currently up. Returns the freshly cut links so the
    /// kernel can trace them.
    pub fn veto_links(
        &mut self,
        in_range: &mut Vec<ContactKey>,
        mut is_up: impl FnMut(ContactKey) -> bool,
        now: SimTime,
        dt: SimDuration,
    ) -> Vec<ContactKey> {
        self.blocked_until.retain(|_, until| *until > now);
        let cut_p = Self::step_prob(self.plan.link_cut_per_hour, dt);
        let mut cuts = Vec::new();
        in_range.retain(|&key| {
            if self.down_until[key.0.index()].is_some() || self.down_until[key.1.index()].is_some()
            {
                return false;
            }
            if self.blocked_until.contains_key(&key) {
                return false;
            }
            // Only an *active* link can be cut; pairs that merely came into
            // range this step have nothing to sever yet.
            if cut_p > 0.0 && is_up(key) && self.rng.chance(cut_p) {
                self.blocked_until
                    .insert(key, now + SimDuration::from_secs(self.plan.link_cut_secs));
                self.stats.link_cuts += 1;
                cuts.push(key);
                return false;
            }
            true
        });
        cuts
    }

    /// Captures the injector's dynamic state (RNG position, crash/cut
    /// machines, landed-fault counters) for a snapshot. The plan itself is
    /// rebuilt from the scenario on restore.
    #[must_use]
    pub fn export_state(&self) -> FaultInjectorState {
        let mut blocked_until: Vec<(NodeId, NodeId, SimTime)> = self
            .blocked_until
            .iter()
            .map(|(k, &until)| (k.0, k.1, until))
            .collect();
        blocked_until.sort_by_key(|&(a, b, _)| (a, b));
        FaultInjectorState {
            rng: self.rng.state(),
            down_until: self.down_until.clone(),
            blocked_until,
            stats: self.stats,
        }
    }

    /// Overwrites the injector's dynamic state from a snapshot, keeping
    /// the configured plan.
    ///
    /// # Errors
    ///
    /// Rejects a state sized for a different node count.
    pub fn import_state(&mut self, state: &FaultInjectorState) -> Result<(), String> {
        if state.down_until.len() != self.down_until.len() {
            return Err(format!(
                "snapshot fault state covers {} nodes, world has {}",
                state.down_until.len(),
                self.down_until.len()
            ));
        }
        self.rng = SimRng::from_state(state.rng);
        self.down_until = state.down_until.clone();
        self.blocked_until = state
            .blocked_until
            .iter()
            .map(|&(a, b, until)| (ContactKey(a, b), until))
            .collect();
        self.stats = state.stats;
        Ok(())
    }

    /// Rolls loss/corruption for one completed transfer (loss first).
    /// Returns `None` when the payload survives.
    pub fn roll_transfer_fault(&mut self) -> Option<TransferFault> {
        if self.plan.transfer_loss_prob > 0.0 && self.rng.chance(self.plan.transfer_loss_prob) {
            self.stats.transfers_lost += 1;
            return Some(TransferFault::Loss);
        }
        if self.plan.transfer_corrupt_prob > 0.0 && self.rng.chance(self.plan.transfer_corrupt_prob)
        {
            self.stats.transfers_corrupted += 1;
            return Some(TransferFault::Corruption);
        }
        None
    }
}

/// The dynamic state of a [`FaultInjector`]: its RNG position, the
/// crash/cut machines, and the landed-fault counters. The plan is not
/// included — it is rebuilt from the scenario on restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultInjectorState {
    /// Position of the fault substream RNG.
    pub rng: RngState,
    /// Per node: when a crashed node reboots (`None` = node is up).
    pub down_until: Vec<Option<SimTime>>,
    /// Cut links and when they unblock, sorted by endpoint pair.
    pub blocked_until: Vec<(NodeId, NodeId, SimTime)>,
    /// Faults landed so far.
    pub stats: FaultStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert_and_valid() {
        let p = FaultPlan::default();
        assert!(p.is_inert());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn spec_round_trips() {
        let plan = FaultPlan {
            crash_per_hour: 2.5,
            crash_down_secs: 120.0,
            crash_wipes_buffer: true,
            link_cut_per_hour: 4.0,
            link_cut_secs: 30.0,
            battery_spike_per_hour: 1.0,
            battery_spike_joules: 55.5,
            transfer_loss_prob: 0.02,
            transfer_corrupt_prob: 0.01,
        };
        let rendered = plan.to_string();
        let parsed: FaultPlan = rendered.parse().expect("rendered spec parses");
        assert_eq!(parsed, plan);
    }

    #[test]
    fn spec_accepts_subsets_and_bare_wipe() {
        let plan: FaultPlan = "crash=1, wipe ,loss=0.5".parse().expect("parses");
        assert_eq!(plan.crash_per_hour, 1.0);
        assert!(plan.crash_wipes_buffer);
        assert_eq!(plan.transfer_loss_prob, 0.5);
        assert_eq!(plan.link_cut_per_hour, 0.0, "unset keys keep defaults");
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!("crash=fast".parse::<FaultPlan>().is_err());
        assert!("warp=9".parse::<FaultPlan>().is_err());
        assert!("loss=1.5".parse::<FaultPlan>().is_err(), "validated too");
        assert!("crash".parse::<FaultPlan>().is_err(), "rate needs a value");
    }

    #[test]
    fn validate_catches_bad_values() {
        let p = FaultPlan {
            crash_per_hour: -1.0,
            ..FaultPlan::default()
        };
        assert!(p.validate().is_err());
        let p = FaultPlan {
            transfer_corrupt_prob: f64::NAN,
            ..FaultPlan::default()
        };
        assert!(p.validate().is_err());
        let p = FaultPlan {
            crash_per_hour: 1.0,
            crash_down_secs: 0.0,
            ..FaultPlan::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn injector_is_deterministic() {
        let run = || {
            let root = SimRng::new(42);
            let plan: FaultPlan = "crash=50,crashdown=10,spike=80,spikej=1".parse().unwrap();
            let mut inj = FaultInjector::new(plan, &root, 8);
            let mut events = Vec::new();
            for s in 0..600 {
                let now = SimTime::from_secs(f64::from(s));
                events.extend(inj.step_nodes(now, SimDuration::from_secs(1.0)));
            }
            (events, inj.stats())
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b, "same seed+plan must inject identically");
        assert_eq!(sa, sb);
        assert!(sa.crashes > 0, "50/h over 8 node-hours-ish must land");
        assert!(sa.reboots > 0, "10 s downtime reboots within the run");
    }

    #[test]
    fn crashed_nodes_stay_down_for_the_configured_time() {
        let root = SimRng::new(7);
        let plan: FaultPlan = "crash=3600,crashdown=5".parse().unwrap(); // certain crash
        let mut inj = FaultInjector::new(plan, &root, 1);
        let dt = SimDuration::from_secs(1.0);
        let f = inj.step_nodes(SimTime::from_secs(0.0), dt);
        assert!(matches!(f[0], NodeFault::Crashed { .. }));
        for s in 1..5 {
            assert!(inj.is_down(NodeId(0)));
            assert!(inj
                .step_nodes(SimTime::from_secs(f64::from(s)), dt)
                .is_empty());
        }
        let f = inj.step_nodes(SimTime::from_secs(5.0), dt);
        assert!(matches!(f[0], NodeFault::Rebooted { .. }), "back at t=5");
    }

    #[test]
    fn veto_drops_down_nodes_and_cuts_active_links() {
        let root = SimRng::new(7);
        let plan: FaultPlan = "crash=3600,crashdown=100,cut=3600,cutdown=10"
            .parse()
            .unwrap();
        let mut inj = FaultInjector::new(plan, &root, 3);
        let dt = SimDuration::from_secs(1.0);
        inj.step_nodes(SimTime::ZERO, dt); // everyone crashes (certain rate)
        let mut in_range = vec![
            ContactKey(NodeId(0), NodeId(1)),
            ContactKey(NodeId(1), NodeId(2)),
        ];
        let cuts = inj.veto_links(&mut in_range, |_| true, SimTime::ZERO, dt);
        assert!(in_range.is_empty(), "crashed endpoints veto every pair");
        assert!(cuts.is_empty(), "nothing left to cut");

        // A fresh injector with only link cuts: certain cut on active links.
        let mut inj = FaultInjector::new("cut=3600,cutdown=10".parse().unwrap(), &root, 3);
        let mut in_range = vec![ContactKey(NodeId(0), NodeId(1))];
        let cuts = inj.veto_links(&mut in_range, |_| true, SimTime::ZERO, dt);
        assert_eq!(cuts.len(), 1);
        assert!(in_range.is_empty());
        // Blocked for 10 s: still vetoed without re-rolling.
        let mut in_range = vec![ContactKey(NodeId(0), NodeId(1))];
        let cuts = inj.veto_links(&mut in_range, |_| false, SimTime::from_secs(5.0), dt);
        assert!(cuts.is_empty());
        assert!(in_range.is_empty());
        // After expiry the pair may reconnect.
        let mut in_range = vec![ContactKey(NodeId(0), NodeId(1))];
        let _ = inj.veto_links(&mut in_range, |_| false, SimTime::from_secs(10.0), dt);
        assert_eq!(in_range.len(), 1, "block expired; pair passes (not up yet)");
    }

    #[test]
    fn transfer_faults_follow_probabilities() {
        let root = SimRng::new(9);
        let mut inj = FaultInjector::new("loss=1".parse().unwrap(), &root, 1);
        assert_eq!(inj.roll_transfer_fault(), Some(TransferFault::Loss));
        let mut inj = FaultInjector::new("corrupt=1".parse().unwrap(), &root, 1);
        assert_eq!(inj.roll_transfer_fault(), Some(TransferFault::Corruption));
        let mut inj = FaultInjector::new(FaultPlan::default(), &root, 1);
        assert_eq!(inj.roll_transfer_fault(), None);
    }
}
