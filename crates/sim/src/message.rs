//! The data-centric message model.
//!
//! A message in this system is an encapsulation of multimedia data plus
//! metadata tags (Paper I, §3.1): a unique id, creation timestamp, source,
//! size, MIME-like kind, a priority set by the source, a scalar quality, and
//! a growing list of keyword *annotations*. Destinations are not named —
//! they are discovered en route as nodes whose direct interests match the
//! annotations (data-centric delivery).
//!
//! For the reputation experiments every message additionally carries a
//! hidden *ground-truth* keyword set describing what the (simulated) image
//! actually contains. Honest annotators draw tags from this set; malicious
//! annotators draw from outside it; recipients judge tag relevance against
//! it. The ground truth is simulation-side oracle data and is never consulted
//! by the routing or incentive code paths.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;
use crate::world::NodeId;

/// A unique message identifier (the paper's UUID field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId(pub u64);

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// An interned interest / annotation keyword.
///
/// Scenarios draw keywords from a fixed pool (Table 5.1 uses a pool of 200);
/// interning them as small integers keeps interest tables and annotation
/// lists cheap to compare and hash. The human-readable spelling lives in the
/// workload layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Keyword(pub u32);

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kw{}", self.0)
    }
}

/// Message priority as set by the source (Table 3.1: 1 = high … 3 = low).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// Highest priority (paper value 1).
    High,
    /// Medium priority (paper value 2).
    Medium,
    /// Lowest priority (paper value 3).
    Low,
}

impl Priority {
    /// The paper's numeric encoding: 1 for high, 2 for medium, 3 for low.
    ///
    /// Algorithm 3 divides by this value, so high priority yields the
    /// largest incentive term.
    #[must_use]
    pub fn level(self) -> u8 {
        match self {
            Priority::High => 1,
            Priority::Medium => 2,
            Priority::Low => 3,
        }
    }

    /// All priorities, highest first.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Medium, Priority::Low];
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Priority::High => "high",
            Priority::Medium => "medium",
            Priority::Low => "low",
        };
        f.write_str(s)
    }
}

/// Message quality in `[0, 1]`, fixed at creation.
///
/// The paper treats quality as a static per-message property rated by
/// recipients; `1.0` is the best producible quality (`Q_m` in Table 3.1 is
/// the max over a node's buffered messages).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Quality(f64);

impl Quality {
    /// The maximum quality.
    pub const MAX: Quality = Quality(1.0);

    /// Creates a quality value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside `[0, 1]` or not finite.
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && (0.0..=1.0).contains(&value),
            "quality must lie in [0, 1]"
        );
        Quality(value)
    }

    /// The raw value in `[0, 1]`.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }
}

/// One keyword annotation attached to a message, with provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Annotation {
    /// The tag itself.
    pub keyword: Keyword,
    /// The node that added the tag (the source for original tags, an
    /// intermediate node for enrichment tags).
    pub annotator: NodeId,
    /// When the tag was added.
    pub added_at_secs: u64,
}

/// The immutable part of a message, shared by every buffered copy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MessageBody {
    /// Unique id (the paper's UUID).
    pub id: MessageId,
    /// Originating node.
    pub source: NodeId,
    /// Creation time.
    pub created_at: SimTime,
    /// Payload size in bytes (Table 5.1 default: 1 MB).
    pub size_bytes: u64,
    /// Time-to-live after which every copy is purged.
    pub ttl_secs: f64,
    /// Priority set by the source.
    pub priority: Priority,
    /// Intrinsic quality of the content.
    pub quality: Quality,
    /// Oracle: what the content *actually* depicts. Tags inside this set are
    /// relevant; tags outside it are irrelevant. Never read by protocol code.
    pub ground_truth: Vec<Keyword>,
}

impl MessageBody {
    /// Whether the message has expired at time `now`.
    #[must_use]
    pub fn is_expired(&self, now: SimTime) -> bool {
        now.duration_since(self.created_at).as_secs() > self.ttl_secs
    }

    /// Whether `keyword` is relevant to the actual content (oracle check,
    /// used by the simulated human raters and by evaluation code only).
    #[must_use]
    pub fn truth_contains(&self, keyword: Keyword) -> bool {
        self.ground_truth.contains(&keyword)
    }
}

/// A node's buffered copy of a message.
///
/// Annotations and the hop record grow as the copy travels; the body is
/// shared. Copies diverge: two copies of the same message on different paths
/// can carry different enrichment tags, exactly as in the paper's model.
#[derive(Debug, Clone)]
pub struct MessageCopy {
    /// The shared immutable body.
    pub body: Arc<MessageBody>,
    /// All tags currently on this copy, source tags first, in add order.
    pub annotations: Vec<Annotation>,
    /// Every node this copy has visited, starting with the source.
    pub path: Vec<NodeId>,
    /// When this node received (or created) the copy.
    pub received_at: SimTime,
}

impl MessageCopy {
    /// Creates the source's initial copy.
    #[must_use]
    pub fn original(body: Arc<MessageBody>, source_tags: Vec<Keyword>, now: SimTime) -> Self {
        let source = body.source;
        let annotations = source_tags
            .into_iter()
            .map(|keyword| Annotation {
                keyword,
                annotator: source,
                added_at_secs: now.as_secs() as u64,
            })
            .collect();
        MessageCopy {
            body,
            annotations,
            path: vec![source],
            received_at: now,
        }
    }

    /// The message id.
    #[must_use]
    pub fn id(&self) -> MessageId {
        self.body.id
    }

    /// Payload size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.body.size_bytes
    }

    /// Keywords currently annotating this copy (with duplicates removed,
    /// preserving first-seen order).
    #[must_use]
    pub fn keywords(&self) -> Vec<Keyword> {
        let mut seen = Vec::with_capacity(self.annotations.len());
        self.keywords_into(&mut seen);
        seen
    }

    /// [`Self::keywords`] into a caller-owned buffer (cleared first) —
    /// the offer path runs once per (pair, message) every settlement
    /// tick, and a fresh allocation there dominated its profile.
    pub fn keywords_into(&self, out: &mut Vec<Keyword>) {
        out.clear();
        for a in &self.annotations {
            if !out.contains(&a.keyword) {
                out.push(a.keyword);
            }
        }
    }

    /// Tags added by `node` (the enrichment contribution of one relay).
    #[must_use]
    pub fn tags_added_by(&self, node: NodeId) -> Vec<Keyword> {
        self.annotations
            .iter()
            .filter(|a| a.annotator == node)
            .map(|a| a.keyword)
            .collect()
    }

    /// Tags `node` added *en route* — its enrichment contribution,
    /// excluding the source's creation-time annotations. This is the set
    /// the tag reward `I_t` compensates (the paper rewards "additional
    /// annotations applied to in-transit messages", not the original
    /// labels).
    #[must_use]
    pub fn enrichment_tags_by(&self, node: NodeId) -> Vec<Keyword> {
        let created = self.body.created_at.as_secs() as u64;
        self.annotations
            .iter()
            .filter(|a| {
                a.annotator == node && !(node == self.body.source && a.added_at_secs == created)
            })
            .map(|a| a.keyword)
            .collect()
    }

    /// Adds an enrichment tag if not already present.
    ///
    /// Returns `true` if the tag was new.
    pub fn enrich(&mut self, keyword: Keyword, annotator: NodeId, now: SimTime) -> bool {
        if self.annotations.iter().any(|a| a.keyword == keyword) {
            return false;
        }
        self.annotations.push(Annotation {
            keyword,
            annotator,
            added_at_secs: now.as_secs() as u64,
        });
        true
    }

    /// Records arrival at `node` at time `now`, producing the copy the
    /// receiving node buffers.
    #[must_use]
    pub fn arrived_at(&self, node: NodeId, now: SimTime) -> MessageCopy {
        let mut copy = self.clone();
        copy.path.push(node);
        copy.received_at = now;
        copy
    }

    /// The relays between source and the current holder (excludes both
    /// endpoints of the path).
    #[must_use]
    pub fn intermediate_hops(&self) -> &[NodeId] {
        if self.path.len() <= 2 {
            &[]
        } else {
            &self.path[1..self.path.len() - 1]
        }
    }

    /// Number of hops travelled (path length minus one).
    #[must_use]
    pub fn hop_count(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(id: u64, src: u32) -> Arc<MessageBody> {
        Arc::new(MessageBody {
            id: MessageId(id),
            source: NodeId(src),
            created_at: SimTime::ZERO,
            size_bytes: 1_000_000,
            ttl_secs: 3600.0,
            priority: Priority::High,
            quality: Quality::new(0.9),
            ground_truth: vec![Keyword(1), Keyword(2), Keyword(3)],
        })
    }

    #[test]
    fn priority_levels_match_paper_encoding() {
        assert_eq!(Priority::High.level(), 1);
        assert_eq!(Priority::Medium.level(), 2);
        assert_eq!(Priority::Low.level(), 3);
    }

    #[test]
    fn quality_bounds_enforced() {
        assert_eq!(Quality::new(0.0).value(), 0.0);
        assert_eq!(Quality::MAX.value(), 1.0);
    }

    #[test]
    #[should_panic(expected = "quality")]
    fn quality_above_one_rejected() {
        let _ = Quality::new(1.01);
    }

    #[test]
    fn expiry_respects_ttl() {
        let b = body(1, 0);
        assert!(!b.is_expired(SimTime::from_secs(3600.0)));
        assert!(b.is_expired(SimTime::from_secs(3600.1)));
    }

    #[test]
    fn original_copy_records_source_tags_and_path() {
        let copy = MessageCopy::original(body(1, 7), vec![Keyword(1), Keyword(2)], SimTime::ZERO);
        assert_eq!(copy.path, vec![NodeId(7)]);
        assert_eq!(copy.keywords(), vec![Keyword(1), Keyword(2)]);
        assert!(copy.annotations.iter().all(|a| a.annotator == NodeId(7)));
        assert_eq!(copy.hop_count(), 0);
    }

    #[test]
    fn enrichment_dedupes_and_tracks_provenance() {
        let mut copy = MessageCopy::original(body(1, 0), vec![Keyword(1)], SimTime::ZERO);
        let now = SimTime::from_secs(10.0);
        assert!(copy.enrich(Keyword(2), NodeId(5), now));
        assert!(
            !copy.enrich(Keyword(2), NodeId(6), now),
            "duplicate tag rejected"
        );
        assert!(
            !copy.enrich(Keyword(1), NodeId(5), now),
            "source tag not re-added"
        );
        assert_eq!(copy.tags_added_by(NodeId(5)), vec![Keyword(2)]);
        assert!(copy.tags_added_by(NodeId(6)).is_empty());
    }

    #[test]
    fn enrichment_tags_exclude_creation_annotations() {
        let mut copy =
            MessageCopy::original(body(1, 0), vec![Keyword(1), Keyword(2)], SimTime::ZERO);
        assert_eq!(
            copy.tags_added_by(NodeId(0)).len(),
            2,
            "creation tags have provenance"
        );
        assert!(
            copy.enrichment_tags_by(NodeId(0)).is_empty(),
            "but they are not enrichment"
        );
        // The source enriching its own copy later *does* count.
        copy.enrich(Keyword(3), NodeId(0), SimTime::from_secs(10.0));
        assert_eq!(copy.enrichment_tags_by(NodeId(0)), vec![Keyword(3)]);
        // A relay's additions are all enrichment.
        copy.enrich(Keyword(9), NodeId(5), SimTime::from_secs(20.0));
        assert_eq!(copy.enrichment_tags_by(NodeId(5)), vec![Keyword(9)]);
    }

    #[test]
    fn arrival_extends_path() {
        let copy = MessageCopy::original(body(1, 0), vec![Keyword(1)], SimTime::ZERO);
        let at_relay = copy.arrived_at(NodeId(1), SimTime::from_secs(5.0));
        let at_dest = at_relay.arrived_at(NodeId(2), SimTime::from_secs(9.0));
        assert_eq!(at_dest.path, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(at_dest.intermediate_hops(), &[NodeId(1)]);
        assert_eq!(at_dest.hop_count(), 2);
        assert_eq!(at_dest.received_at, SimTime::from_secs(9.0));
        assert_eq!(copy.path.len(), 1, "source copy untouched");
    }

    #[test]
    fn truth_oracle() {
        let b = body(1, 0);
        assert!(b.truth_contains(Keyword(2)));
        assert!(!b.truth_contains(Keyword(9)));
    }
}
