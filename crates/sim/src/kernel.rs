//! The time-stepped simulation kernel.
//!
//! [`Simulation`] advances the world in fixed steps (default 1 s, matching
//! ONE's pedestrian scenarios): move nodes → diff contacts → release
//! scheduled messages → progress transfers → sweep TTLs → tick the protocol.
//! All state a protocol may touch lives in [`SimApi`]; the protocol object
//! itself is a sibling field so Rust's split borrows let the two interact
//! without interior mutability.

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::buffer::{Buffer, BufferState, DropPolicy, InsertOutcome};
use crate::contact::{ContactEvent, ContactKey, ContactTable, ContactTableState};
use crate::energy::{EnergyMeter, EnergyMeterState, EnergyUse};
use crate::events::{ContactEngine, KernelMode};
use crate::faults::{
    FaultInjector, FaultInjectorState, FaultPlan, FaultStats, NodeFault, TransferFault,
};
use crate::geometry::{Area, Point};
use crate::invariants::{self, InvariantChecker, InvariantCheckerState};
use crate::message::{Keyword, MessageBody, MessageCopy, MessageId, Priority, Quality};
use crate::metrics::{KernelCounters, MetricsRegistry, Phase, PhaseProfiler};
use crate::mobility::{MobilityModel, RandomWaypointFleet};
use crate::protocol::{Protocol, Reception};
use crate::radio::RadioConfig;
use crate::rng::{RngState, SimRng};
use crate::snapshot::SnapshotError;
use crate::stats::{RunSummary, StatsCollector, StatsState};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, TraceLog, TraceLogState};
use crate::transfer::{
    AbortReason, AbortedTransfer, RecoveryPolicy, TransferEngine, TransferEngineState,
};
use crate::world::{NodeId, SpatialGrid};

/// Dedicated RNG stream for retry-backoff jitter ("RETRY" in ASCII), so
/// enabling recovery never perturbs the mobility/fault/protocol streams.
const RETRY_STREAM: u64 = 0x5245_5452_5900_0000;

/// One aborted transfer waiting out its backoff in the retry queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PendingRetry {
    from: NodeId,
    to: NodeId,
    message: MessageId,
    /// Earliest release time (backoff expiry); release additionally waits
    /// for the pair to be back in contact.
    ready_at: SimTime,
}

/// Running mean of a pair's observed down→up gaps, for adaptive backoff
/// (see [`RecoveryPolicy::adaptive_backoff`]). Only maintained while the
/// flag is on, so a disabled run carries no tracker state at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct GapTracker {
    /// When the pair's contact last went down (`None` while up).
    last_down: Option<SimTime>,
    /// Complete down→up gaps observed.
    count: u32,
    /// Mean observed gap, seconds.
    mean_secs: f64,
}

/// Deterministic retry/backoff state for the recovery layer (see
/// [`RecoveryPolicy`]). All jitter comes from a dedicated [`SimRng`]
/// substream, so chaos runs with recovery enabled replay byte-for-byte.
#[derive(Debug)]
struct RetryScheduler {
    policy: RecoveryPolicy,
    rng: SimRng,
    /// Insertion-ordered queue: scan order is deterministic.
    queue: Vec<PendingRetry>,
    /// Retry attempts consumed per `(from, to, message)`.
    attempts: HashMap<(NodeId, NodeId, MessageId), u32>,
    /// Retransmissions consumed per `(from, to)` pair (budget guard).
    peer_spent: HashMap<(NodeId, NodeId), u32>,
    /// Corruption (`Injected`) redeliveries consumed per message.
    redeliveries: HashMap<MessageId, u32>,
    /// Observed inter-contact gaps per pair; empty unless
    /// [`RecoveryPolicy::adaptive_backoff`] is on.
    gaps: HashMap<ContactKey, GapTracker>,
}

impl RetryScheduler {
    fn new(policy: RecoveryPolicy, rng_root: &SimRng) -> Self {
        RetryScheduler {
            policy,
            rng: rng_root.stream(RETRY_STREAM),
            queue: Vec::new(),
            attempts: HashMap::new(),
            peer_spent: HashMap::new(),
            redeliveries: HashMap::new(),
            gaps: HashMap::new(),
        }
    }

    fn adaptive(&self) -> bool {
        self.policy.adaptive_backoff == Some(true)
    }

    /// Notes a contact teardown for gap observation. Draws no randomness
    /// and is a no-op unless adaptive backoff is on, so the disabled path
    /// stays byte-identical.
    fn note_contact_down(&mut self, key: ContactKey, now: SimTime) {
        if !self.adaptive() {
            return;
        }
        self.gaps.entry(key).or_default().last_down = Some(now);
    }

    /// Notes a contact establishment, folding the completed down→up gap
    /// into the pair's running mean. No-op unless adaptive backoff is on.
    fn note_contact_up(&mut self, key: ContactKey, now: SimTime) {
        if !self.adaptive() {
            return;
        }
        let tracker = self.gaps.entry(key).or_default();
        if let Some(down_at) = tracker.last_down.take() {
            let gap = now.duration_since(down_at).as_secs();
            tracker.count += 1;
            tracker.mean_secs += (gap - tracker.mean_secs) / f64::from(tracker.count);
        }
    }

    /// The backoff base for a retry between `from` and `to`: the pair's
    /// mean observed inter-contact gap once at least two complete gaps
    /// have been seen, the configured fixed base otherwise.
    fn backoff_base(&self, from: NodeId, to: NodeId) -> f64 {
        if self.adaptive() {
            if let Some(t) = self.gaps.get(&ContactKey::new(from, to)) {
                if t.count >= 2 {
                    // A pair that flaps sub-millisecond still gets a
                    // positive base, or the exponential schedule collapses.
                    return t.mean_secs.max(1e-3);
                }
            }
        }
        self.policy.backoff_base_secs
    }

    /// Decides whether `a` earns a retry and, if so, enqueues it with a
    /// jittered exponential backoff. Returns the attempt number scheduled.
    fn on_abort(&mut self, a: &AbortedTransfer, now: SimTime) -> Option<u32> {
        if self.policy.retry_max == 0 {
            return None;
        }
        match a.reason {
            // Deliberate cancellation and source loss are final: there is
            // nothing left to redeliver.
            AbortReason::Cancelled | AbortReason::SourceGone => return None,
            AbortReason::ContactDown => {}
            AbortReason::Injected => {
                if self
                    .redeliveries
                    .get(&a.message)
                    .is_some_and(|&n| n >= self.policy.redelivery_cap)
                {
                    return None;
                }
            }
        }
        let key = (a.from, a.to, a.message);
        if self
            .attempts
            .get(&key)
            .is_some_and(|&n| n >= self.policy.retry_max)
        {
            return None;
        }
        if self
            .peer_spent
            .get(&(a.from, a.to))
            .is_some_and(|&n| n >= self.policy.peer_budget)
        {
            return None;
        }
        if a.reason == AbortReason::Injected {
            *self.redeliveries.entry(a.message).or_insert(0) += 1;
        }
        *self.peer_spent.entry((a.from, a.to)).or_insert(0) += 1;
        let attempts = self.attempts.entry(key).or_insert(0);
        *attempts += 1;
        let attempt = *attempts;
        // base * 2^(attempt-1), jittered ±50%, capped. The exponent is
        // clamped so a huge retry_max cannot push the power to infinity.
        // The jitter draw happens in the same order either way, so the
        // adaptive flag cannot shift any other stream.
        let exp = (attempt - 1).min(60);
        let raw = self.backoff_base(a.from, a.to) * 2f64.powi(exp as i32);
        let delay = (raw * self.rng.uniform(0.5, 1.5)).min(self.policy.backoff_cap_secs);
        self.queue.push(PendingRetry {
            from: a.from,
            to: a.to,
            message: a.message,
            ready_at: now + SimDuration::from_secs(delay),
        });
        Some(attempt)
    }

    /// The scheduler's full dynamic state (policy excluded: it is build
    /// configuration). Maps are flattened into key-sorted vectors so the
    /// document is canonical for a given world.
    fn export_state(&self) -> RetrySchedulerState {
        let mut attempts: Vec<(NodeId, NodeId, MessageId, u32)> = self
            .attempts
            .iter()
            .map(|(&(from, to, msg), &n)| (from, to, msg, n))
            .collect();
        attempts.sort_unstable_by_key(|&(from, to, msg, _)| (from, to, msg));
        let mut peer_spent: Vec<(NodeId, NodeId, u32)> = self
            .peer_spent
            .iter()
            .map(|(&(from, to), &n)| (from, to, n))
            .collect();
        peer_spent.sort_unstable_by_key(|&(from, to, _)| (from, to));
        let mut redeliveries: Vec<(MessageId, u32)> =
            self.redeliveries.iter().map(|(&m, &n)| (m, n)).collect();
        redeliveries.sort_unstable_by_key(|&(m, _)| m);
        let mut gaps: Vec<(NodeId, NodeId, GapTracker)> = self
            .gaps
            .iter()
            .map(|(&ContactKey(a, b), &t)| (a, b, t))
            .collect();
        gaps.sort_unstable_by_key(|&(a, b, _)| (a, b));
        RetrySchedulerState {
            rng: self.rng.state(),
            queue: self.queue.clone(),
            attempts,
            peer_spent,
            redeliveries,
            gaps,
        }
    }

    /// Overwrites the scheduler's dynamic state from a snapshot. The policy
    /// is left as built — the restored run must be configured identically.
    fn import_state(&mut self, state: &RetrySchedulerState) {
        self.rng = SimRng::from_state(state.rng);
        self.queue = state.queue.clone();
        self.attempts = state
            .attempts
            .iter()
            .map(|&(from, to, msg, n)| ((from, to, msg), n))
            .collect();
        self.peer_spent = state
            .peer_spent
            .iter()
            .map(|&(from, to, n)| ((from, to), n))
            .collect();
        self.redeliveries = state.redeliveries.iter().copied().collect();
        self.gaps = state
            .gaps
            .iter()
            .map(|&(a, b, t)| (ContactKey(a, b), t))
            .collect();
    }
}

/// Snapshot of a [`RetryScheduler`]'s dynamic state: the retry queue in
/// insertion order, the budget counters as key-sorted vectors, and the
/// position of the retry RNG stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrySchedulerState {
    rng: RngState,
    queue: Vec<PendingRetry>,
    attempts: Vec<(NodeId, NodeId, MessageId, u32)>,
    peer_spent: Vec<(NodeId, NodeId, u32)>,
    redeliveries: Vec<(MessageId, u32)>,
    #[serde(default)]
    gaps: Vec<(NodeId, NodeId, GapTracker)>,
}

/// A message creation scheduled by the workload.
#[derive(Debug, Clone)]
pub struct ScheduledMessage {
    /// When the source creates it.
    pub at: SimTime,
    /// The creating node.
    pub source: NodeId,
    /// Payload size in bytes.
    pub size_bytes: u64,
    /// Time-to-live in seconds.
    pub ttl_secs: f64,
    /// Priority set by the source.
    pub priority: Priority,
    /// Intrinsic content quality.
    pub quality: Quality,
    /// Oracle content description (superset of honest tags).
    pub ground_truth: Vec<Keyword>,
    /// The tags the source annotates at creation.
    pub source_tags: Vec<Keyword>,
    /// The nodes the workload expects to be destinations (direct interest in
    /// a source tag at creation time); used for the delivery-ratio metric.
    pub expected_destinations: Vec<NodeId>,
}

/// All kernel-owned state a [`Protocol`] may interact with.
#[derive(Debug)]
pub struct SimApi {
    now: SimTime,
    step: SimDuration,
    area: Area,
    radio: RadioConfig,
    positions: Vec<Point>,
    buffers: Vec<Buffer>,
    bodies: HashMap<MessageId, Arc<MessageBody>>,
    contacts: ContactTable,
    transfers: TransferEngine,
    energy: EnergyMeter,
    stats: StatsCollector,
    trace: TraceLog,
    counters: KernelCounters,
    rng_root: SimRng,
}

impl SimApi {
    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The step length.
    #[must_use]
    pub fn step_len(&self) -> SimDuration {
        self.step
    }

    /// Number of nodes in the world.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.positions.len() as u32).map(NodeId)
    }

    /// The world area.
    #[must_use]
    pub fn area(&self) -> Area {
        self.area
    }

    /// The shared radio configuration.
    #[must_use]
    pub fn radio(&self) -> RadioConfig {
        self.radio
    }

    /// Current position of `node`.
    #[must_use]
    pub fn position(&self, node: NodeId) -> Point {
        self.positions[node.index()]
    }

    /// Distance in meters between two nodes right now.
    #[must_use]
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.positions[a.index()].distance_to(self.positions[b.index()])
    }

    /// Read access to `node`'s buffer.
    #[must_use]
    pub fn buffer(&self, node: NodeId) -> &Buffer {
        &self.buffers[node.index()]
    }

    /// Mutable access to `node`'s buffer (enrichment mutates copies in
    /// place; protocols may also drop copies they no longer want carried).
    #[must_use]
    pub fn buffer_mut(&mut self, node: NodeId) -> &mut Buffer {
        &mut self.buffers[node.index()]
    }

    /// The immutable body of `message`, if it was ever created.
    #[must_use]
    pub fn body(&self, message: MessageId) -> Option<&Arc<MessageBody>> {
        self.bodies.get(&message)
    }

    /// Peers currently in contact with `node`, sorted, as an owned list.
    ///
    /// Routers that mutate the world while walking the peer list (send,
    /// offer, …) need the owned copy; read-only callers should prefer
    /// [`SimApi::peers_of_slice`], which borrows straight from the
    /// adjacency index and never allocates.
    #[must_use]
    pub fn peers_of(&self, node: NodeId) -> Vec<NodeId> {
        self.contacts.peers_of_slice(node).to_vec()
    }

    /// Peers currently in contact with `node`, sorted, borrowed from the
    /// adjacency index. Zero-allocation: the hot path calls this on
    /// every route decision, so the per-call `Vec` of [`Self::peers_of`]
    /// was pure allocator churn.
    #[must_use]
    pub fn peers_of_slice(&self, node: NodeId) -> &[NodeId] {
        self.contacts.peers_of_slice(node)
    }

    /// Whether `a` and `b` are currently in contact.
    #[must_use]
    pub fn in_contact(&self, a: NodeId, b: NodeId) -> bool {
        self.contacts.is_up(a, b)
    }

    /// When the active contact between `a` and `b` came up.
    #[must_use]
    pub fn contact_up_since(&self, a: NodeId, b: NodeId) -> Option<SimTime> {
        self.contacts.up_since(a, b)
    }

    /// Queues a transfer of `message` from `from` to `to`.
    ///
    /// Returns `false` without queueing when the pair is not in contact,
    /// the sender does not hold the message, or an identical transfer is
    /// already pending.
    pub fn send(&mut self, from: NodeId, to: NodeId, message: MessageId) -> bool {
        if !self.contacts.is_up(from, to) {
            return false;
        }
        let Some(copy) = self.buffers[from.index()].get(message) else {
            return false;
        };
        // Expired copies awaiting the periodic sweep are already dead
        // letters — refuse to put them on the air.
        if copy.body.is_expired(self.now) {
            return false;
        }
        let bytes = copy.size_bytes();
        // With resume enabled, an enqueue that picks up a saved checkpoint
        // counts as a resumed transfer (checkpoints only exist under a
        // recovery policy, so this path is inert otherwise).
        let resumes = self
            .transfers
            .checkpoint_of(from, to, message)
            .is_some_and(|c| c.bytes_total == bytes);
        if self.transfers.enqueue(from, to, message, bytes, self.now) {
            if resumes {
                self.counters.transfers_resumed += 1;
                self.stats.record_resume();
                let now = self.now;
                self.trace
                    .record(now, TraceEvent::TransferResumed { message, from, to });
            }
            true
        } else {
            false
        }
    }

    /// Whether a transfer of `message` from `from` to `to` is pending.
    #[must_use]
    pub fn is_sending(&self, from: NodeId, to: NodeId, message: MessageId) -> bool {
        self.transfers.is_pending(from, to, message)
    }

    /// Number of transfers queued at `from`.
    #[must_use]
    pub fn send_queue_len(&self, from: NodeId) -> usize {
        self.transfers.queue_len(from)
    }

    /// Byte-conservation audit of the transfer engine: every in-flight
    /// offset and saved checkpoint must lie within `[0, bytes_total]`.
    /// One line per violation; empty = healthy.
    #[must_use]
    pub fn transfer_byte_audit(&self) -> Vec<String> {
        self.transfers.audit_bytes()
    }

    /// Structural audit of the kernel's incremental indexes: contact
    /// adjacency lists vs the active contact set, and the transfer
    /// engine's active-sender index vs the queues themselves. One line
    /// per violation; empty = healthy.
    #[must_use]
    pub fn index_audit(&self) -> Vec<String> {
        let mut violations = Vec::new();
        if let Err(e) = self.contacts.audit_adjacency() {
            violations.push(e);
        }
        if let Err(e) = self.transfers.audit_active_index() {
            violations.push(e);
        }
        violations
    }

    /// Number of live partial-transfer checkpoints (0 without resume).
    #[must_use]
    pub fn checkpoint_count(&self) -> usize {
        self.transfers.checkpoint_count()
    }

    /// Cancels a pending transfer. Returns `true` if one was cancelled.
    pub fn cancel_send(&mut self, from: NodeId, to: NodeId, message: MessageId) -> bool {
        if self.transfers.cancel(from, to, message).is_some() {
            self.counters.note_abort(AbortReason::Cancelled);
            self.stats.record_abort();
            true
        } else {
            false
        }
    }

    /// Marks `message` as delivered to `node` (for the delivery-ratio
    /// metric). Only the first call per `(message, node)` counts; returns
    /// `true` when it did.
    pub fn mark_delivered(&mut self, node: NodeId, message: MessageId) -> bool {
        let Some(body) = self.bodies.get(&message) else {
            return false;
        };
        let created_at = body.created_at;
        let fresh = self
            .stats
            .record_delivered(message, node, created_at, self.now);
        if fresh {
            self.trace
                .record(self.now, TraceEvent::Delivered { message, to: node });
        }
        fresh
    }

    /// Whether `(message, node)` was already marked delivered.
    #[must_use]
    pub fn is_delivered(&self, node: NodeId, message: MessageId) -> bool {
        self.stats.is_delivered(message, node)
    }

    /// Appends a sample to a named time series in the run statistics.
    pub fn push_sample(&mut self, series: &str, value: f64) {
        let now = self.now;
        self.stats.push_sample(series, now, value);
    }

    /// Cumulative energy use of `node`.
    #[must_use]
    pub fn energy_usage(&self, node: NodeId) -> EnergyUse {
        self.energy.usage(node)
    }

    /// Joules left in `node`'s battery (`None` on ideal power).
    #[must_use]
    pub fn battery_remaining(&self, node: NodeId) -> Option<f64> {
        self.energy.remaining_joules(node)
    }

    /// The per-node battery budget (`None` on ideal power).
    #[must_use]
    pub fn battery_budget(&self) -> Option<f64> {
        self.energy.battery_joules()
    }

    /// Whether `node`'s battery is exhausted (always `false` on ideal
    /// power).
    #[must_use]
    pub fn is_depleted(&self, node: NodeId) -> bool {
        self.energy.is_depleted(node)
    }

    /// Number of battery-depleted nodes.
    #[must_use]
    pub fn depleted_count(&self) -> usize {
        self.energy.depleted_count()
    }

    /// A deterministic RNG substream for protocol component `label`.
    #[must_use]
    pub fn protocol_rng(&self, label: u64) -> SimRng {
        self.rng_root.stream(0x5052_4F54_0000_0000 | label)
    }

    /// The event trace (empty unless enabled at build time).
    #[must_use]
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Always-on kernel event tallies (see [`KernelCounters`]).
    #[must_use]
    pub fn counters(&self) -> &KernelCounters {
        &self.counters
    }
}

/// Builder for a [`Simulation`] ([C-BUILDER]).
///
/// ```
/// use dtn_sim::prelude::*;
///
/// let sim = SimulationBuilder::new(Area::new(500.0, 500.0), 42)
///     .step(SimDuration::from_secs(1.0))
///     .node(Box::new(RandomWaypoint::pedestrian()))
///     .node(Box::new(RandomWaypoint::pedestrian()))
///     .build(NullProtocol);
/// assert_eq!(sim.api().node_count(), 2);
/// ```
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(Debug)]
pub struct SimulationBuilder {
    area: Area,
    seed: u64,
    step: SimDuration,
    radio: RadioConfig,
    buffer_capacity: u64,
    drop_policy: DropPolicy,
    ttl_sweep_every: SimDuration,
    battery_joules: Option<f64>,
    trace: Option<TraceLog>,
    faults: Option<FaultPlan>,
    recovery: Option<RecoveryPolicy>,
    check_every: Option<u64>,
    profile: bool,
    threads: usize,
    kernel_mode: KernelMode,
    mobilities: Vec<Box<dyn MobilityModel>>,
    schedule: Vec<ScheduledMessage>,
}

impl SimulationBuilder {
    /// Starts a builder for a world covering `area`, seeded with `seed`.
    #[must_use]
    pub fn new(area: Area, seed: u64) -> Self {
        SimulationBuilder {
            area,
            seed,
            step: SimDuration::from_secs(1.0),
            radio: RadioConfig::paper_default(),
            buffer_capacity: 250_000_000,
            drop_policy: DropPolicy::DropOldest,
            ttl_sweep_every: SimDuration::from_secs(60.0),
            battery_joules: None,
            trace: None,
            faults: None,
            recovery: None,
            check_every: None,
            profile: false,
            threads: 1,
            kernel_mode: KernelMode::default(),
            mobilities: Vec::new(),
            schedule: Vec::new(),
        }
    }

    /// Selects the contact-detection core (default:
    /// [`KernelMode::EventDriven`], the predicted-crossing scheduler).
    /// Both modes produce byte-identical traces and summaries; the
    /// time-stepped sweep remains selectable as the equivalence oracle.
    #[must_use]
    pub fn kernel_mode(mut self, mode: KernelMode) -> Self {
        self.kernel_mode = mode;
        self
    }

    /// Sets the shard count for the data-parallel step phases (mobility
    /// stepping and striped contact detection). Default 1 = the serial
    /// path. Output is byte-identical at any value: sharding changes who
    /// computes each node's step, never what is computed — see DESIGN.md
    /// §10 for the determinism argument.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        assert!(n > 0, "threads must be at least 1");
        self.threads = n;
        self
    }

    /// Sets the step length (default 1 s).
    #[must_use]
    pub fn step(mut self, step: SimDuration) -> Self {
        assert!(step.as_secs() > 0.0, "step must be positive");
        self.step = step;
        self
    }

    /// Sets the radio configuration (default: Table 5.1).
    #[must_use]
    pub fn radio(mut self, radio: RadioConfig) -> Self {
        self.radio = radio;
        self
    }

    /// Sets per-node buffer capacity in bytes (default 250 MB, Table 5.1).
    #[must_use]
    pub fn buffer_capacity(mut self, bytes: u64) -> Self {
        self.buffer_capacity = bytes;
        self
    }

    /// Sets the buffer drop policy (default: drop oldest).
    #[must_use]
    pub fn drop_policy(mut self, policy: DropPolicy) -> Self {
        self.drop_policy = policy;
        self
    }

    /// Sets how often expired copies are swept (default 60 s).
    #[must_use]
    pub fn ttl_sweep_every(mut self, interval: SimDuration) -> Self {
        assert!(interval.as_secs() > 0.0, "sweep interval must be positive");
        self.ttl_sweep_every = interval;
        self
    }

    /// Gives every node a finite battery of `joules` (default: ideal
    /// power). A depleted node's radio dies: its contacts drop and it
    /// neither sends nor receives for the rest of the run.
    ///
    /// # Panics
    ///
    /// Panics if `joules` is not strictly positive.
    #[must_use]
    pub fn battery_joules(mut self, joules: f64) -> Self {
        assert!(joules > 0.0, "battery budget must be positive");
        self.battery_joules = Some(joules);
        self
    }

    /// Attaches an event trace (see [`crate::trace::TraceLog`]); disabled
    /// by default.
    #[must_use]
    pub fn trace(mut self, trace: TraceLog) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Attaches a deterministic fault-injection plan (see
    /// [`crate::faults`]); no faults by default. The plan draws from its
    /// own RNG substream, so the same `(scenario, seed, plan)` replays
    /// identically and a run without a plan is untouched.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`].
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        self.faults = Some(plan);
        self
    }

    /// Attaches a transfer-recovery policy (checkpoint/resume plus the
    /// deterministic retry queue, see [`RecoveryPolicy`]); disabled by
    /// default. An inert policy (no resume, no retries) is equivalent to
    /// not attaching one at all. Backoff jitter draws from its own RNG
    /// substream, so the same `(scenario, seed, policy)` replays
    /// identically and a run without a policy is untouched.
    ///
    /// # Panics
    ///
    /// Panics if the policy fails [`RecoveryPolicy::validate`].
    #[must_use]
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        if let Err(e) = policy.validate() {
            panic!("invalid recovery policy: {e}");
        }
        self.recovery = Some(policy);
        self
    }

    /// Audits kernel and protocol invariants every `steps` steps (and once
    /// at the end of the run), aborting with a replayable report on a
    /// breach (see [`crate::invariants`]); disabled by default.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    #[must_use]
    pub fn check_invariants_every(mut self, steps: u64) -> Self {
        assert!(steps > 0, "check cadence must be positive");
        self.check_every = Some(steps);
        self
    }

    /// Enables the wall-clock phase profiler (see
    /// [`crate::metrics::PhaseProfiler`]); disabled by default. Profiling
    /// never perturbs simulation state: a profiled run reproduces the
    /// unprofiled run's summary and trace byte for byte.
    #[must_use]
    pub fn profile(mut self, enabled: bool) -> Self {
        self.profile = enabled;
        self
    }

    /// Adds one node with the given mobility model, returning its id via
    /// the builder order (the first added node is `NodeId(0)`).
    #[must_use]
    pub fn node(mut self, mobility: Box<dyn MobilityModel>) -> Self {
        self.mobilities.push(mobility);
        self
    }

    /// Adds `n` nodes sharing a mobility-model factory.
    #[must_use]
    pub fn nodes(mut self, n: usize, mut factory: impl FnMut() -> Box<dyn MobilityModel>) -> Self {
        for _ in 0..n {
            self.mobilities.push(factory());
        }
        self
    }

    /// Schedules a message creation.
    #[must_use]
    pub fn message(mut self, message: ScheduledMessage) -> Self {
        self.schedule.push(message);
        self
    }

    /// Schedules many message creations.
    #[must_use]
    pub fn messages(mut self, messages: impl IntoIterator<Item = ScheduledMessage>) -> Self {
        self.schedule.extend(messages);
        self
    }

    /// Finishes the builder, wiring in the protocol.
    ///
    /// # Panics
    ///
    /// Panics if no nodes were added, or a scheduled message references a
    /// node outside the world.
    #[must_use]
    pub fn build<P: Protocol>(mut self, protocol: P) -> Simulation<P> {
        assert!(
            !self.mobilities.is_empty(),
            "a simulation needs at least one node"
        );
        let n = self.mobilities.len();
        for m in &self.schedule {
            assert!(
                m.source.index() < n,
                "scheduled message source {} outside world of {n} nodes",
                m.source
            );
        }
        // Deterministic order regardless of how the workload generated them.
        self.schedule.sort_by(|a, b| {
            a.at.partial_cmp(&b.at)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.source.cmp(&b.source))
        });
        let rng_root = SimRng::new(self.seed);
        let mut node_rngs: Vec<SimRng> = (0..n).map(|i| rng_root.node_stream(i)).collect();
        let positions: Vec<Point> = self
            .mobilities
            .iter_mut()
            .zip(node_rngs.iter_mut())
            .map(|(m, r)| m.initial_position(self.area, r))
            .collect();
        let grid_cell = self.radio.range_m.max(1.0);
        // SoA fast path: a homogeneous Random Waypoint population (the
        // paper's only mobility model) packs into column vectors; mixed
        // populations keep the boxed models. Both layouts step nodes
        // byte-identically.
        let mobility = match RandomWaypointFleet::from_models(&self.mobilities) {
            Some(fleet) => MobilityStore::Fleet(fleet),
            None => MobilityStore::Boxed(self.mobilities),
        };
        let contact_engine = (self.kernel_mode == KernelMode::EventDriven).then(|| {
            let vmax: Vec<f64> = (0..n)
                .map(|i| mobility.speed_cap(i).unwrap_or(f64::INFINITY))
                .collect();
            ContactEngine::new(
                self.area,
                self.radio.range_m,
                self.step.as_secs(),
                self.threads,
                &positions,
                vmax,
            )
        });
        let grid = SpatialGrid::new(self.area, grid_cell);
        // Stripe count for the time-stepped sweep is a pure function of
        // the static grid geometry and the threads knob, so it is fixed
        // here instead of being re-derived (and buffer-resized) per step.
        let stripes = self.threads.min(grid.row_count()).max(1);
        let faults = self
            .faults
            .map(|plan| FaultInjector::new(plan, &rng_root, n));
        let recovery = self.recovery.filter(|p| !p.is_inert());
        let retries = recovery.map(|p| RetryScheduler::new(p, &rng_root));
        let mut engine = TransferEngine::new(n, self.radio.link_speed_bps);
        if let Some(p) = &recovery {
            engine.set_resume(p.resume);
            engine.set_checkpoint_capacity(p.checkpoint_capacity);
        }
        Simulation {
            api: SimApi {
                now: SimTime::ZERO,
                step: self.step,
                area: self.area,
                radio: self.radio,
                positions,
                buffers: (0..n)
                    .map(|_| Buffer::new(self.buffer_capacity, self.drop_policy))
                    .collect(),
                bodies: HashMap::new(),
                contacts: ContactTable::new(),
                transfers: engine,
                energy: {
                    let mut meter = EnergyMeter::new(n, self.radio);
                    if let Some(j) = self.battery_joules {
                        meter.set_battery(j);
                    }
                    meter
                },
                stats: StatsCollector::new(),
                trace: self.trace.unwrap_or_default(),
                counters: KernelCounters::default(),
                rng_root,
            },
            protocol,
            mobility,
            node_rngs,
            grid,
            threads: self.threads,
            // OS threads actually spawned per phase: capped by the host's
            // core count. Purely a wall-clock decision — shard boundaries
            // and merge order depend only on `threads`, so a 8-thread run
            // on a 1-core box is byte-identical to the same run on 8 cores.
            workers: self
                .threads
                .min(std::thread::available_parallelism().map_or(1, usize::from)),
            kernel_mode: self.kernel_mode,
            contact_engine,
            scratch_in_range: Vec::new(),
            stripes,
            stripe_buffers: vec![Vec::new(); stripes],
            schedule: self.schedule,
            next_scheduled: 0,
            next_message_id: 0,
            ttl_sweep_every: self.ttl_sweep_every,
            last_sweep: SimTime::ZERO,
            started: false,
            finished: false,
            seed: self.seed,
            faults,
            retries,
            checker: self.check_every.map(InvariantChecker::every),
            profiler: if self.profile {
                PhaseProfiler::enabled()
            } else {
                PhaseProfiler::disabled()
            },
        }
    }
}

/// Every mutable piece of a [`Simulation`], captured between steps.
///
/// This is the body of a snapshot file (see [`crate::snapshot`]). Static
/// configuration — the scenario, the radio, buffer capacities, the fault
/// *plan*, the recovery *policy*, thread count — is deliberately absent:
/// a restore rebuilds the world from the same scenario and then overwrites
/// only the dynamic state below, so the document stays small and a
/// configuration drift between save and restore surfaces as a
/// [`SnapshotError::Mismatch`] instead of silently steering the run.
///
/// Deliberately *not* captured, because it is derived or wall-clock-only:
/// the spatial grid (rebuilt from positions every step), scratch pair
/// buffers, the worker count, and the phase profiler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldState {
    /// The scenario seed the world was built with (pairing check).
    pub seed: u64,
    /// Number of nodes (pairing check).
    pub node_count: u64,
    /// The contact-detection core the capture ran on (pairing check).
    /// Both cores produce identical state, but a cross-mode resume would
    /// silently change the remainder's wall-clock profile, so it is
    /// rejected as a [`SnapshotError::Mismatch`] like any other
    /// configuration drift. Carried since format v2.
    pub kernel_mode: KernelMode,
    /// Simulation clock at capture.
    pub now: SimTime,
    /// When the last TTL sweep ran.
    pub last_sweep: SimTime,
    /// Whether [`Protocol::on_start`] has fired.
    pub started: bool,
    /// Whether [`Protocol::on_finish`] has fired.
    pub finished: bool,
    /// Index of the next workload creation not yet executed.
    pub next_scheduled: u64,
    /// The next kernel-assigned message id.
    pub next_message_id: u64,
    /// Node positions, in node order.
    pub positions: Vec<Point>,
    /// The kernel's root RNG stream position.
    pub rng_root: RngState,
    /// Per-node mobility RNG stream positions, in node order.
    pub node_rngs: Vec<RngState>,
    /// Per-node mobility model state, in node order (opaque per model).
    pub mobility: Vec<serde::Value>,
    /// Per-node buffer contents, in node order.
    pub buffers: Vec<BufferState>,
    /// Every live message body, sorted by id. Buffered copies reference
    /// bodies by id, so each body is stored once however many copies exist.
    pub bodies: Vec<MessageBody>,
    /// Active contacts and the lifetime contact counter.
    pub contacts: ContactTableState,
    /// In-flight transfers and partial-byte checkpoints.
    pub transfers: TransferEngineState,
    /// Per-node energy spent and the depleted-node drain record.
    pub energy: EnergyMeterState,
    /// The metrics collector (delivery bookkeeping, counters, series).
    pub stats: StatsState,
    /// The event trace ring.
    pub trace: TraceLogState,
    /// Kernel step counters.
    pub counters: KernelCounters,
    /// Retry scheduler state; present iff recovery was configured.
    pub retries: Option<RetrySchedulerState>,
    /// Fault injector state; present iff a fault plan was attached.
    pub faults: Option<FaultInjectorState>,
    /// Invariant checker cadence state; present iff checking was enabled.
    pub checker: Option<InvariantCheckerState>,
    /// The protocol's own state document ([`Protocol::snapshot_state`]).
    pub protocol: serde::Value,
}

/// Per-node mobility state in one of two layouts: boxed trait objects
/// (heterogeneous populations) or the struct-of-arrays
/// [`RandomWaypointFleet`] (homogeneous Random Waypoint worlds — every
/// scenario in the paper). The layouts step nodes byte-identically and
/// write interchangeable snapshot documents; the fleet is purely a
/// cache-density and dispatch win on the mobility hot path.
#[derive(Debug)]
enum MobilityStore {
    Boxed(Vec<Box<dyn MobilityModel>>),
    Fleet(RandomWaypointFleet),
}

impl MobilityStore {
    fn len(&self) -> usize {
        match self {
            MobilityStore::Boxed(models) => models.len(),
            MobilityStore::Fleet(fleet) => fleet.len(),
        }
    }

    /// Node `i`'s displacement bound, m/s, if its model promises one.
    fn speed_cap(&self, i: usize) -> Option<f64> {
        match self {
            MobilityStore::Boxed(models) => models[i].speed_cap_m_s(),
            MobilityStore::Fleet(fleet) => Some(fleet.speed_cap(i)),
        }
    }

    fn snapshot_state(&self, i: usize) -> serde::Value {
        match self {
            MobilityStore::Boxed(models) => models[i].snapshot_state(),
            MobilityStore::Fleet(fleet) => fleet.snapshot_state(i),
        }
    }

    fn restore_state(&mut self, i: usize, doc: &serde::Value) -> Result<(), String> {
        match self {
            MobilityStore::Boxed(models) => models[i].restore_state(doc),
            MobilityStore::Fleet(fleet) => fleet.restore_state(i, doc),
        }
    }
}

/// A running simulation: kernel state plus the protocol under test.
#[derive(Debug)]
pub struct Simulation<P> {
    api: SimApi,
    protocol: P,
    mobility: MobilityStore,
    node_rngs: Vec<SimRng>,
    grid: SpatialGrid,
    /// Configured shard count for the data-parallel phases (≥ 1).
    threads: usize,
    /// OS threads actually used (`min(threads, host cores)`); wall-clock
    /// only, never affects output.
    workers: usize,
    /// Which contact-detection core this world runs on.
    kernel_mode: KernelMode,
    /// The predicted-crossing scheduler; present iff the mode is
    /// [`KernelMode::EventDriven`]. Derived state — rebuilt, not
    /// serialized, on snapshot restore.
    contact_engine: Option<ContactEngine>,
    /// In-range pair buffer reused across steps (was allocated per step).
    scratch_in_range: Vec<ContactKey>,
    /// Stripe count for the time-stepped sweep, fixed at build time from
    /// the static grid geometry (hoisted out of the per-step path).
    stripes: usize,
    /// Per-stripe pair buffers for sharded contact detection, reused
    /// across steps and merged in fixed stripe order.
    stripe_buffers: Vec<Vec<ContactKey>>,
    schedule: Vec<ScheduledMessage>,
    next_scheduled: usize,
    next_message_id: u64,
    ttl_sweep_every: SimDuration,
    last_sweep: SimTime,
    started: bool,
    finished: bool,
    seed: u64,
    faults: Option<FaultInjector>,
    retries: Option<RetryScheduler>,
    checker: Option<InvariantChecker>,
    profiler: PhaseProfiler,
}

impl<P: Protocol> Simulation<P> {
    /// Read access to the kernel state (positions, buffers, stats…).
    #[must_use]
    pub fn api(&self) -> &SimApi {
        &self.api
    }

    /// Read access to the protocol under test.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The scenario seed this simulation was built with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured shard count for the data-parallel step phases.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Which contact-detection core this world runs on.
    #[must_use]
    pub fn kernel_mode(&self) -> KernelMode {
        self.kernel_mode
    }

    /// The attached fault plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(FaultInjector::plan)
    }

    /// The attached (non-inert) recovery policy, if any.
    #[must_use]
    pub fn recovery_policy(&self) -> Option<&RecoveryPolicy> {
        self.retries.as_ref().map(|r| &r.policy)
    }

    /// Transfers currently waiting in the retry queue.
    #[must_use]
    pub fn retry_queue_len(&self) -> usize {
        self.retries.as_ref().map_or(0, |r| r.queue.len())
    }

    /// Counters of injected faults (`None` when no plan is attached).
    #[must_use]
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(FaultInjector::stats)
    }

    /// Number of invariant audits run so far (`None` when checking is
    /// disabled).
    #[must_use]
    pub fn invariant_checks_run(&self) -> Option<u64> {
        self.checker.as_ref().map(InvariantChecker::checks_run)
    }

    /// The wall-clock phase profiler (disabled unless the builder's
    /// [`SimulationBuilder::profile`] was set).
    #[must_use]
    pub fn profiler(&self) -> &PhaseProfiler {
        &self.profiler
    }

    /// Exports kernel counters, peak buffer occupancy and — when profiling
    /// is on — phase timings and the per-step wall-clock histogram into a
    /// fresh [`MetricsRegistry`].
    #[must_use]
    pub fn export_metrics(&self) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        self.api.counters.export(&mut registry);
        registry.set_gauge("kernel.threads", self.threads as f64);
        self.protocol.export_metrics(&mut registry);
        if self.profiler.is_enabled() {
            for t in self.profiler.timings() {
                registry.set_gauge(&format!("phase_secs.{}", t.phase), t.secs);
            }
            registry.set_gauge("profiler.total_secs", self.profiler.total_secs());
            registry.insert_histogram("step_wall_us", self.profiler.step_wall_us().clone());
        }
        registry
    }

    /// Runs the full invariant audit right now, regardless of cadence,
    /// returning the violations instead of panicking. Empty = healthy.
    #[must_use]
    pub fn check_invariants_now(&self) -> Vec<String> {
        let mut violations = invariants::kernel_invariants(&self.api);
        violations.extend(self.protocol.check_invariants(&self.api));
        violations
    }

    /// Captures every mutable piece of the world as a [`WorldState`].
    ///
    /// Snapshots are taken between steps (mid-step capture is impossible
    /// from outside: `step_once` borrows the world exclusively). A run
    /// restored from the captured state by [`Simulation::restore`] and
    /// stepped to the horizon produces the same trace and summary, byte
    /// for byte, as the uninterrupted run — at any thread count, because
    /// every piece of output-affecting state (including each RNG stream's
    /// exact position) is in the document.
    #[must_use]
    pub fn snapshot(&self) -> WorldState {
        let mut bodies: Vec<MessageBody> =
            self.api.bodies.values().map(|b| (**b).clone()).collect();
        bodies.sort_unstable_by_key(|b| b.id);
        WorldState {
            seed: self.seed,
            node_count: self.api.positions.len() as u64,
            kernel_mode: self.kernel_mode,
            now: self.api.now,
            last_sweep: self.last_sweep,
            started: self.started,
            finished: self.finished,
            next_scheduled: self.next_scheduled as u64,
            next_message_id: self.next_message_id,
            positions: self.api.positions.clone(),
            rng_root: self.api.rng_root.state(),
            node_rngs: self.node_rngs.iter().map(SimRng::state).collect(),
            mobility: (0..self.mobility.len())
                .map(|i| self.mobility.snapshot_state(i))
                .collect(),
            buffers: self.api.buffers.iter().map(Buffer::export_state).collect(),
            bodies,
            contacts: self.api.contacts.export_state(),
            transfers: self.api.transfers.export_state(),
            energy: self.api.energy.export_state(),
            stats: self.api.stats.export_state(),
            trace: self.api.trace.export_state(),
            counters: self.api.counters,
            retries: self.retries.as_ref().map(RetryScheduler::export_state),
            faults: self.faults.as_ref().map(FaultInjector::export_state),
            checker: self.checker.as_ref().map(InvariantChecker::export_state),
            protocol: self.protocol.snapshot_state(),
        }
    }

    /// Overwrites the world's dynamic state from a snapshot taken by
    /// [`Simulation::snapshot`] on an identically configured world (same
    /// scenario, same seed — rebuild through the same builder path first).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Mismatch`] when the document does not pair with
    /// this world: a different seed or node count, an optional subsystem
    /// (fault plan, recovery policy, invariant checker) present on only
    /// one side, or per-module state that fails its own consistency
    /// checks. On error the world may be partially overwritten — rebuild
    /// it before using it again.
    pub fn restore(&mut self, state: &WorldState) -> Result<(), SnapshotError> {
        fn mismatch(detail: String) -> SnapshotError {
            SnapshotError::Mismatch { detail }
        }
        if state.seed != self.seed {
            return Err(mismatch(format!(
                "snapshot was taken under seed {}, this world is seeded {}",
                state.seed, self.seed
            )));
        }
        let nodes = self.api.positions.len();
        if state.node_count != nodes as u64 {
            return Err(mismatch(format!(
                "snapshot has {} nodes, this world has {nodes}",
                state.node_count
            )));
        }
        if state.kernel_mode != self.kernel_mode {
            return Err(mismatch(format!(
                "snapshot was taken on the {} core, this world runs {}",
                state.kernel_mode, self.kernel_mode
            )));
        }
        for (name, len) in [
            ("positions", state.positions.len()),
            ("node_rngs", state.node_rngs.len()),
            ("mobility", state.mobility.len()),
            ("buffers", state.buffers.len()),
        ] {
            if len != nodes {
                return Err(mismatch(format!(
                    "snapshot carries {len} {name} entries for {nodes} nodes"
                )));
            }
        }
        if state.next_scheduled as usize > self.schedule.len() {
            return Err(mismatch(format!(
                "snapshot consumed {} scheduled creations, this workload has {}",
                state.next_scheduled,
                self.schedule.len()
            )));
        }
        for (name, in_snapshot, in_world) in [
            (
                "recovery policy",
                state.retries.is_some(),
                self.retries.is_some(),
            ),
            ("fault plan", state.faults.is_some(), self.faults.is_some()),
            (
                "invariant checker",
                state.checker.is_some(),
                self.checker.is_some(),
            ),
        ] {
            if in_snapshot != in_world {
                let (with, without) = if in_snapshot {
                    ("the snapshot", "this world")
                } else {
                    ("this world", "the snapshot")
                };
                return Err(mismatch(format!("{with} has a {name}, {without} does not")));
            }
        }
        let bodies: HashMap<MessageId, Arc<MessageBody>> = state
            .bodies
            .iter()
            .map(|b| (b.id, Arc::new(b.clone())))
            .collect();
        for (i, doc) in state.buffers.iter().enumerate() {
            self.api.buffers[i]
                .import_state(doc, &bodies)
                .map_err(|e| mismatch(format!("node {i} buffer: {e}")))?;
        }
        self.api.bodies = bodies;
        self.api
            .contacts
            .import_state(&state.contacts)
            .map_err(|e| mismatch(format!("contact table: {e}")))?;
        self.api
            .transfers
            .import_state(&state.transfers)
            .map_err(|e| mismatch(format!("transfer engine: {e}")))?;
        self.api
            .energy
            .import_state(&state.energy)
            .map_err(|e| mismatch(format!("energy meter: {e}")))?;
        self.api.stats.import_state(&state.stats);
        self.api
            .trace
            .import_state(&state.trace)
            .map_err(|e| mismatch(format!("trace log: {e}")))?;
        self.api.counters = state.counters;
        self.api.rng_root = SimRng::from_state(state.rng_root);
        for (rng, s) in self.node_rngs.iter_mut().zip(&state.node_rngs) {
            *rng = SimRng::from_state(*s);
        }
        for (i, doc) in state.mobility.iter().enumerate() {
            self.mobility
                .restore_state(i, doc)
                .map_err(|e| mismatch(format!("node {i} mobility: {e}")))?;
        }
        if let (Some(scheduler), Some(doc)) = (self.retries.as_mut(), state.retries.as_ref()) {
            scheduler.import_state(doc);
        }
        if let (Some(injector), Some(doc)) = (self.faults.as_mut(), state.faults.as_ref()) {
            injector
                .import_state(doc)
                .map_err(|e| mismatch(format!("fault injector: {e}")))?;
        }
        if let (Some(checker), Some(doc)) = (self.checker.as_mut(), state.checker.as_ref()) {
            checker.import_state(doc);
        }
        self.protocol
            .restore_state(&state.protocol)
            .map_err(|e| mismatch(format!("protocol: {e}")))?;
        self.api.positions.clone_from(&state.positions);
        self.api.now = state.now;
        self.last_sweep = state.last_sweep;
        self.started = state.started;
        self.finished = state.finished;
        self.next_scheduled = state.next_scheduled as usize;
        self.next_message_id = state.next_message_id;
        // The predicted-crossing watch set is derived state: rebuilding a
        // fresh (superset) watch set from the restored positions yields
        // the same exact in-range list as the uninterrupted engine.
        if let Some(engine) = self.contact_engine.as_mut() {
            engine.rebuild(&self.api.positions, state.counters.steps);
        }
        Ok(())
    }

    /// Panics with a replayable breach report if any invariant is violated.
    fn enforce_invariants(&self) {
        let violations = self.check_invariants_now();
        if violations.is_empty() {
            return;
        }
        let report = invariants::format_breach(
            self.seed,
            self.fault_plan(),
            self.api.now,
            &violations,
            &self.api.trace.render(),
        );
        panic!("{report}");
    }

    /// Advances the world by one step.
    pub fn step_once(&mut self) {
        if !self.started {
            self.started = true;
            self.protocol.on_start(&mut self.api);
        }
        let dt = self.api.step;
        let now = self.api.now;
        let step_scope = self.profiler.start();

        // 1. Movement. Each node's next position depends only on its own
        // mobility state and its own RNG stream (`node_rngs[i]`), so the
        // node axis is data-parallel: any partition computes identical
        // positions and leaves every RNG in an identical state.
        let scope = self.profiler.start();
        let n = self.mobility.len();
        let mobility_chunk = if self.workers > 1 && n > 1 {
            n.div_ceil(self.workers)
        } else {
            n
        };
        match &mut self.mobility {
            MobilityStore::Fleet(fleet) => {
                fleet.step_all(
                    &mut self.api.positions,
                    &mut self.node_rngs,
                    dt,
                    self.api.area,
                    mobility_chunk,
                );
            }
            MobilityStore::Boxed(mobilities) => {
                if mobility_chunk < n {
                    let area = self.api.area;
                    std::thread::scope(|s| {
                        for ((positions, mobilities), rngs) in self
                            .api
                            .positions
                            .chunks_mut(mobility_chunk)
                            .zip(mobilities.chunks_mut(mobility_chunk))
                            .zip(self.node_rngs.chunks_mut(mobility_chunk))
                        {
                            s.spawn(move || {
                                for ((p, m), r) in positions.iter_mut().zip(mobilities).zip(rngs) {
                                    *p = m.step(*p, dt, area, r);
                                }
                            });
                        }
                    });
                } else {
                    for ((p, m), r) in self
                        .api
                        .positions
                        .iter_mut()
                        .zip(mobilities.iter_mut())
                        .zip(self.node_rngs.iter_mut())
                        .take(n)
                    {
                        *p = m.step(*p, dt, self.api.area, r);
                    }
                }
            }
        }
        self.profiler.stop(Phase::Mobility, scope);

        // 1b. Node-level fault injection: crash/reboot churn and battery
        // spikes, in deterministic node order off the fault stream.
        let scope = self.profiler.start();
        let node_faults = self
            .faults
            .as_mut()
            .map(|inj| inj.step_nodes(now, dt))
            .unwrap_or_default();
        for fault in node_faults {
            match fault {
                NodeFault::Crashed { node, wipe } => {
                    self.api.trace.record(now, TraceEvent::NodeCrashed { node });
                    if wipe {
                        // Wiped buffers invalidate partial-transfer custody
                        // at both ends: a wiped receiver lost the partial
                        // bytes, a wiped sender has nothing left to resume.
                        self.api.transfers.clear_checkpoints_involving(node);
                        let ids = self.api.buffers[node.index()].ids_sorted();
                        for &id in &ids {
                            self.api.buffers[node.index()].remove(id);
                        }
                        if !ids.is_empty() {
                            if let Some(inj) = self.faults.as_mut() {
                                inj.note_wiped(ids.len());
                            }
                            self.protocol.on_evicted(&mut self.api, node, &ids);
                        }
                    }
                }
                NodeFault::Rebooted { node } => {
                    self.api
                        .trace
                        .record(now, TraceEvent::NodeRebooted { node });
                }
                NodeFault::BatterySpike { node, joules } => {
                    self.api.energy.drain(node, joules);
                    self.api
                        .trace
                        .record(now, TraceEvent::BatterySpike { node });
                }
            }
        }
        self.profiler.stop(Phase::FaultInjection, scope);

        // 2. Contact detection. Either core produces the same sorted
        // in-range pair list: the event engine tracks a conservative
        // superset of near pairs and distance-checks exactly the pairs
        // that could be in range this step; the time-stepped sweep
        // re-enumerates the whole grid. The sweep is sharded across row
        // stripes: each stripe enumerates the pairs whose home cell lies
        // in its rows into its own buffer, buffers are merged in
        // ascending stripe order, and the merged list is sorted — the
        // same unique pair set in the same final order as the serial
        // sweep, whatever the stripe count.
        let scope = self.profiler.start();
        self.scratch_in_range.clear();
        let energy = &self.api.energy;
        let positions = &self.api.positions;
        let range = self.api.radio.range_m;
        if let Some(engine) = self.contact_engine.as_mut() {
            engine.collect(
                self.api.counters.steps,
                positions,
                energy,
                self.workers,
                &mut self.scratch_in_range,
            );
        } else {
            self.grid.rebuild(positions);
            let rows = self.grid.row_count();
            let stripes = self.stripes;
            if stripes > 1 {
                let per = rows.div_ceil(stripes);
                let grid = &self.grid;
                let sweep_stripe = |si: usize, buf: &mut Vec<ContactKey>| {
                    buf.clear();
                    grid.for_each_pair_in_rows(
                        positions,
                        range,
                        si * per,
                        (si + 1) * per,
                        |a, b| {
                            // A depleted radio forms no links
                            // (finite-battery model).
                            if !energy.is_depleted(a) && !energy.is_depleted(b) {
                                buf.push(ContactKey(a, b));
                            }
                        },
                    );
                };
                let bufs = &mut self.stripe_buffers[..stripes];
                if self.workers > 1 {
                    let per_worker = stripes.div_ceil(self.workers);
                    std::thread::scope(|s| {
                        for (w, worker_bufs) in bufs.chunks_mut(per_worker).enumerate() {
                            let sweep_stripe = &sweep_stripe;
                            s.spawn(move || {
                                for (off, buf) in worker_bufs.iter_mut().enumerate() {
                                    sweep_stripe(w * per_worker + off, buf);
                                }
                            });
                        }
                    });
                } else {
                    for (si, buf) in bufs.iter_mut().enumerate() {
                        sweep_stripe(si, buf);
                    }
                }
                for buf in &self.stripe_buffers[..stripes] {
                    self.scratch_in_range.extend_from_slice(buf);
                }
            } else {
                let in_range = &mut self.scratch_in_range;
                self.grid.for_each_pair_within(positions, range, |a, b| {
                    // A depleted radio forms no links (finite-battery model).
                    if !energy.is_depleted(a) && !energy.is_depleted(b) {
                        in_range.push(ContactKey(a, b));
                    }
                });
            }
        }
        self.scratch_in_range.sort_unstable();
        // 2b. Link-level fault injection: crashed nodes form no links,
        // blocked (cut) pairs stay apart, and active links may be freshly
        // cut. Vetoed pairs fall out of `in_range`, so the ordinary
        // contact-down machinery (transfer aborts included) fires below.
        if let Some(inj) = self.faults.as_mut() {
            let contacts = &self.api.contacts;
            let cuts = inj.veto_links(
                &mut self.scratch_in_range,
                |k| contacts.is_up(k.0, k.1),
                now,
                dt,
            );
            for key in cuts {
                self.api
                    .trace
                    .record(now, TraceEvent::LinkCut { a: key.0, b: key.1 });
            }
        }
        self.api.counters.contact_pairs += self.scratch_in_range.len() as u64;
        let events = self.api.contacts.diff(&self.scratch_in_range, now);
        self.profiler.stop(Phase::ContactDiff, scope);
        // 2c. Protocol exchange: contact transitions dispatch into the
        // protocol (directory/offer exchange, transfer aborts on teardown).
        let scope = self.profiler.start();
        for ev in events {
            match ev {
                ContactEvent::Down(key, _since) => {
                    self.api.counters.contacts_down += 1;
                    self.api
                        .trace
                        .record(now, TraceEvent::ContactDown { a: key.0, b: key.1 });
                    if let Some(rs) = self.retries.as_mut() {
                        rs.note_contact_down(key, now);
                    }
                    let aborted = self.api.transfers.abort_between(key.0, key.1, now);
                    self.api.counters.checkpoints_evicted =
                        self.api.transfers.checkpoints_evicted();
                    for a in aborted {
                        self.api.counters.note_abort(a.reason);
                        self.api.stats.record_abort();
                        self.api.trace.record(
                            now,
                            TraceEvent::Aborted {
                                message: a.message,
                                from: a.from,
                                to: a.to,
                            },
                        );
                        self.protocol.on_transfer_aborted(&mut self.api, &a);
                        self.schedule_retry(&a, now);
                    }
                    self.protocol.on_contact_down(&mut self.api, key.0, key.1);
                }
                ContactEvent::Up(key) => {
                    self.api.counters.contacts_up += 1;
                    self.api
                        .trace
                        .record(now, TraceEvent::ContactUp { a: key.0, b: key.1 });
                    if let Some(rs) = self.retries.as_mut() {
                        rs.note_contact_up(key, now);
                    }
                    self.protocol.on_contact_up(&mut self.api, key.0, key.1);
                }
            }
        }
        self.profiler.stop(Phase::ProtocolExchange, scope);

        // 3. Scheduled message creations due by `now`.
        let scope = self.profiler.start();
        while self.next_scheduled < self.schedule.len()
            && self.schedule[self.next_scheduled].at <= now
        {
            let m = self.schedule[self.next_scheduled].clone();
            self.next_scheduled += 1;
            self.create_message(m);
        }
        self.profiler.stop(Phase::MessageCreation, scope);

        // 4. Transfers.
        let scope = self.profiler.start();
        // 4a. Recovery: release retries whose backoff expired back into the
        // engine (resuming from a checkpoint when one survives). Entries
        // whose pair is out of contact keep waiting; entries whose copy or
        // demand vanished are abandoned.
        self.release_due_retries(now);
        self.api.counters.transfer_batch_senders += self.api.transfers.active_senders() as u64;
        let (completed, aborted) = {
            let buffers = &self.api.buffers;
            let positions = &self.api.positions;
            self.api.transfers.step(
                dt,
                now,
                |from, msg| buffers[from.index()].contains(msg),
                |a, b| positions[a.index()].distance_to(positions[b.index()]),
            )
        };
        for a in aborted {
            self.api.counters.note_abort(a.reason);
            self.api.stats.record_abort();
            self.api.trace.record(
                now,
                TraceEvent::Aborted {
                    message: a.message,
                    from: a.from,
                    to: a.to,
                },
            );
            self.protocol.on_transfer_aborted(&mut self.api, &a);
        }
        for c in completed {
            self.api.counters.transfers_completed += 1;
            // 4b. Transfer-level fault injection: the payload of a
            // physically completed transfer may be lost or corrupted. The
            // airtime was genuinely spent, so both radios are still
            // charged, but nothing reaches the receiver's buffer and the
            // protocol sees an abort — a half-received copy must never be
            // paid for, rated, or counted as a relay.
            if let Some(kind) = self
                .faults
                .as_mut()
                .and_then(FaultInjector::roll_transfer_fault)
            {
                let _ = self
                    .api
                    .energy
                    .charge_transfer(c.from, c.to, c.airtime, c.distance_m);
                self.api.counters.note_abort(AbortReason::Injected);
                self.api.stats.record_abort();
                let event = match kind {
                    TransferFault::Loss => TraceEvent::TransferLost {
                        message: c.message,
                        from: c.from,
                        to: c.to,
                    },
                    TransferFault::Corruption => TraceEvent::TransferCorrupted {
                        message: c.message,
                        from: c.from,
                        to: c.to,
                    },
                };
                self.api.trace.record(now, event);
                let aborted = AbortedTransfer {
                    from: c.from,
                    to: c.to,
                    message: c.message,
                    bytes_sent: c.bytes as f64,
                    reason: AbortReason::Injected,
                };
                self.protocol.on_transfer_aborted(&mut self.api, &aborted);
                // A destroyed payload earns a redelivery (NACK semantics),
                // capped per message so a cursed link degrades gracefully.
                self.schedule_retry(&aborted, now);
                continue;
            }
            // Energy was genuinely spent either way; traffic counts only
            // transfers whose payload survived to completion.
            let (tx_j, rx_j) =
                self.api
                    .energy
                    .charge_transfer(c.from, c.to, c.airtime, c.distance_m);
            // Build the receiver's copy from the sender's current copy.
            let arriving = self.api.buffers[c.from.index()]
                .get(c.message)
                .map(|copy| copy.arrived_at(c.to, self.api.now));
            if arriving.is_some() {
                self.api.stats.record_relay(c.bytes);
            } else {
                // The sender lost the copy within this very step (an
                // incoming insert evicted it before this completion was
                // processed): the payload is unusable — an abort, not a
                // relay.
                self.api.counters.note_abort(AbortReason::SourceGone);
                self.api.stats.record_abort();
            }
            let outcome = match arriving {
                Some(copy) => self.api.buffers[c.to.index()].insert(copy),
                None => InsertOutcome::Rejected(crate::buffer::RejectReason::NoRoom),
            };
            let evicted_ids: Vec<MessageId> = match &outcome {
                InsertOutcome::Stored { evicted } => evicted.clone(),
                InsertOutcome::Rejected(_) => Vec::new(),
            };
            if !evicted_ids.is_empty() {
                self.api.stats.record_evictions(evicted_ids.len());
            }
            self.api.trace.record(
                now,
                TraceEvent::Transferred {
                    message: c.message,
                    from: c.from,
                    to: c.to,
                    stored: matches!(outcome, InsertOutcome::Stored { .. }),
                },
            );
            if !evicted_ids.is_empty() {
                self.protocol.on_evicted(&mut self.api, c.to, &evicted_ids);
            }
            let reception = Reception {
                transfer: &c,
                outcome: &outcome,
                tx_joules: tx_j,
                rx_joules: rx_j,
            };
            self.protocol
                .on_transfer_complete(&mut self.api, &reception);
        }
        self.profiler.stop(Phase::Transfers, scope);

        // 5. Periodic TTL sweep.
        let scope = self.profiler.start();
        if now.duration_since(self.last_sweep).as_secs() >= self.ttl_sweep_every.as_secs() {
            self.last_sweep = now;
            for i in 0..self.api.buffers.len() {
                let expired = self.api.buffers[i].sweep_expired(now);
                if !expired.is_empty() {
                    self.api.counters.ttl_expiries += expired.len() as u64;
                    self.api.stats.record_expiries(expired.len());
                    for &m in &expired {
                        self.api.trace.record(
                            now,
                            TraceEvent::Expired {
                                message: m,
                                at: NodeId(i as u32),
                            },
                        );
                    }
                    self.protocol
                        .on_expired(&mut self.api, NodeId(i as u32), &expired);
                }
            }
        }
        self.profiler.stop(Phase::TtlSweep, scope);

        // 6. Protocol housekeeping (settlement, rating decay, sampling),
        // then advance the clock.
        let scope = self.profiler.start();
        self.protocol.on_tick(&mut self.api);
        self.profiler.stop(Phase::SettlementTick, scope);

        // 7. Cadenced invariant audit, while the step's state is fresh.
        let scope = self.profiler.start();
        let audit_due = self.checker.as_mut().is_some_and(InvariantChecker::due);
        if audit_due {
            self.enforce_invariants();
        }
        self.profiler.stop(Phase::InvariantCheck, scope);

        self.api.counters.steps += 1;
        if self.profiler.is_enabled() {
            // Peak buffer occupancy is an O(nodes) scan, so it is gated on
            // the profiler rather than charged to every unprofiled run.
            let used: u64 = self.api.buffers.iter().map(Buffer::used_bytes).sum();
            if used > self.api.counters.peak_buffer_bytes {
                self.api.counters.peak_buffer_bytes = used;
            }
        }
        self.profiler.stop_step(step_scope);
        self.api.now += dt;
    }

    /// Offers an aborted transfer to the retry scheduler; records the trace
    /// event when a retry is actually scheduled. No-op without a policy.
    fn schedule_retry(&mut self, a: &AbortedTransfer, now: SimTime) {
        let Some(rs) = self.retries.as_mut() else {
            return;
        };
        if let Some(attempt) = rs.on_abort(a, now) {
            self.api.counters.transfers_retried += 1;
            self.api.stats.record_retry();
            self.api.trace.record(
                now,
                TraceEvent::RetryScheduled {
                    message: a.message,
                    from: a.from,
                    to: a.to,
                    attempt,
                },
            );
        }
    }

    /// Releases due retries back into the transfer engine (recovery phase
    /// 4a). A retry whose backoff expired waits further for its pair to be
    /// back in contact; it is abandoned once the sender's copy is gone or
    /// the receiver no longer needs the message.
    fn release_due_retries(&mut self, now: SimTime) {
        let Some(rs) = self.retries.as_mut() else {
            return;
        };
        let mut keep = Vec::with_capacity(rs.queue.len());
        for r in rs.queue.drain(..) {
            if r.ready_at > now {
                keep.push(r);
                continue;
            }
            let copy_alive = self.api.buffers[r.from.index()]
                .get(r.message)
                .is_some_and(|c| !c.body.is_expired(now));
            let demand_gone = self.api.buffers[r.to.index()].contains(r.message)
                || self.api.stats.is_delivered(r.message, r.to);
            if !copy_alive || demand_gone {
                self.api.counters.transfers_abandoned += 1;
                self.api.stats.record_abandon();
                self.api.trace.record(
                    now,
                    TraceEvent::RetryAbandoned {
                        message: r.message,
                        from: r.from,
                        to: r.to,
                    },
                );
                continue;
            }
            if !self.api.contacts.is_up(r.from, r.to) {
                // Backoff expired but the pair is apart: the retry fires at
                // the next contact (DTN semantics), bounded by message TTL.
                keep.push(r);
                continue;
            }
            let bytes = self.api.buffers[r.from.index()]
                .get(r.message)
                .map_or(0, crate::message::MessageCopy::size_bytes);
            let resumes = self
                .api
                .transfers
                .checkpoint_of(r.from, r.to, r.message)
                .is_some_and(|c| c.bytes_total == bytes);
            if self
                .api
                .transfers
                .enqueue(r.from, r.to, r.message, bytes, now)
                && resumes
            {
                self.api.counters.transfers_resumed += 1;
                self.api.stats.record_resume();
                self.api.trace.record(
                    now,
                    TraceEvent::TransferResumed {
                        message: r.message,
                        from: r.from,
                        to: r.to,
                    },
                );
            }
        }
        rs.queue = keep;
    }

    fn create_message(&mut self, m: ScheduledMessage) {
        let id = MessageId(self.next_message_id);
        self.next_message_id += 1;
        self.api.counters.messages_created += 1;
        let body = Arc::new(MessageBody {
            id,
            source: m.source,
            created_at: self.api.now,
            size_bytes: m.size_bytes,
            ttl_secs: m.ttl_secs,
            priority: m.priority,
            quality: m.quality,
            ground_truth: m.ground_truth,
        });
        self.api.bodies.insert(id, Arc::clone(&body));
        self.api
            .stats
            .record_created(id, m.priority, m.expected_destinations.iter().copied());
        self.api.trace.record(
            self.api.now,
            TraceEvent::Created {
                message: id,
                source: m.source,
            },
        );
        let copy = MessageCopy::original(body, m.source_tags, self.api.now);
        match self.api.buffers[m.source.index()].insert(copy) {
            InsertOutcome::Stored { evicted } => {
                if !evicted.is_empty() {
                    self.api.stats.record_evictions(evicted.len());
                    self.protocol.on_evicted(&mut self.api, m.source, &evicted);
                }
                self.protocol
                    .on_message_created(&mut self.api, m.source, id);
            }
            InsertOutcome::Rejected(_) => {
                // Source buffer full of fresher content; the message is
                // stillborn but still counts as created (it was produced).
            }
        }
    }

    /// Runs until `until`, then finalizes and returns the run summary.
    ///
    /// Finalization ([`Protocol::on_finish`]) runs at most once per
    /// simulation, however many times `run_until`/[`Simulation::finish`]
    /// are called afterwards — repeated finalization would duplicate
    /// final-sample side effects in the summary's series.
    pub fn run_until(&mut self, until: SimTime) -> RunSummary {
        while self.api.now < until {
            self.step_once();
        }
        if !self.finished {
            self.finished = true;
            self.protocol.on_finish(&mut self.api);
            if self.checker.is_some() {
                self.enforce_invariants();
            }
        }
        let mut summary = self.api.stats.summarize();
        summary.depleted_nodes = self.api.depleted_count() as u64;
        summary
    }

    /// Consumes the simulation, returning the protocol (for post-run
    /// inspection of ledgers, reputation tables, …) and the summary.
    pub fn finish(mut self) -> (P, RunSummary) {
        if !self.finished {
            self.protocol.on_finish(&mut self.api);
        }
        let mut summary = self.api.stats.summarize();
        summary.depleted_nodes = self.api.depleted_count() as u64;
        (self.protocol, summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::{ScriptedWaypoints, Stationary};
    use crate::protocol::NullProtocol;

    fn msg(at: f64, source: u32) -> ScheduledMessage {
        ScheduledMessage {
            at: SimTime::from_secs(at),
            source: NodeId(source),
            size_bytes: 1000,
            ttl_secs: 10_000.0,
            priority: Priority::High,
            quality: Quality::new(0.8),
            ground_truth: vec![Keyword(1)],
            source_tags: vec![Keyword(1)],
            expected_destinations: vec![NodeId(1)],
        }
    }

    /// An epidemic-ish protocol used to exercise the kernel end to end:
    /// on contact, push everything the peer does not have; mark everything
    /// received at node 1 as delivered.
    #[derive(Debug, Default)]
    struct PushAll;

    impl Protocol for PushAll {
        fn on_contact_up(&mut self, api: &mut SimApi, a: NodeId, b: NodeId) {
            for (from, to) in [(a, b), (b, a)] {
                for id in api.buffer(from).ids_sorted() {
                    if !api.buffer(to).contains(id) {
                        api.send(from, to, id);
                    }
                }
            }
        }

        fn on_message_created(&mut self, api: &mut SimApi, node: NodeId, message: MessageId) {
            for peer in api.peers_of(node) {
                api.send(node, peer, message);
            }
        }

        fn on_transfer_complete(&mut self, api: &mut SimApi, r: &Reception<'_>) {
            if matches!(r.outcome, InsertOutcome::Stored { .. }) && r.transfer.to == NodeId(1) {
                api.mark_delivered(NodeId(1), r.transfer.message);
            }
            // Keep flooding: offer the fresh copy to the receiver's peers.
            let to = r.transfer.to;
            let msg = r.transfer.message;
            for peer in api.peers_of(to) {
                if !api.buffer(peer).contains(msg) {
                    api.send(to, peer, msg);
                }
            }
        }
    }

    /// A protocol that offers a message exactly once, at creation time.
    /// Recovery from a broken transfer must come from the kernel's retry
    /// queue — the protocol never re-offers on later contacts.
    #[derive(Debug, Default)]
    struct SendOnce;

    impl Protocol for SendOnce {
        fn on_message_created(&mut self, api: &mut SimApi, node: NodeId, message: MessageId) {
            for peer in api.peers_of(node) {
                api.send(node, peer, message);
            }
        }

        fn on_transfer_complete(&mut self, api: &mut SimApi, r: &Reception<'_>) {
            if matches!(r.outcome, InsertOutcome::Stored { .. }) && r.transfer.to == NodeId(1) {
                api.mark_delivered(NodeId(1), r.transfer.message);
            }
        }
    }

    /// Node 1 sits in range, walks away mid-transfer, and comes back.
    fn walkabout() -> ScriptedWaypoints {
        ScriptedWaypoints::new(vec![
            (0.0, Point::new(150.0, 100.0)),
            (10.0, Point::new(150.0, 100.0)),
            (30.0, Point::new(900.0, 900.0)),
            (50.0, Point::new(900.0, 900.0)),
            (70.0, Point::new(150.0, 100.0)),
            (300.0, Point::new(150.0, 100.0)),
        ])
    }

    fn walkabout_sim(recovery: Option<RecoveryPolicy>) -> Simulation<SendOnce> {
        let mut b = SimulationBuilder::new(Area::new(1000.0, 1000.0), 7)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(
                100.0, 100.0,
            ))))
            .node(Box::new(walkabout()))
            .message(ScheduledMessage {
                size_bytes: 6_000_000, // 24 s of airtime: cannot finish before the break
                ..msg(1.0, 0)
            })
            .trace(TraceLog::unbounded())
            .check_invariants_every(1);
        if let Some(p) = recovery {
            b = b.recovery(p);
        }
        b.build(SendOnce)
    }

    #[test]
    fn retry_resumes_checkpointed_transfer_after_contact_returns() {
        let policy = RecoveryPolicy {
            backoff_base_secs: 2.0,
            ..RecoveryPolicy::default()
        };
        let mut sim = walkabout_sim(Some(policy));
        let summary = sim.run_until(SimTime::from_secs(250.0));
        assert_eq!(
            summary.delivered_pairs, 1,
            "the retried transfer must finish once the pair reconnects"
        );
        let c = sim.api().counters();
        assert!(c.transfers_aborted_contact >= 1, "the break aborts");
        assert!(c.transfers_retried >= 1, "the abort earns a retry");
        assert!(c.transfers_resumed >= 1, "the retry resumes the checkpoint");
        assert_eq!(summary.transfers_retried, c.transfers_retried);
        assert_eq!(summary.transfers_resumed, c.transfers_resumed);
        assert_eq!(sim.retry_queue_len(), 0, "no retries left pending");
        let rendered = sim.api().trace().render();
        assert!(rendered.contains("retry #1"));
        assert!(rendered.contains("resume"));

        // Without recovery the one-shot offer is lost with the contact.
        let baseline = walkabout_sim(None).run_until(SimTime::from_secs(250.0));
        assert_eq!(baseline.delivered_pairs, 0);
        assert!(
            summary.delivered_pairs > baseline.delivered_pairs,
            "recovery must strictly improve delivery here"
        );
    }

    #[test]
    fn inert_recovery_policy_changes_nothing() {
        let run = |recovery: Option<RecoveryPolicy>| {
            let mut b = SimulationBuilder::new(Area::new(2000.0, 2000.0), 99)
                .nodes(20, || {
                    Box::new(crate::mobility::RandomWaypoint::pedestrian())
                })
                .messages((0..10).map(|i| ScheduledMessage {
                    expected_destinations: vec![NodeId((i as u32 + 1) % 20)],
                    ..msg(i as f64 * 30.0, i as u32 % 20)
                }))
                .trace(TraceLog::unbounded());
            if let Some(p) = recovery {
                b = b.recovery(p);
            }
            let mut sim = b.build(PushAll);
            let summary = sim.run_until(SimTime::from_secs(1800.0));
            (summary, sim.api().trace().render())
        };
        let plain = run(None);
        let inert = run(Some(RecoveryPolicy::disabled()));
        assert_eq!(plain, inert, "a disabled policy must not perturb the run");
    }

    #[test]
    fn chaotic_recovery_runs_replay_identically() {
        let plan: FaultPlan = "crash=6,crashdown=60,wipe,cut=20,cutdown=15,loss=0.2"
            .parse()
            .unwrap();
        let build = || {
            SimulationBuilder::new(Area::new(2000.0, 2000.0), 99)
                .nodes(20, || {
                    Box::new(crate::mobility::RandomWaypoint::pedestrian())
                })
                .messages((0..10).map(|i| ScheduledMessage {
                    expected_destinations: vec![NodeId((i as u32 + 1) % 20)],
                    ..msg(i as f64 * 30.0, i as u32 % 20)
                }))
                .faults(plan)
                .recovery(RecoveryPolicy::default())
                .check_invariants_every(1)
                .build(PushAll)
        };
        let mut sa = build();
        let a = sa.run_until(SimTime::from_secs(1800.0));
        let mut sb = build();
        let b = sb.run_until(SimTime::from_secs(1800.0));
        assert_eq!(a, b, "same (seed, plan, policy) must replay byte-for-byte");
        assert_eq!(sa.fault_stats(), sb.fault_stats());
        assert!(
            sa.api().counters().transfers_retried > 0,
            "loss chaos must exercise the retry path"
        );
        assert!(sa.invariant_checks_run().unwrap() > 0);
    }

    #[test]
    fn snapshot_restore_resumes_byte_identically() {
        let plan: FaultPlan = "crash=6,crashdown=60,wipe,cut=20,cutdown=15,loss=0.2"
            .parse()
            .unwrap();
        let build = || {
            SimulationBuilder::new(Area::new(2000.0, 2000.0), 99)
                .nodes(20, || {
                    Box::new(crate::mobility::RandomWaypoint::pedestrian())
                })
                .messages((0..10).map(|i| ScheduledMessage {
                    expected_destinations: vec![NodeId((i as u32 + 1) % 20)],
                    ..msg(i as f64 * 30.0, i as u32 % 20)
                }))
                .faults(plan)
                .recovery(RecoveryPolicy::default())
                .trace(TraceLog::unbounded())
                .check_invariants_every(7)
                .build(PushAll)
        };
        let mut uninterrupted = build();
        let golden = uninterrupted.run_until(SimTime::from_secs(1800.0));

        // "Crash" a second copy of the run mid-flight and capture the world.
        let mut killed = build();
        while killed.api().now() < SimTime::from_secs(600.0) {
            killed.step_once();
        }
        let world = killed.snapshot();
        drop(killed);

        // Push the document through the on-disk container so the test also
        // proves serde fidelity, not just in-memory cloning.
        let dir = std::env::temp_dir().join(format!("dtn-kernel-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("world.snap");
        crate::snapshot::save(&world, &path).expect("save snapshot");
        let reloaded: WorldState = crate::snapshot::load(&path).expect("load snapshot");
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(world, reloaded, "the container round-trips the world");

        let mut resumed = build();
        resumed
            .restore(&reloaded)
            .expect("restore into a fresh build");
        let summary = resumed.run_until(SimTime::from_secs(1800.0));
        assert_eq!(summary, golden, "resumed summary differs from golden");
        assert_eq!(
            resumed.api().trace().render(),
            uninterrupted.api().trace().render(),
            "resumed trace differs from golden"
        );
        assert_eq!(resumed.fault_stats(), uninterrupted.fault_stats());
    }

    #[test]
    fn restore_rejects_foreign_worlds_with_typed_errors() {
        let build = |seed: u64, nodes: usize| {
            SimulationBuilder::new(Area::new(1000.0, 1000.0), seed)
                .nodes(nodes, || Box::new(Stationary))
                .build(NullProtocol)
        };
        let mut donor = build(7, 3);
        donor.step_once();
        let world = donor.snapshot();

        let err = build(8, 3).restore(&world).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch { .. }), "{err}");
        assert!(err.to_string().contains("seed"), "{err}");

        let err = build(7, 4).restore(&world).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch { .. }), "{err}");
        assert!(err.to_string().contains("nodes"), "{err}");

        // A world with recovery configured cannot adopt a snapshot without.
        let mut with_recovery = SimulationBuilder::new(Area::new(1000.0, 1000.0), 7)
            .nodes(3, || Box::new(Stationary))
            .recovery(RecoveryPolicy::default())
            .build(NullProtocol);
        let err = with_recovery.restore(&world).unwrap_err();
        assert!(err.to_string().contains("recovery policy"), "{err}");
    }

    #[test]
    fn adaptive_backoff_flag_off_is_byte_identical() {
        let plan: FaultPlan = "cut=20,cutdown=15,loss=0.2".parse().unwrap();
        let run = |adaptive: Option<bool>| {
            let mut sim = SimulationBuilder::new(Area::new(2000.0, 2000.0), 41)
                .nodes(20, || {
                    Box::new(crate::mobility::RandomWaypoint::pedestrian())
                })
                .messages((0..10).map(|i| ScheduledMessage {
                    expected_destinations: vec![NodeId((i as u32 + 1) % 20)],
                    ..msg(i as f64 * 30.0, i as u32 % 20)
                }))
                .faults(plan)
                .recovery(RecoveryPolicy {
                    adaptive_backoff: adaptive,
                    ..RecoveryPolicy::default()
                })
                .trace(TraceLog::unbounded())
                .build(PushAll);
            let summary = sim.run_until(SimTime::from_secs(1800.0));
            (summary, sim.api().trace().render())
        };
        assert_eq!(
            run(None),
            run(Some(false)),
            "an explicit `false` must match an absent flag byte-for-byte"
        );
    }

    #[test]
    fn adaptive_backoff_bases_on_observed_gaps() {
        let policy = RecoveryPolicy {
            adaptive_backoff: Some(true),
            backoff_base_secs: 4.0,
            ..RecoveryPolicy::default()
        };
        let mut rs = RetryScheduler::new(policy, &SimRng::new(1));
        let key = ContactKey::new(NodeId(0), NodeId(1));
        // One complete gap is not enough evidence: still the fixed base.
        rs.note_contact_down(key, SimTime::from_secs(10.0));
        rs.note_contact_up(key, SimTime::from_secs(40.0));
        assert_eq!(rs.backoff_base(NodeId(0), NodeId(1)), 4.0);
        // Two gaps (30 s and 60 s) switch the pair to its observed mean.
        rs.note_contact_down(key, SimTime::from_secs(50.0));
        rs.note_contact_up(key, SimTime::from_secs(110.0));
        assert!((rs.backoff_base(NodeId(0), NodeId(1)) - 45.0).abs() < 1e-9);
        // Other pairs have no observations and keep the fixed base.
        assert_eq!(rs.backoff_base(NodeId(2), NodeId(3)), 4.0);

        // Disabled: observations are not even collected.
        let mut off = RetryScheduler::new(RecoveryPolicy::default(), &SimRng::new(1));
        off.note_contact_down(key, SimTime::from_secs(10.0));
        off.note_contact_up(key, SimTime::from_secs(40.0));
        off.note_contact_down(key, SimTime::from_secs(50.0));
        off.note_contact_up(key, SimTime::from_secs(110.0));
        assert!(off.gaps.is_empty());
        assert_eq!(
            off.backoff_base(NodeId(0), NodeId(1)),
            RecoveryPolicy::default().backoff_base_secs
        );
    }

    #[test]
    fn two_stationary_nodes_in_range_deliver() {
        let sim = SimulationBuilder::new(Area::new(1000.0, 1000.0), 7)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(
                100.0, 100.0,
            ))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(
                150.0, 100.0,
            ))))
            .message(msg(5.0, 0));
        let mut sim = sim.build(PushAll);
        let summary = sim.run_until(SimTime::from_secs(60.0));
        assert_eq!(summary.created, 1);
        assert_eq!(summary.delivered_pairs, 1, "in-range pair must deliver");
        assert_eq!(summary.delivery_ratio, 1.0);
        assert_eq!(summary.relays_completed, 1);
        assert_eq!(summary.relay_bytes, 1000);
        // 1000 B at 250 kB/s finishes within the creation step, so latency
        // rounds to zero at 1 s resolution.
        assert!(summary.mean_latency_secs >= 0.0);
    }

    #[test]
    fn out_of_range_nodes_never_deliver() {
        let mut sim = SimulationBuilder::new(Area::new(1000.0, 1000.0), 7)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(
                900.0, 900.0,
            ))))
            .message(msg(5.0, 0))
            .build(PushAll);
        let summary = sim.run_until(SimTime::from_secs(120.0));
        assert_eq!(summary.delivered_pairs, 0);
        assert_eq!(summary.relays_completed, 0);
    }

    #[test]
    fn contact_break_aborts_transfer() {
        // Node 1 walks out of range while a big message is in flight.
        let script = ScriptedWaypoints::new(vec![
            (0.0, Point::new(150.0, 100.0)),
            (10.0, Point::new(150.0, 100.0)),
            (30.0, Point::new(900.0, 900.0)),
        ]);
        let mut sim = SimulationBuilder::new(Area::new(1000.0, 1000.0), 7)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(
                100.0, 100.0,
            ))))
            .node(Box::new(script))
            .message(ScheduledMessage {
                size_bytes: 100_000_000, // 400 s of airtime, cannot finish
                ..msg(1.0, 0)
            })
            .build(PushAll);
        let summary = sim.run_until(SimTime::from_secs(120.0));
        assert_eq!(summary.delivered_pairs, 0);
        assert_eq!(summary.transfers_aborted, 1);
    }

    #[test]
    fn ttl_sweep_purges_copies() {
        let mut sim = SimulationBuilder::new(Area::new(1000.0, 1000.0), 7)
            .node(Box::new(Stationary))
            .message(ScheduledMessage {
                ttl_secs: 30.0,
                expected_destinations: vec![],
                ..msg(0.0, 0)
            })
            .build(NullProtocol);
        let summary = sim.run_until(SimTime::from_secs(200.0));
        assert_eq!(summary.ttl_expiries, 1);
        assert!(sim.api().buffer(NodeId(0)).is_empty());
    }

    #[test]
    fn profiling_never_perturbs_results() {
        let build = |profile: bool| {
            SimulationBuilder::new(Area::new(2000.0, 2000.0), 99)
                .nodes(20, || {
                    Box::new(crate::mobility::RandomWaypoint::pedestrian())
                })
                .messages((0..10).map(|i| ScheduledMessage {
                    expected_destinations: vec![NodeId((i as u32 + 1) % 20)],
                    ..msg(i as f64 * 30.0, i as u32 % 20)
                }))
                .trace(TraceLog::unbounded())
                .profile(profile)
                .build(PushAll)
        };
        let mut plain = build(false);
        let mut profiled = build(true);
        let a = plain.run_until(SimTime::from_secs(1800.0));
        let b = profiled.run_until(SimTime::from_secs(1800.0));
        assert_eq!(a, b, "profiling must not change the summary");
        assert_eq!(
            plain.api().trace().render(),
            profiled.api().trace().render(),
            "profiling must not change the event trace"
        );
        // The profiled run actually recorded wall-clock...
        assert!(profiled.profiler().is_enabled());
        assert!(profiled.profiler().total_secs() > 0.0);
        assert_eq!(profiled.profiler().step_wall_us().count(), 1800);
        assert!(profiled.api().counters().peak_buffer_bytes > 0);
        // ...while the plain run spent none.
        assert!(!plain.profiler().is_enabled());
        assert_eq!(plain.profiler().total_secs(), 0.0);
        assert_eq!(plain.api().counters().peak_buffer_bytes, 0);
        // Event counters are always on and identical across both runs.
        let (ca, cb) = (plain.api().counters(), profiled.api().counters());
        assert_eq!(
            KernelCounters {
                peak_buffer_bytes: 0,
                ..*cb
            },
            *ca
        );
        assert_eq!(ca.steps, 1800);
        assert_eq!(ca.messages_created, a.created);
        assert_eq!(ca.transfers_aborted, a.transfers_aborted);
        assert!(ca.contacts_up >= ca.contacts_down);
        assert!(ca.events() > 0);
    }

    #[test]
    fn export_metrics_carries_counters_and_phases() {
        let mut sim = SimulationBuilder::new(Area::new(1000.0, 1000.0), 7)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(
                100.0, 100.0,
            ))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(
                150.0, 100.0,
            ))))
            .message(msg(5.0, 0))
            .profile(true)
            .build(PushAll);
        sim.run_until(SimTime::from_secs(60.0));
        let m = sim.export_metrics();
        assert_eq!(m.counter("kernel.steps"), 60);
        assert_eq!(m.counter("kernel.messages_created"), 1);
        assert_eq!(m.counter("kernel.transfers_completed"), 1);
        assert!(m.counter("kernel.events") >= 3);
        assert!(m.gauge("phase_secs.mobility").is_some());
        assert!(m.gauge("profiler.total_secs").unwrap() > 0.0);
        assert_eq!(m.histogram("step_wall_us").unwrap().count(), 60);
        // Unprofiled export stays counters-only.
        let mut plain = SimulationBuilder::new(Area::new(1000.0, 1000.0), 7)
            .node(Box::new(Stationary))
            .build(NullProtocol);
        plain.run_until(SimTime::from_secs(10.0));
        let m = plain.export_metrics();
        assert_eq!(m.counter("kernel.steps"), 10);
        assert!(m.gauge("profiler.total_secs").is_none());
        assert!(m.histogram("step_wall_us").is_none());
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let build = || {
            SimulationBuilder::new(Area::new(2000.0, 2000.0), 99)
                .nodes(20, || {
                    Box::new(crate::mobility::RandomWaypoint::pedestrian())
                })
                .messages((0..10).map(|i| ScheduledMessage {
                    expected_destinations: vec![NodeId((i as u32 + 1) % 20)],
                    ..msg(i as f64 * 30.0, i as u32 % 20)
                }))
                .build(PushAll)
        };
        let a = build().run_until(SimTime::from_secs(1800.0));
        let b = build().run_until(SimTime::from_secs(1800.0));
        assert_eq!(a, b, "same seed must reproduce identical summaries");
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            SimulationBuilder::new(Area::new(2000.0, 2000.0), seed)
                .nodes(20, || {
                    Box::new(crate::mobility::RandomWaypoint::pedestrian())
                })
                .messages((0..10).map(|i| ScheduledMessage {
                    expected_destinations: vec![NodeId((i as u32 + 1) % 20)],
                    ..msg(i as f64 * 30.0, i as u32 % 20)
                }))
                .build(PushAll)
                .run_until(SimTime::from_secs(1800.0))
        };
        assert_ne!(run(1).relays_completed, run(2).relays_completed);
    }

    #[test]
    fn faulty_runs_replay_identically() {
        let plan: FaultPlan = "crash=6,crashdown=60,wipe,cut=20,cutdown=15,loss=0.1"
            .parse()
            .unwrap();
        let build = || {
            SimulationBuilder::new(Area::new(2000.0, 2000.0), 99)
                .nodes(20, || {
                    Box::new(crate::mobility::RandomWaypoint::pedestrian())
                })
                .messages((0..10).map(|i| ScheduledMessage {
                    expected_destinations: vec![NodeId((i as u32 + 1) % 20)],
                    ..msg(i as f64 * 30.0, i as u32 % 20)
                }))
                .faults(plan)
                .check_invariants_every(1)
                .build(PushAll)
        };
        let mut sa = build();
        let a = sa.run_until(SimTime::from_secs(1800.0));
        let mut sb = build();
        let b = sb.run_until(SimTime::from_secs(1800.0));
        assert_eq!(a, b, "same (seed, plan) must reproduce the summary");
        assert_eq!(sa.fault_stats(), sb.fault_stats());
        let stats = sa.fault_stats().expect("plan attached");
        assert!(stats.crashes > 0, "6/h over 20 node-hours must land");
        assert!(stats.link_cuts > 0);
        assert!(sa.invariant_checks_run().unwrap() > 0);
    }

    #[test]
    fn inert_plan_changes_nothing() {
        let build = |chaos: bool| {
            let mut b = SimulationBuilder::new(Area::new(2000.0, 2000.0), 99)
                .nodes(20, || {
                    Box::new(crate::mobility::RandomWaypoint::pedestrian())
                })
                .messages((0..10).map(|i| ScheduledMessage {
                    expected_destinations: vec![NodeId((i as u32 + 1) % 20)],
                    ..msg(i as f64 * 30.0, i as u32 % 20)
                }));
            if chaos {
                b = b.faults(FaultPlan::default());
            }
            b.build(PushAll).run_until(SimTime::from_secs(1800.0))
        };
        assert_eq!(
            build(false),
            build(true),
            "an all-zero plan must not perturb the run"
        );
    }

    #[test]
    fn transfer_loss_keeps_payload_out_of_the_receiver() {
        let mut sim = SimulationBuilder::new(Area::new(1000.0, 1000.0), 7)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(
                100.0, 100.0,
            ))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(
                150.0, 100.0,
            ))))
            .message(msg(5.0, 0))
            .faults("loss=1".parse().unwrap())
            .check_invariants_every(1)
            .build(PushAll);
        let summary = sim.run_until(SimTime::from_secs(120.0));
        assert_eq!(summary.relays_completed, 0, "every payload is lost");
        assert_eq!(summary.delivered_pairs, 0);
        assert!(summary.transfers_aborted > 0);
        assert!(sim.api().buffer(NodeId(1)).is_empty());
        assert!(sim.fault_stats().unwrap().transfers_lost > 0);
        // Energy was still spent on the doomed airtime.
        assert!(sim.api().energy_usage(NodeId(0)).tx_joules > 0.0);
    }

    #[test]
    fn crash_wipe_empties_the_buffer_and_reboot_restores_contacts() {
        // A certain per-step crash rate: both nodes crash at t=0, reboot at
        // t=5 and immediately crash again, wiping the copy created at t=1
        // while the source was down.
        let mut sim = SimulationBuilder::new(Area::new(1000.0, 1000.0), 7)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(
                100.0, 100.0,
            ))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(
                150.0, 100.0,
            ))))
            .message(msg(1.0, 0))
            .faults("crash=3600,crashdown=5,wipe".parse().unwrap())
            .trace(TraceLog::unbounded())
            .check_invariants_every(1)
            .build(PushAll);
        sim.run_until(SimTime::from_secs(10.0));
        let stats = sim.fault_stats().unwrap();
        assert!(stats.crashes >= 2, "certain per-step crash hits both nodes");
        assert!(stats.reboots >= 1, "5 s downtime reboots within the run");
        assert!(stats.copies_wiped >= 1, "the re-crash wipes the copy");
        assert!(
            sim.api().buffer(NodeId(0)).is_empty(),
            "wipe destroyed the source copy"
        );
        assert!(
            sim.api().peers_of(NodeId(0)).is_empty(),
            "crashed nodes hold no contacts"
        );
        let rendered = sim.api().trace().render();
        assert!(rendered.contains("crash n0"));
    }

    #[test]
    #[should_panic(expected = "invariant breach")]
    fn invariant_breach_panics_with_replay_report() {
        /// A protocol that reports a violation unconditionally.
        #[derive(Debug)]
        struct AlwaysBroken;
        impl Protocol for AlwaysBroken {
            fn check_invariants(&self, _api: &SimApi) -> Vec<String> {
                vec!["ledger minted tokens out of thin air".to_string()]
            }
        }
        let mut sim = SimulationBuilder::new(Area::new(100.0, 100.0), 3)
            .node(Box::new(Stationary))
            .check_invariants_every(1)
            .build(AlwaysBroken);
        sim.step_once();
    }

    #[test]
    fn manual_invariant_audit_reports_instead_of_panicking() {
        let mut sim = SimulationBuilder::new(Area::new(1000.0, 1000.0), 7)
            .node(Box::new(Stationary))
            .node(Box::new(Stationary))
            .message(msg(0.0, 0))
            .build(NullProtocol);
        sim.run_until(SimTime::from_secs(30.0));
        assert!(sim.check_invariants_now().is_empty(), "healthy run");
    }

    #[test]
    #[should_panic(expected = "outside world")]
    fn scheduling_for_unknown_node_panics() {
        let _ = SimulationBuilder::new(Area::new(10.0, 10.0), 1)
            .node(Box::new(Stationary))
            .message(msg(0.0, 5))
            .build(NullProtocol);
    }

    #[test]
    fn api_send_guards() {
        let mut sim = SimulationBuilder::new(Area::new(1000.0, 1000.0), 7)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(500.0, 0.0))))
            .message(msg(0.0, 0))
            .build(NullProtocol);
        for _ in 0..5 {
            sim.step_once();
        }
        // Not in contact → send refused.
        assert!(!sim.api.send(NodeId(0), NodeId(1), MessageId(0)));
        // Unknown message → refused even if in contact.
        assert!(!sim.api.is_sending(NodeId(0), NodeId(1), MessageId(0)));
    }
}
