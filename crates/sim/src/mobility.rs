//! Mobility models.
//!
//! All the paper's experiments use the Random Waypoint model (§5: "all the
//! experiments are conducted under Random Waypoint mobility model"). The
//! other models here support testing, the Paper II demo walkthrough
//! (scripted three-node topology), and extension experiments.

use serde::{Deserialize, Serialize};

use crate::geometry::{Area, Point};
use crate::rng::SimRng;
use crate::time::SimDuration;

/// Per-node movement state, advanced once per simulation step.
pub trait MobilityModel: std::fmt::Debug + Send {
    /// Advances the node by `dt`, returning its new position.
    fn step(&mut self, current: Point, dt: SimDuration, area: Area, rng: &mut SimRng) -> Point;

    /// An initial position for this node.
    fn initial_position(&mut self, area: Area, rng: &mut SimRng) -> Point {
        Point::new(rng.uniform(0.0, area.width), rng.uniform(0.0, area.height))
    }

    /// The model's dynamic walk state as an opaque document, for a
    /// whole-world snapshot. Stateless models return [`serde::Value::Null`]
    /// (the default); stateful models must override both this and
    /// [`MobilityModel::restore_state`] or a resumed run will replay their
    /// walk from scratch.
    fn snapshot_state(&self) -> serde::Value {
        serde::Value::Null
    }

    /// Restores the dynamic walk state captured by
    /// [`MobilityModel::snapshot_state`].
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch when `state` is not a document
    /// this model produces (e.g. a snapshot taken under a different
    /// mobility model).
    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        if matches!(state, serde::Value::Null) {
            Ok(())
        } else {
            Err("snapshot carries mobility state but this model keeps none".to_string())
        }
    }

    /// An upper bound on this node's displacement per second, if the model
    /// can promise one: `|position(t+dt) − position(t)| ≤ cap · dt` for
    /// every step. The event-driven contact core schedules pair rechecks
    /// from this bound; `None` (the default) is always safe and degrades
    /// that node's pairs to a per-step check.
    fn speed_cap_m_s(&self) -> Option<f64> {
        None
    }

    /// Downcast hook for the struct-of-arrays fast path: models that are
    /// plain [`RandomWaypoint`] walkers return themselves so a homogeneous
    /// population can be packed into a [`RandomWaypointFleet`].
    fn as_random_waypoint(&self) -> Option<&RandomWaypoint> {
        None
    }
}

/// The Random Waypoint model: pick a uniform destination, walk to it at a
/// uniform speed from `[min_speed, max_speed]`, pause, repeat.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomWaypoint {
    /// Minimum walking speed, m/s.
    pub min_speed: f64,
    /// Maximum walking speed, m/s.
    pub max_speed: f64,
    /// Maximum pause at each waypoint, seconds (uniform in `[0, max]`).
    pub max_pause_secs: f64,
    #[serde(skip)]
    state: WaypointState,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
enum WaypointState {
    #[default]
    NeedTarget,
    Walking {
        target: Point,
        speed: f64,
    },
    Paused {
        remaining: f64,
    },
}

impl RandomWaypoint {
    /// Creates a model with pedestrian speeds.
    ///
    /// The defaults (0.5–1.5 m/s walk, up to 120 s pause) are ONE's standard
    /// pedestrian profile, which the paper's scenario implicitly uses.
    ///
    /// # Panics
    ///
    /// Panics if the speed range is empty or non-positive.
    #[must_use]
    pub fn new(min_speed: f64, max_speed: f64, max_pause_secs: f64) -> Self {
        assert!(
            min_speed > 0.0 && max_speed >= min_speed,
            "speed range must be positive and non-empty"
        );
        assert!(max_pause_secs >= 0.0, "pause must be non-negative");
        RandomWaypoint {
            min_speed,
            max_speed,
            max_pause_secs,
            state: WaypointState::NeedTarget,
        }
    }

    /// ONE's default pedestrian profile (0.5–1.5 m/s, ≤120 s pause).
    #[must_use]
    pub fn pedestrian() -> Self {
        Self::new(0.5, 1.5, 120.0)
    }
}

impl MobilityModel for RandomWaypoint {
    fn step(&mut self, current: Point, dt: SimDuration, area: Area, rng: &mut SimRng) -> Point {
        let mut pos = current;
        let mut budget = dt.as_secs();
        // A step can cross a waypoint boundary; loop until the time budget
        // for this step is spent.
        while budget > 0.0 {
            match self.state {
                WaypointState::NeedTarget => {
                    let target =
                        Point::new(rng.uniform(0.0, area.width), rng.uniform(0.0, area.height));
                    let speed = if self.max_speed > self.min_speed {
                        rng.uniform(self.min_speed, self.max_speed)
                    } else {
                        self.min_speed
                    };
                    self.state = WaypointState::Walking { target, speed };
                }
                WaypointState::Walking { target, speed } => {
                    let dist_left = pos.distance_to(target);
                    let dist_possible = speed * budget;
                    if dist_possible >= dist_left {
                        pos = target;
                        budget -= if speed > 0.0 {
                            dist_left / speed
                        } else {
                            budget
                        };
                        let pause = if self.max_pause_secs > 0.0 {
                            rng.uniform(0.0, self.max_pause_secs)
                        } else {
                            0.0
                        };
                        self.state = WaypointState::Paused { remaining: pause };
                    } else {
                        pos = pos.step_toward(target, dist_possible);
                        budget = 0.0;
                    }
                }
                WaypointState::Paused { remaining } => {
                    if remaining > budget {
                        self.state = WaypointState::Paused {
                            remaining: remaining - budget,
                        };
                        budget = 0.0;
                    } else {
                        budget -= remaining;
                        self.state = WaypointState::NeedTarget;
                    }
                }
            }
        }
        pos
    }

    fn snapshot_state(&self) -> serde::Value {
        self.state.to_value()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        self.state = WaypointState::from_value(state)
            .map_err(|e| format!("random-waypoint state does not parse: {e}"))?;
        Ok(())
    }

    fn speed_cap_m_s(&self) -> Option<f64> {
        Some(self.max_speed)
    }

    fn as_random_waypoint(&self) -> Option<&RandomWaypoint> {
        Some(self)
    }
}

/// A homogeneous Random Waypoint population in struct-of-arrays layout.
///
/// The kernel's mobility phase walks every node every step; with boxed
/// trait objects that is a pointer chase per node. When every node is a
/// plain [`RandomWaypoint`] (the paper's only mobility model), the walk
/// state packs into parallel columns — one cache line serves several
/// nodes, and the per-chunk parallel split needs no `dyn` dispatch.
///
/// The per-node step logic is an exact replica of
/// [`RandomWaypoint::step`]: the same RNG draws in the same order, the
/// same floating-point expressions. A fleet-stepped world is
/// byte-identical to a boxed-model world (asserted in tests), and
/// per-node snapshot documents round-trip across the two layouts.
#[derive(Debug, Clone)]
pub struct RandomWaypointFleet {
    min_speed: Vec<f64>,
    max_speed: Vec<f64>,
    max_pause: Vec<f64>,
    /// Walk phase per node: [`FLEET_NEED_TARGET`] / [`FLEET_WALKING`] /
    /// [`FLEET_PAUSED`].
    phase: Vec<u8>,
    target: Vec<Point>,
    speed: Vec<f64>,
    remaining: Vec<f64>,
}

const FLEET_NEED_TARGET: u8 = 0;
const FLEET_WALKING: u8 = 1;
const FLEET_PAUSED: u8 = 2;

impl RandomWaypointFleet {
    /// Packs `models` into a fleet when every one is a [`RandomWaypoint`]
    /// (any parameters, any mid-walk state); `None` as soon as one is not.
    #[must_use]
    pub fn from_models(models: &[Box<dyn MobilityModel>]) -> Option<Self> {
        let mut fleet = RandomWaypointFleet {
            min_speed: Vec::with_capacity(models.len()),
            max_speed: Vec::with_capacity(models.len()),
            max_pause: Vec::with_capacity(models.len()),
            phase: Vec::with_capacity(models.len()),
            target: Vec::with_capacity(models.len()),
            speed: Vec::with_capacity(models.len()),
            remaining: Vec::with_capacity(models.len()),
        };
        for model in models {
            let w = model.as_random_waypoint()?;
            fleet.min_speed.push(w.min_speed);
            fleet.max_speed.push(w.max_speed);
            fleet.max_pause.push(w.max_pause_secs);
            let (phase, target, speed, remaining) = match &w.state {
                WaypointState::NeedTarget => (FLEET_NEED_TARGET, Point::ORIGIN, 0.0, 0.0),
                WaypointState::Walking { target, speed } => (FLEET_WALKING, *target, *speed, 0.0),
                WaypointState::Paused { remaining } => {
                    (FLEET_PAUSED, Point::ORIGIN, 0.0, *remaining)
                }
            };
            fleet.phase.push(phase);
            fleet.target.push(target);
            fleet.speed.push(speed);
            fleet.remaining.push(remaining);
        }
        Some(fleet)
    }

    /// Number of nodes in the fleet.
    #[must_use]
    pub fn len(&self) -> usize {
        self.phase.len()
    }

    /// Whether the fleet is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.phase.is_empty()
    }

    /// Node `i`'s speed cap (its `max_speed`).
    #[must_use]
    pub fn speed_cap(&self, i: usize) -> f64 {
        self.max_speed[i]
    }

    /// Advances every node by `dt`, writing new positions in place.
    /// `chunk` is the shard width of the data-parallel split; a chunk
    /// covering all nodes runs serially on the calling thread. Sharding
    /// is wall-clock-only: each node's step reads and writes only its own
    /// columns and its own RNG, so any partition computes the same state.
    ///
    /// # Panics
    ///
    /// Panics if `positions` or `rngs` disagree with the fleet length, or
    /// `chunk` is zero.
    pub fn step_all(
        &mut self,
        positions: &mut [Point],
        rngs: &mut [SimRng],
        dt: SimDuration,
        area: Area,
        chunk: usize,
    ) {
        let n = self.len();
        assert_eq!(positions.len(), n, "one position per node");
        assert_eq!(rngs.len(), n, "one RNG stream per node");
        assert!(chunk > 0, "chunk width must be positive");
        if chunk >= n {
            step_fleet_slice(
                positions,
                rngs,
                &self.min_speed,
                &self.max_speed,
                &self.max_pause,
                &mut self.phase,
                &mut self.target,
                &mut self.speed,
                &mut self.remaining,
                dt,
                area,
            );
            return;
        }
        std::thread::scope(|s| {
            let iter = positions
                .chunks_mut(chunk)
                .zip(rngs.chunks_mut(chunk))
                .zip(self.min_speed.chunks(chunk))
                .zip(self.max_speed.chunks(chunk))
                .zip(self.max_pause.chunks(chunk))
                .zip(self.phase.chunks_mut(chunk))
                .zip(self.target.chunks_mut(chunk))
                .zip(self.speed.chunks_mut(chunk))
                .zip(self.remaining.chunks_mut(chunk));
            for ((((((((pos, rng), min_s), max_s), max_p), phase), target), speed), remaining) in
                iter
            {
                s.spawn(move || {
                    step_fleet_slice(
                        pos, rng, min_s, max_s, max_p, phase, target, speed, remaining, dt, area,
                    );
                });
            }
        });
    }

    /// Node `i`'s walk state as the same opaque document a boxed
    /// [`RandomWaypoint`] writes, so snapshots are layout-independent.
    #[must_use]
    pub fn snapshot_state(&self, i: usize) -> serde::Value {
        let state = match self.phase[i] {
            FLEET_NEED_TARGET => WaypointState::NeedTarget,
            FLEET_WALKING => WaypointState::Walking {
                target: self.target[i],
                speed: self.speed[i],
            },
            _ => WaypointState::Paused {
                remaining: self.remaining[i],
            },
        };
        state.to_value()
    }

    /// Restores node `i`'s walk state from a document written by either
    /// layout.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch when `state` is not a
    /// Random Waypoint walk document.
    pub fn restore_state(&mut self, i: usize, state: &serde::Value) -> Result<(), String> {
        let state = WaypointState::from_value(state)
            .map_err(|e| format!("random-waypoint state does not parse: {e}"))?;
        let (phase, target, speed, remaining) = match state {
            WaypointState::NeedTarget => (FLEET_NEED_TARGET, Point::ORIGIN, 0.0, 0.0),
            WaypointState::Walking { target, speed } => (FLEET_WALKING, target, speed, 0.0),
            WaypointState::Paused { remaining } => (FLEET_PAUSED, Point::ORIGIN, 0.0, remaining),
        };
        self.phase[i] = phase;
        self.target[i] = target;
        self.speed[i] = speed;
        self.remaining[i] = remaining;
        Ok(())
    }
}

/// The fleet's per-node step kernel over one shard of the columns. Must
/// mirror [`RandomWaypoint::step`] exactly — same draws, same arithmetic,
/// same order — or fleet and boxed worlds drift apart.
#[allow(clippy::too_many_arguments)] // the SoA column list
fn step_fleet_slice(
    positions: &mut [Point],
    rngs: &mut [SimRng],
    min_speed: &[f64],
    max_speed: &[f64],
    max_pause: &[f64],
    phase: &mut [u8],
    target: &mut [Point],
    speed: &mut [f64],
    remaining: &mut [f64],
    dt: SimDuration,
    area: Area,
) {
    for i in 0..positions.len() {
        let rng = &mut rngs[i];
        let mut pos = positions[i];
        let mut budget = dt.as_secs();
        while budget > 0.0 {
            match phase[i] {
                FLEET_NEED_TARGET => {
                    target[i] =
                        Point::new(rng.uniform(0.0, area.width), rng.uniform(0.0, area.height));
                    speed[i] = if max_speed[i] > min_speed[i] {
                        rng.uniform(min_speed[i], max_speed[i])
                    } else {
                        min_speed[i]
                    };
                    phase[i] = FLEET_WALKING;
                }
                FLEET_WALKING => {
                    let dist_left = pos.distance_to(target[i]);
                    let dist_possible = speed[i] * budget;
                    if dist_possible >= dist_left {
                        pos = target[i];
                        budget -= if speed[i] > 0.0 {
                            dist_left / speed[i]
                        } else {
                            budget
                        };
                        remaining[i] = if max_pause[i] > 0.0 {
                            rng.uniform(0.0, max_pause[i])
                        } else {
                            0.0
                        };
                        phase[i] = FLEET_PAUSED;
                    } else {
                        pos = pos.step_toward(target[i], dist_possible);
                        budget = 0.0;
                    }
                }
                _ => {
                    if remaining[i] > budget {
                        remaining[i] -= budget;
                        budget = 0.0;
                    } else {
                        budget -= remaining[i];
                        phase[i] = FLEET_NEED_TARGET;
                    }
                }
            }
        }
        positions[i] = pos;
    }
}

/// A drift-free random walk: each step moves in a fresh uniform direction at
/// a fixed speed, reflecting off the area boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomWalk {
    /// Speed, m/s.
    pub speed: f64,
}

impl RandomWalk {
    /// Creates a walk at `speed` m/s.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is negative.
    #[must_use]
    pub fn new(speed: f64) -> Self {
        assert!(speed >= 0.0, "speed must be non-negative");
        RandomWalk { speed }
    }
}

impl MobilityModel for RandomWalk {
    fn step(&mut self, current: Point, dt: SimDuration, area: Area, rng: &mut SimRng) -> Point {
        let theta = rng.uniform(0.0, std::f64::consts::TAU);
        let d = self.speed * dt.as_secs();
        let raw = Point::new(current.x + theta.cos() * d, current.y + theta.sin() * d);
        area.clamp(raw)
    }

    fn speed_cap_m_s(&self) -> Option<f64> {
        Some(self.speed)
    }
}

/// A node that never moves. Used for infrastructure nodes and tests.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Stationary;

impl MobilityModel for Stationary {
    fn step(&mut self, current: Point, _dt: SimDuration, _area: Area, _rng: &mut SimRng) -> Point {
        current
    }

    fn speed_cap_m_s(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// Deterministic scripted movement: visit fixed `(time, position)` keyframes,
/// teleport-free (linear interpolation between keyframes).
///
/// Reproduces controlled topologies such as the Paper II demo (devices A–B–C
/// where A and C never share range).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScriptedWaypoints {
    keyframes: Vec<(f64, Point)>,
    elapsed: f64,
}

impl ScriptedWaypoints {
    /// Creates a script from `(seconds, position)` keyframes.
    ///
    /// Before the first keyframe the node sits at the first position; after
    /// the last it sits at the last.
    ///
    /// # Panics
    ///
    /// Panics if `keyframes` is empty or timestamps are not non-decreasing.
    #[must_use]
    pub fn new(keyframes: Vec<(f64, Point)>) -> Self {
        assert!(!keyframes.is_empty(), "script needs at least one keyframe");
        assert!(
            keyframes.windows(2).all(|w| w[0].0 <= w[1].0),
            "keyframe times must be non-decreasing"
        );
        ScriptedWaypoints {
            keyframes,
            elapsed: 0.0,
        }
    }

    /// A script that holds one position forever.
    #[must_use]
    pub fn pinned(p: Point) -> Self {
        Self::new(vec![(0.0, p)])
    }

    /// Parses a mobility trace in `t,x,y` CSV form (one keyframe per
    /// line; blank lines and `#` comments ignored) — the common format of
    /// published contact traces and of ONE's external-movement files.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line, of an empty
    /// trace, or of out-of-order timestamps.
    pub fn from_csv(trace: &str) -> Result<Self, String> {
        let mut keyframes = Vec::new();
        for (lineno, line) in trace.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split(',').map(str::trim);
            let mut field = |name: &str| -> Result<f64, String> {
                parts
                    .next()
                    .ok_or_else(|| format!("line {}: missing {name}", lineno + 1))?
                    .parse::<f64>()
                    .map_err(|e| format!("line {}: bad {name}: {e}", lineno + 1))
            };
            let t = field("t")?;
            let x = field("x")?;
            let y = field("y")?;
            if !(t.is_finite() && x.is_finite() && y.is_finite()) {
                return Err(format!("line {}: non-finite value", lineno + 1));
            }
            keyframes.push((t, Point::new(x, y)));
        }
        if keyframes.is_empty() {
            return Err("trace contains no keyframes".into());
        }
        if !keyframes.windows(2).all(|w| w[0].0 <= w[1].0) {
            return Err("trace timestamps must be non-decreasing".into());
        }
        Ok(Self::new(keyframes))
    }

    fn position_at(&self, t: f64) -> Point {
        let ks = &self.keyframes;
        if t <= ks[0].0 {
            return ks[0].1;
        }
        for w in ks.windows(2) {
            let (t0, p0) = w[0];
            let (t1, p1) = w[1];
            if t <= t1 {
                if t1 == t0 {
                    return p1;
                }
                let f = (t - t0) / (t1 - t0);
                return Point::new(p0.x + (p1.x - p0.x) * f, p0.y + (p1.y - p0.y) * f);
            }
        }
        ks[ks.len() - 1].1
    }
}

impl MobilityModel for ScriptedWaypoints {
    fn step(&mut self, _current: Point, dt: SimDuration, _area: Area, _rng: &mut SimRng) -> Point {
        self.elapsed += dt.as_secs();
        self.position_at(self.elapsed)
    }

    fn initial_position(&mut self, _area: Area, _rng: &mut SimRng) -> Point {
        self.position_at(0.0)
    }

    fn snapshot_state(&self) -> serde::Value {
        self.elapsed.to_value()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        self.elapsed = f64::from_value(state)
            .map_err(|e| format!("scripted-waypoints state does not parse: {e}"))?;
        Ok(())
    }

    fn speed_cap_m_s(&self) -> Option<f64> {
        // Max segment speed over the script; a zero-duration hop between
        // distinct keyframes is a teleport with no finite cap.
        let mut cap: f64 = 0.0;
        for w in self.keyframes.windows(2) {
            let (t0, p0) = w[0];
            let (t1, p1) = w[1];
            let d = p0.distance_to(p1);
            if d > 0.0 {
                if t1 <= t0 {
                    return None;
                }
                cap = cap.max(d / (t1 - t0));
            }
        }
        Some(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(99)
    }

    #[test]
    fn waypoint_stays_in_area_and_moves() {
        let area = Area::new(500.0, 500.0);
        let mut m = RandomWaypoint::pedestrian();
        let mut r = rng();
        let mut pos = m.initial_position(area, &mut r);
        let start = pos;
        let mut moved = false;
        for _ in 0..2000 {
            pos = m.step(pos, SimDuration::from_secs(1.0), area, &mut r);
            assert!(area.contains(pos), "escaped the area: {pos:?}");
            if pos.distance_to(start) > 1.0 {
                moved = true;
            }
        }
        assert!(moved, "random waypoint never moved");
    }

    #[test]
    fn waypoint_speed_bounded() {
        let area = Area::new(500.0, 500.0);
        let mut m = RandomWaypoint::new(1.0, 2.0, 0.0);
        let mut r = rng();
        let mut pos = m.initial_position(area, &mut r);
        for _ in 0..500 {
            let next = m.step(pos, SimDuration::from_secs(1.0), area, &mut r);
            // With zero pause the node can still turn a corner mid-step, but
            // displacement can never exceed max speed × dt.
            assert!(next.distance_to(pos) <= 2.0 + 1e-9);
            pos = next;
        }
    }

    #[test]
    fn random_walk_respects_speed_and_bounds() {
        let area = Area::new(100.0, 100.0);
        let mut m = RandomWalk::new(3.0);
        let mut r = rng();
        let mut pos = Point::new(50.0, 50.0);
        for _ in 0..500 {
            let next = m.step(pos, SimDuration::from_secs(2.0), area, &mut r);
            assert!(next.distance_to(pos) <= 6.0 + 1e-9);
            assert!(area.contains(next));
            pos = next;
        }
    }

    #[test]
    fn stationary_never_moves() {
        let area = Area::new(10.0, 10.0);
        let mut m = Stationary;
        let p = Point::new(3.0, 4.0);
        let next = m.step(p, SimDuration::from_secs(100.0), area, &mut rng());
        assert_eq!(next, p);
    }

    #[test]
    fn script_interpolates_linearly() {
        let mut m = ScriptedWaypoints::new(vec![
            (0.0, Point::new(0.0, 0.0)),
            (10.0, Point::new(100.0, 0.0)),
        ]);
        let area = Area::new(200.0, 200.0);
        let mut r = rng();
        assert_eq!(m.initial_position(area, &mut r), Point::ORIGIN);
        let p = m.step(Point::ORIGIN, SimDuration::from_secs(5.0), area, &mut r);
        assert!((p.x - 50.0).abs() < 1e-9 && p.y == 0.0);
        let p = m.step(p, SimDuration::from_secs(100.0), area, &mut r);
        assert_eq!(p, Point::new(100.0, 0.0), "holds last keyframe");
    }

    #[test]
    fn pinned_script_is_stationary() {
        let mut m = ScriptedWaypoints::pinned(Point::new(7.0, 8.0));
        let area = Area::new(10.0, 10.0);
        let mut r = rng();
        assert_eq!(m.initial_position(area, &mut r), Point::new(7.0, 8.0));
        let p = m.step(Point::ORIGIN, SimDuration::from_secs(50.0), area, &mut r);
        assert_eq!(p, Point::new(7.0, 8.0));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn script_rejects_unordered_keyframes() {
        let _ = ScriptedWaypoints::new(vec![(5.0, Point::ORIGIN), (1.0, Point::ORIGIN)]);
    }

    #[test]
    fn csv_trace_round_trip() {
        let trace = "# a demo trace\n0, 10, 20\n\n30, 40, 20\n60,40,80\n";
        let mut m = ScriptedWaypoints::from_csv(trace).expect("valid trace");
        let area = Area::new(100.0, 100.0);
        let mut r = rng();
        assert_eq!(m.initial_position(area, &mut r), Point::new(10.0, 20.0));
        let p = m.step(Point::ORIGIN, SimDuration::from_secs(15.0), area, &mut r);
        assert!(
            (p.x - 25.0).abs() < 1e-9 && (p.y - 20.0).abs() < 1e-9,
            "{p:?}"
        );
    }

    #[test]
    fn csv_trace_errors_are_descriptive() {
        assert!(ScriptedWaypoints::from_csv("")
            .unwrap_err()
            .contains("no keyframes"));
        assert!(ScriptedWaypoints::from_csv("0,1")
            .unwrap_err()
            .contains("missing y"));
        assert!(ScriptedWaypoints::from_csv("0,1,zebra")
            .unwrap_err()
            .contains("bad y"));
        assert!(ScriptedWaypoints::from_csv("5,0,0\n1,0,0")
            .unwrap_err()
            .contains("non-decreasing"));
        assert!(ScriptedWaypoints::from_csv("0,inf,0")
            .unwrap_err()
            .contains("non-finite"));
    }
}
