//! Mobility models.
//!
//! All the paper's experiments use the Random Waypoint model (§5: "all the
//! experiments are conducted under Random Waypoint mobility model"). The
//! other models here support testing, the Paper II demo walkthrough
//! (scripted three-node topology), and extension experiments.

use serde::{Deserialize, Serialize};

use crate::geometry::{Area, Point};
use crate::rng::SimRng;
use crate::time::SimDuration;

/// Per-node movement state, advanced once per simulation step.
pub trait MobilityModel: std::fmt::Debug + Send {
    /// Advances the node by `dt`, returning its new position.
    fn step(&mut self, current: Point, dt: SimDuration, area: Area, rng: &mut SimRng) -> Point;

    /// An initial position for this node.
    fn initial_position(&mut self, area: Area, rng: &mut SimRng) -> Point {
        Point::new(rng.uniform(0.0, area.width), rng.uniform(0.0, area.height))
    }

    /// The model's dynamic walk state as an opaque document, for a
    /// whole-world snapshot. Stateless models return [`serde::Value::Null`]
    /// (the default); stateful models must override both this and
    /// [`MobilityModel::restore_state`] or a resumed run will replay their
    /// walk from scratch.
    fn snapshot_state(&self) -> serde::Value {
        serde::Value::Null
    }

    /// Restores the dynamic walk state captured by
    /// [`MobilityModel::snapshot_state`].
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch when `state` is not a document
    /// this model produces (e.g. a snapshot taken under a different
    /// mobility model).
    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        if matches!(state, serde::Value::Null) {
            Ok(())
        } else {
            Err("snapshot carries mobility state but this model keeps none".to_string())
        }
    }
}

/// The Random Waypoint model: pick a uniform destination, walk to it at a
/// uniform speed from `[min_speed, max_speed]`, pause, repeat.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomWaypoint {
    /// Minimum walking speed, m/s.
    pub min_speed: f64,
    /// Maximum walking speed, m/s.
    pub max_speed: f64,
    /// Maximum pause at each waypoint, seconds (uniform in `[0, max]`).
    pub max_pause_secs: f64,
    #[serde(skip)]
    state: WaypointState,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
enum WaypointState {
    #[default]
    NeedTarget,
    Walking {
        target: Point,
        speed: f64,
    },
    Paused {
        remaining: f64,
    },
}

impl RandomWaypoint {
    /// Creates a model with pedestrian speeds.
    ///
    /// The defaults (0.5–1.5 m/s walk, up to 120 s pause) are ONE's standard
    /// pedestrian profile, which the paper's scenario implicitly uses.
    ///
    /// # Panics
    ///
    /// Panics if the speed range is empty or non-positive.
    #[must_use]
    pub fn new(min_speed: f64, max_speed: f64, max_pause_secs: f64) -> Self {
        assert!(
            min_speed > 0.0 && max_speed >= min_speed,
            "speed range must be positive and non-empty"
        );
        assert!(max_pause_secs >= 0.0, "pause must be non-negative");
        RandomWaypoint {
            min_speed,
            max_speed,
            max_pause_secs,
            state: WaypointState::NeedTarget,
        }
    }

    /// ONE's default pedestrian profile (0.5–1.5 m/s, ≤120 s pause).
    #[must_use]
    pub fn pedestrian() -> Self {
        Self::new(0.5, 1.5, 120.0)
    }
}

impl MobilityModel for RandomWaypoint {
    fn step(&mut self, current: Point, dt: SimDuration, area: Area, rng: &mut SimRng) -> Point {
        let mut pos = current;
        let mut budget = dt.as_secs();
        // A step can cross a waypoint boundary; loop until the time budget
        // for this step is spent.
        while budget > 0.0 {
            match self.state {
                WaypointState::NeedTarget => {
                    let target =
                        Point::new(rng.uniform(0.0, area.width), rng.uniform(0.0, area.height));
                    let speed = if self.max_speed > self.min_speed {
                        rng.uniform(self.min_speed, self.max_speed)
                    } else {
                        self.min_speed
                    };
                    self.state = WaypointState::Walking { target, speed };
                }
                WaypointState::Walking { target, speed } => {
                    let dist_left = pos.distance_to(target);
                    let dist_possible = speed * budget;
                    if dist_possible >= dist_left {
                        pos = target;
                        budget -= if speed > 0.0 {
                            dist_left / speed
                        } else {
                            budget
                        };
                        let pause = if self.max_pause_secs > 0.0 {
                            rng.uniform(0.0, self.max_pause_secs)
                        } else {
                            0.0
                        };
                        self.state = WaypointState::Paused { remaining: pause };
                    } else {
                        pos = pos.step_toward(target, dist_possible);
                        budget = 0.0;
                    }
                }
                WaypointState::Paused { remaining } => {
                    if remaining > budget {
                        self.state = WaypointState::Paused {
                            remaining: remaining - budget,
                        };
                        budget = 0.0;
                    } else {
                        budget -= remaining;
                        self.state = WaypointState::NeedTarget;
                    }
                }
            }
        }
        pos
    }

    fn snapshot_state(&self) -> serde::Value {
        self.state.to_value()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        self.state = WaypointState::from_value(state)
            .map_err(|e| format!("random-waypoint state does not parse: {e}"))?;
        Ok(())
    }
}

/// A drift-free random walk: each step moves in a fresh uniform direction at
/// a fixed speed, reflecting off the area boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomWalk {
    /// Speed, m/s.
    pub speed: f64,
}

impl RandomWalk {
    /// Creates a walk at `speed` m/s.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is negative.
    #[must_use]
    pub fn new(speed: f64) -> Self {
        assert!(speed >= 0.0, "speed must be non-negative");
        RandomWalk { speed }
    }
}

impl MobilityModel for RandomWalk {
    fn step(&mut self, current: Point, dt: SimDuration, area: Area, rng: &mut SimRng) -> Point {
        let theta = rng.uniform(0.0, std::f64::consts::TAU);
        let d = self.speed * dt.as_secs();
        let raw = Point::new(current.x + theta.cos() * d, current.y + theta.sin() * d);
        area.clamp(raw)
    }
}

/// A node that never moves. Used for infrastructure nodes and tests.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Stationary;

impl MobilityModel for Stationary {
    fn step(&mut self, current: Point, _dt: SimDuration, _area: Area, _rng: &mut SimRng) -> Point {
        current
    }
}

/// Deterministic scripted movement: visit fixed `(time, position)` keyframes,
/// teleport-free (linear interpolation between keyframes).
///
/// Reproduces controlled topologies such as the Paper II demo (devices A–B–C
/// where A and C never share range).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScriptedWaypoints {
    keyframes: Vec<(f64, Point)>,
    elapsed: f64,
}

impl ScriptedWaypoints {
    /// Creates a script from `(seconds, position)` keyframes.
    ///
    /// Before the first keyframe the node sits at the first position; after
    /// the last it sits at the last.
    ///
    /// # Panics
    ///
    /// Panics if `keyframes` is empty or timestamps are not non-decreasing.
    #[must_use]
    pub fn new(keyframes: Vec<(f64, Point)>) -> Self {
        assert!(!keyframes.is_empty(), "script needs at least one keyframe");
        assert!(
            keyframes.windows(2).all(|w| w[0].0 <= w[1].0),
            "keyframe times must be non-decreasing"
        );
        ScriptedWaypoints {
            keyframes,
            elapsed: 0.0,
        }
    }

    /// A script that holds one position forever.
    #[must_use]
    pub fn pinned(p: Point) -> Self {
        Self::new(vec![(0.0, p)])
    }

    /// Parses a mobility trace in `t,x,y` CSV form (one keyframe per
    /// line; blank lines and `#` comments ignored) — the common format of
    /// published contact traces and of ONE's external-movement files.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line, of an empty
    /// trace, or of out-of-order timestamps.
    pub fn from_csv(trace: &str) -> Result<Self, String> {
        let mut keyframes = Vec::new();
        for (lineno, line) in trace.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split(',').map(str::trim);
            let mut field = |name: &str| -> Result<f64, String> {
                parts
                    .next()
                    .ok_or_else(|| format!("line {}: missing {name}", lineno + 1))?
                    .parse::<f64>()
                    .map_err(|e| format!("line {}: bad {name}: {e}", lineno + 1))
            };
            let t = field("t")?;
            let x = field("x")?;
            let y = field("y")?;
            if !(t.is_finite() && x.is_finite() && y.is_finite()) {
                return Err(format!("line {}: non-finite value", lineno + 1));
            }
            keyframes.push((t, Point::new(x, y)));
        }
        if keyframes.is_empty() {
            return Err("trace contains no keyframes".into());
        }
        if !keyframes.windows(2).all(|w| w[0].0 <= w[1].0) {
            return Err("trace timestamps must be non-decreasing".into());
        }
        Ok(Self::new(keyframes))
    }

    fn position_at(&self, t: f64) -> Point {
        let ks = &self.keyframes;
        if t <= ks[0].0 {
            return ks[0].1;
        }
        for w in ks.windows(2) {
            let (t0, p0) = w[0];
            let (t1, p1) = w[1];
            if t <= t1 {
                if t1 == t0 {
                    return p1;
                }
                let f = (t - t0) / (t1 - t0);
                return Point::new(p0.x + (p1.x - p0.x) * f, p0.y + (p1.y - p0.y) * f);
            }
        }
        ks[ks.len() - 1].1
    }
}

impl MobilityModel for ScriptedWaypoints {
    fn step(&mut self, _current: Point, dt: SimDuration, _area: Area, _rng: &mut SimRng) -> Point {
        self.elapsed += dt.as_secs();
        self.position_at(self.elapsed)
    }

    fn initial_position(&mut self, _area: Area, _rng: &mut SimRng) -> Point {
        self.position_at(0.0)
    }

    fn snapshot_state(&self) -> serde::Value {
        self.elapsed.to_value()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        self.elapsed = f64::from_value(state)
            .map_err(|e| format!("scripted-waypoints state does not parse: {e}"))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(99)
    }

    #[test]
    fn waypoint_stays_in_area_and_moves() {
        let area = Area::new(500.0, 500.0);
        let mut m = RandomWaypoint::pedestrian();
        let mut r = rng();
        let mut pos = m.initial_position(area, &mut r);
        let start = pos;
        let mut moved = false;
        for _ in 0..2000 {
            pos = m.step(pos, SimDuration::from_secs(1.0), area, &mut r);
            assert!(area.contains(pos), "escaped the area: {pos:?}");
            if pos.distance_to(start) > 1.0 {
                moved = true;
            }
        }
        assert!(moved, "random waypoint never moved");
    }

    #[test]
    fn waypoint_speed_bounded() {
        let area = Area::new(500.0, 500.0);
        let mut m = RandomWaypoint::new(1.0, 2.0, 0.0);
        let mut r = rng();
        let mut pos = m.initial_position(area, &mut r);
        for _ in 0..500 {
            let next = m.step(pos, SimDuration::from_secs(1.0), area, &mut r);
            // With zero pause the node can still turn a corner mid-step, but
            // displacement can never exceed max speed × dt.
            assert!(next.distance_to(pos) <= 2.0 + 1e-9);
            pos = next;
        }
    }

    #[test]
    fn random_walk_respects_speed_and_bounds() {
        let area = Area::new(100.0, 100.0);
        let mut m = RandomWalk::new(3.0);
        let mut r = rng();
        let mut pos = Point::new(50.0, 50.0);
        for _ in 0..500 {
            let next = m.step(pos, SimDuration::from_secs(2.0), area, &mut r);
            assert!(next.distance_to(pos) <= 6.0 + 1e-9);
            assert!(area.contains(next));
            pos = next;
        }
    }

    #[test]
    fn stationary_never_moves() {
        let area = Area::new(10.0, 10.0);
        let mut m = Stationary;
        let p = Point::new(3.0, 4.0);
        let next = m.step(p, SimDuration::from_secs(100.0), area, &mut rng());
        assert_eq!(next, p);
    }

    #[test]
    fn script_interpolates_linearly() {
        let mut m = ScriptedWaypoints::new(vec![
            (0.0, Point::new(0.0, 0.0)),
            (10.0, Point::new(100.0, 0.0)),
        ]);
        let area = Area::new(200.0, 200.0);
        let mut r = rng();
        assert_eq!(m.initial_position(area, &mut r), Point::ORIGIN);
        let p = m.step(Point::ORIGIN, SimDuration::from_secs(5.0), area, &mut r);
        assert!((p.x - 50.0).abs() < 1e-9 && p.y == 0.0);
        let p = m.step(p, SimDuration::from_secs(100.0), area, &mut r);
        assert_eq!(p, Point::new(100.0, 0.0), "holds last keyframe");
    }

    #[test]
    fn pinned_script_is_stationary() {
        let mut m = ScriptedWaypoints::pinned(Point::new(7.0, 8.0));
        let area = Area::new(10.0, 10.0);
        let mut r = rng();
        assert_eq!(m.initial_position(area, &mut r), Point::new(7.0, 8.0));
        let p = m.step(Point::ORIGIN, SimDuration::from_secs(50.0), area, &mut r);
        assert_eq!(p, Point::new(7.0, 8.0));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn script_rejects_unordered_keyframes() {
        let _ = ScriptedWaypoints::new(vec![(5.0, Point::ORIGIN), (1.0, Point::ORIGIN)]);
    }

    #[test]
    fn csv_trace_round_trip() {
        let trace = "# a demo trace\n0, 10, 20\n\n30, 40, 20\n60,40,80\n";
        let mut m = ScriptedWaypoints::from_csv(trace).expect("valid trace");
        let area = Area::new(100.0, 100.0);
        let mut r = rng();
        assert_eq!(m.initial_position(area, &mut r), Point::new(10.0, 20.0));
        let p = m.step(Point::ORIGIN, SimDuration::from_secs(15.0), area, &mut r);
        assert!(
            (p.x - 25.0).abs() < 1e-9 && (p.y - 20.0).abs() < 1e-9,
            "{p:?}"
        );
    }

    #[test]
    fn csv_trace_errors_are_descriptive() {
        assert!(ScriptedWaypoints::from_csv("")
            .unwrap_err()
            .contains("no keyframes"));
        assert!(ScriptedWaypoints::from_csv("0,1")
            .unwrap_err()
            .contains("missing y"));
        assert!(ScriptedWaypoints::from_csv("0,1,zebra")
            .unwrap_err()
            .contains("bad y"));
        assert!(ScriptedWaypoints::from_csv("5,0,0\n1,0,0")
            .unwrap_err()
            .contains("non-decreasing"));
        assert!(ScriptedWaypoints::from_csv("0,inf,0")
            .unwrap_err()
            .contains("non-finite"));
    }
}
