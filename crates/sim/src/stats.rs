//! Run statistics.
//!
//! The collector tracks exactly the quantities the paper's evaluation
//! reports: message delivery ratio (overall and per priority class, Figs.
//! 5.1/5.3/5.5/5.6), relayed traffic (Fig. 5.2), plus auxiliary health
//! metrics (drops, expiries, aborted transfers, latency) and named time
//! series pushed by the protocol layer (Fig. 5.4's malicious-rating curve).
//!
//! Delivery in a data-centric DTN is interest-based: a message has no named
//! destination, so the workload registers the *expected destination set* —
//! the nodes holding a direct interest in one of the source's tags at
//! creation time — and MDR is measured over `(message, destination)` pairs.

use std::collections::BTreeMap;

use crate::fxhash::{FxHashMap, FxHashSet};

use serde::{Deserialize, Serialize};

use crate::message::{MessageId, Priority};
use crate::time::SimTime;
use crate::world::NodeId;

/// Aggregated counters for one simulation run.
#[derive(Debug, Default)]
pub struct StatsCollector {
    created: u64,
    created_by_priority: BTreeMap<u8, u64>,
    expected_pairs: u64,
    expected_pairs_by_priority: BTreeMap<u8, u64>,
    expected_dests: FxHashMap<MessageId, FxHashSet<NodeId>>,
    priority_of: FxHashMap<MessageId, Priority>,
    delivered_pairs: FxHashSet<(MessageId, NodeId)>,
    delivered_expected: u64,
    delivered_expected_by_priority: BTreeMap<u8, u64>,
    delivered_unexpected: u64,
    messages_with_delivery: FxHashSet<MessageId>,
    latency_sum_secs: f64,
    latency_count: u64,
    relays_completed: u64,
    relay_bytes: u64,
    transfers_aborted: u64,
    transfers_retried: u64,
    transfers_resumed: u64,
    transfers_abandoned: u64,
    buffer_evictions: u64,
    ttl_expiries: u64,
    series: BTreeMap<String, Vec<(f64, f64)>>,
}

/// A read-only summary of one run, suitable for aggregation across seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Messages created.
    pub created: u64,
    /// Expected `(message, destination)` pairs registered by the workload.
    pub expected_pairs: u64,
    /// Expected pairs actually delivered (each counted once).
    pub delivered_pairs: u64,
    /// Deliveries to nodes that were not in the expected set (interest
    /// acquired en route, or enrichment-created destinations).
    pub bonus_deliveries: u64,
    /// Messages delivered to at least one node.
    pub messages_with_delivery: u64,
    /// Pair-level delivery ratio `delivered_pairs / expected_pairs`.
    pub delivery_ratio: f64,
    /// Per-priority pair delivery ratio, keyed by `Priority::level()`.
    pub delivery_ratio_by_priority: BTreeMap<u8, f64>,
    /// Mean first-delivery latency, seconds.
    pub mean_latency_secs: f64,
    /// Number of expected deliveries behind `mean_latency_secs` — the
    /// weight a cross-seed average must give this run's latency (a seed
    /// with one delivery must not count as much as one with 500).
    pub latency_count: u64,
    /// Completed message transfers (the paper's "traffic").
    pub relays_completed: u64,
    /// Bytes moved by completed transfers.
    pub relay_bytes: u64,
    /// Transfers aborted (contact loss, source loss, cancels).
    pub transfers_aborted: u64,
    /// Retries scheduled by the recovery layer (0 without a policy).
    #[serde(default)]
    pub transfers_retried: u64,
    /// Enqueues resumed from a checkpoint instead of byte zero.
    #[serde(default)]
    pub transfers_resumed: u64,
    /// Retries abandoned (copy expired/evicted, or demand already met).
    #[serde(default)]
    pub transfers_abandoned: u64,
    /// Copies evicted by buffer pressure.
    pub buffer_evictions: u64,
    /// Copies purged by TTL.
    pub ttl_expiries: u64,
    /// Nodes whose battery hit zero before the run ended (0 with an
    /// unlimited energy budget).
    #[serde(default)]
    pub depleted_nodes: u64,
    /// Named time series recorded during the run.
    pub series: BTreeMap<String, Vec<(f64, f64)>>,
}

impl StatsCollector {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a message creation and its expected destination set.
    pub fn record_created(
        &mut self,
        id: MessageId,
        priority: Priority,
        expected: impl IntoIterator<Item = NodeId>,
    ) {
        self.created += 1;
        *self
            .created_by_priority
            .entry(priority.level())
            .or_default() += 1;
        self.priority_of.insert(id, priority);
        let set: FxHashSet<NodeId> = expected.into_iter().collect();
        self.expected_pairs += set.len() as u64;
        *self
            .expected_pairs_by_priority
            .entry(priority.level())
            .or_default() += set.len() as u64;
        self.expected_dests.insert(id, set);
    }

    /// Records a delivery of `id` to `node` at `now`, with the message's
    /// creation time for latency. Duplicate `(message, node)` deliveries are
    /// ignored (only the first deliverer counts, as in the incentive rule).
    ///
    /// Returns `true` if this was a fresh delivery.
    pub fn record_delivered(
        &mut self,
        id: MessageId,
        node: NodeId,
        created_at: SimTime,
        now: SimTime,
    ) -> bool {
        if !self.delivered_pairs.insert((id, node)) {
            return false;
        }
        self.messages_with_delivery.insert(id);
        let expected = self
            .expected_dests
            .get(&id)
            .is_some_and(|set| set.contains(&node));
        if expected {
            self.delivered_expected += 1;
            if let Some(p) = self.priority_of.get(&id) {
                *self
                    .delivered_expected_by_priority
                    .entry(p.level())
                    .or_default() += 1;
            }
            self.latency_sum_secs += now.duration_since(created_at).as_secs();
            self.latency_count += 1;
        } else {
            self.delivered_unexpected += 1;
        }
        true
    }

    /// Whether `(id, node)` has already been delivered.
    #[must_use]
    pub fn is_delivered(&self, id: MessageId, node: NodeId) -> bool {
        self.delivered_pairs.contains(&(id, node))
    }

    /// Records a completed relay transfer of `bytes`.
    pub fn record_relay(&mut self, bytes: u64) {
        self.relays_completed += 1;
        self.relay_bytes += bytes;
    }

    /// Records an aborted transfer.
    pub fn record_abort(&mut self) {
        self.transfers_aborted += 1;
    }

    /// Records a retry scheduled by the recovery layer.
    pub fn record_retry(&mut self) {
        self.transfers_retried += 1;
    }

    /// Records an enqueue that resumed from a saved checkpoint.
    pub fn record_resume(&mut self) {
        self.transfers_resumed += 1;
    }

    /// Records a retry abandoned before release.
    pub fn record_abandon(&mut self) {
        self.transfers_abandoned += 1;
    }

    /// Records `n` buffer evictions.
    pub fn record_evictions(&mut self, n: usize) {
        self.buffer_evictions += n as u64;
    }

    /// Records `n` TTL expiries.
    pub fn record_expiries(&mut self, n: usize) {
        self.ttl_expiries += n as u64;
    }

    /// Appends a sample to the named time series.
    pub fn push_sample(&mut self, series: &str, t: SimTime, value: f64) {
        self.series
            .entry(series.to_owned())
            .or_default()
            .push((t.as_secs(), value));
    }

    /// Messages created so far.
    #[must_use]
    pub fn created(&self) -> u64 {
        self.created
    }

    /// Captures the collector's full state for a snapshot. Hash-based sets
    /// and maps are emitted sorted so the image is deterministic.
    #[must_use]
    pub fn export_state(&self) -> StatsState {
        let mut expected_dests: Vec<(MessageId, Vec<NodeId>)> = self
            .expected_dests
            .iter()
            .map(|(&id, set)| {
                let mut dests: Vec<NodeId> = set.iter().copied().collect();
                dests.sort_unstable();
                (id, dests)
            })
            .collect();
        expected_dests.sort_unstable_by_key(|&(id, _)| id);
        let mut priority_of: Vec<(MessageId, Priority)> =
            self.priority_of.iter().map(|(&id, &p)| (id, p)).collect();
        priority_of.sort_unstable_by_key(|&(id, _)| id);
        let mut delivered_pairs: Vec<(MessageId, NodeId)> =
            self.delivered_pairs.iter().copied().collect();
        delivered_pairs.sort_unstable();
        let mut messages_with_delivery: Vec<MessageId> =
            self.messages_with_delivery.iter().copied().collect();
        messages_with_delivery.sort_unstable();
        StatsState {
            created: self.created,
            created_by_priority: self.created_by_priority.clone(),
            expected_pairs: self.expected_pairs,
            expected_pairs_by_priority: self.expected_pairs_by_priority.clone(),
            expected_dests,
            priority_of,
            delivered_pairs,
            delivered_expected: self.delivered_expected,
            delivered_expected_by_priority: self.delivered_expected_by_priority.clone(),
            delivered_unexpected: self.delivered_unexpected,
            messages_with_delivery,
            latency_sum_secs: self.latency_sum_secs,
            latency_count: self.latency_count,
            relays_completed: self.relays_completed,
            relay_bytes: self.relay_bytes,
            transfers_aborted: self.transfers_aborted,
            transfers_retried: self.transfers_retried,
            transfers_resumed: self.transfers_resumed,
            transfers_abandoned: self.transfers_abandoned,
            buffer_evictions: self.buffer_evictions,
            ttl_expiries: self.ttl_expiries,
            series: self.series.clone(),
        }
    }

    /// Overwrites the collector's state from a snapshot.
    pub fn import_state(&mut self, state: &StatsState) {
        self.created = state.created;
        self.created_by_priority = state.created_by_priority.clone();
        self.expected_pairs = state.expected_pairs;
        self.expected_pairs_by_priority = state.expected_pairs_by_priority.clone();
        self.expected_dests = state
            .expected_dests
            .iter()
            .map(|(id, dests)| (*id, dests.iter().copied().collect()))
            .collect();
        self.priority_of = state.priority_of.iter().copied().collect();
        self.delivered_pairs = state.delivered_pairs.iter().copied().collect();
        self.delivered_expected = state.delivered_expected;
        self.delivered_expected_by_priority = state.delivered_expected_by_priority.clone();
        self.delivered_unexpected = state.delivered_unexpected;
        self.messages_with_delivery = state.messages_with_delivery.iter().copied().collect();
        self.latency_sum_secs = state.latency_sum_secs;
        self.latency_count = state.latency_count;
        self.relays_completed = state.relays_completed;
        self.relay_bytes = state.relay_bytes;
        self.transfers_aborted = state.transfers_aborted;
        self.transfers_retried = state.transfers_retried;
        self.transfers_resumed = state.transfers_resumed;
        self.transfers_abandoned = state.transfers_abandoned;
        self.buffer_evictions = state.buffer_evictions;
        self.ttl_expiries = state.ttl_expiries;
        self.series = state.series.clone();
    }

    /// Finalizes the run into a summary.
    #[must_use]
    pub fn summarize(&self) -> RunSummary {
        let ratio = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        let mut by_priority = BTreeMap::new();
        for (&level, &expected) in &self.expected_pairs_by_priority {
            let delivered = self
                .delivered_expected_by_priority
                .get(&level)
                .copied()
                .unwrap_or(0);
            by_priority.insert(level, ratio(delivered, expected));
        }
        RunSummary {
            created: self.created,
            expected_pairs: self.expected_pairs,
            delivered_pairs: self.delivered_expected,
            bonus_deliveries: self.delivered_unexpected,
            messages_with_delivery: self.messages_with_delivery.len() as u64,
            delivery_ratio: ratio(self.delivered_expected, self.expected_pairs),
            delivery_ratio_by_priority: by_priority,
            mean_latency_secs: if self.latency_count == 0 {
                0.0
            } else {
                self.latency_sum_secs / self.latency_count as f64
            },
            latency_count: self.latency_count,
            relays_completed: self.relays_completed,
            relay_bytes: self.relay_bytes,
            transfers_aborted: self.transfers_aborted,
            transfers_retried: self.transfers_retried,
            transfers_resumed: self.transfers_resumed,
            transfers_abandoned: self.transfers_abandoned,
            buffer_evictions: self.buffer_evictions,
            ttl_expiries: self.ttl_expiries,
            // Depletion lives in the energy meter, not the collector; the
            // kernel stamps it onto the summary at finalization.
            depleted_nodes: 0,
            series: self.series.clone(),
        }
    }
}

/// The full dynamic state of a [`StatsCollector`], with hash-based
/// containers flattened into sorted vectors for a deterministic image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsState {
    /// Messages created.
    pub created: u64,
    /// Creations per priority level.
    pub created_by_priority: BTreeMap<u8, u64>,
    /// Expected `(message, destination)` pairs registered.
    pub expected_pairs: u64,
    /// Expected pairs per priority level.
    pub expected_pairs_by_priority: BTreeMap<u8, u64>,
    /// Expected destination sets, sorted by message id (inner sorted).
    pub expected_dests: Vec<(MessageId, Vec<NodeId>)>,
    /// Message priorities, sorted by message id.
    pub priority_of: Vec<(MessageId, Priority)>,
    /// Delivered `(message, destination)` pairs, sorted.
    pub delivered_pairs: Vec<(MessageId, NodeId)>,
    /// Expected deliveries counted.
    pub delivered_expected: u64,
    /// Expected deliveries per priority level.
    pub delivered_expected_by_priority: BTreeMap<u8, u64>,
    /// Deliveries outside the expected set.
    pub delivered_unexpected: u64,
    /// Messages with at least one delivery, sorted.
    pub messages_with_delivery: Vec<MessageId>,
    /// Sum of first-delivery latencies, seconds.
    pub latency_sum_secs: f64,
    /// Number of latencies in the sum.
    pub latency_count: u64,
    /// Completed relay transfers.
    pub relays_completed: u64,
    /// Bytes moved by completed transfers.
    pub relay_bytes: u64,
    /// Aborted transfers.
    pub transfers_aborted: u64,
    /// Retries scheduled.
    pub transfers_retried: u64,
    /// Checkpoint resumes.
    pub transfers_resumed: u64,
    /// Retries abandoned.
    pub transfers_abandoned: u64,
    /// Buffer evictions.
    pub buffer_evictions: u64,
    /// TTL expiries.
    pub ttl_expiries: u64,
    /// Named time series.
    pub series: BTreeMap<String, Vec<(f64, f64)>>,
}

impl RunSummary {
    /// Averages several run summaries (one per seed) field-wise.
    ///
    /// Three aggregation rules keep cross-seed means honest:
    ///
    /// * **Latency** is weighted by each run's delivery count
    ///   (`latency_count`); delivery-free runs carry no weight instead of
    ///   dragging the mean toward 0.0.
    /// * **Per-priority delivery ratios** average only over runs that
    ///   actually created messages at that priority — a level absent from
    ///   a run means "nothing to deliver", not "delivered none".
    /// * **Series** sampled on the same time grid are averaged point-wise.
    ///   Misaligned series are resampled (linear interpolation) onto the
    ///   common time grid and then averaged; if the runs share no
    ///   overlapping time range at all, the first run's series is kept but
    ///   renamed with a `:seed0` suffix so a plot can never pass off n=1
    ///   data as a cross-seed mean.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is empty.
    #[must_use]
    pub fn mean_of(runs: &[RunSummary]) -> RunSummary {
        assert!(!runs.is_empty(), "cannot average zero runs");
        let n = runs.len() as f64;
        let mean_u = |f: fn(&RunSummary) -> u64| {
            (runs.iter().map(|r| f(r) as f64).sum::<f64>() / n).round() as u64
        };
        let mean_f = |f: fn(&RunSummary) -> f64| runs.iter().map(f).sum::<f64>() / n;

        // Delivery-count-weighted latency: a seed with one delivery must
        // not pull as hard as a seed with 500, and a zero-delivery seed
        // (latency 0.0 by convention) must not pull at all.
        let total_latency_count: u64 = runs.iter().map(|r| r.latency_count).sum();
        let mean_latency_secs = if total_latency_count == 0 {
            0.0
        } else {
            runs.iter()
                .map(|r| r.mean_latency_secs * r.latency_count as f64)
                .sum::<f64>()
                / total_latency_count as f64
        };

        let mut by_priority: BTreeMap<u8, f64> = BTreeMap::new();
        for level in runs
            .iter()
            .flat_map(|r| r.delivery_ratio_by_priority.keys().copied())
            .collect::<std::collections::BTreeSet<u8>>()
        {
            // Only runs that created messages at this level participate:
            // `summarize` emits a per-priority entry exactly when the run
            // created traffic there, so key presence is the created-at-
            // this-level signal.
            let ratios: Vec<f64> = runs
                .iter()
                .filter_map(|r| r.delivery_ratio_by_priority.get(&level).copied())
                .collect();
            if !ratios.is_empty() {
                let v = ratios.iter().sum::<f64>() / ratios.len() as f64;
                by_priority.insert(level, v);
            }
        }

        let mut series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        for name in runs
            .iter()
            .flat_map(|r| r.series.keys().cloned())
            .collect::<std::collections::BTreeSet<String>>()
        {
            let with_series: Vec<&Vec<(f64, f64)>> = runs
                .iter()
                .filter_map(|r| r.series.get(&name))
                .filter(|s| !s.is_empty())
                .collect();
            let Some(first) = with_series.first() else {
                continue;
            };
            if with_series.len() == 1 {
                series.insert(name, (*first).clone());
                continue;
            }
            let aligned = with_series.windows(2).all(|w| w[0].len() == w[1].len())
                && with_series
                    .iter()
                    .all(|s| s.iter().zip(first.iter()).all(|(a, b)| a.0 == b.0));
            if aligned {
                let len = first.len();
                let mut avg = Vec::with_capacity(len);
                for i in 0..len {
                    let t = first[i].0;
                    let v =
                        with_series.iter().map(|s| s[i].1).sum::<f64>() / with_series.len() as f64;
                    avg.push((t, v));
                }
                series.insert(name, avg);
            } else if let Some(resampled) = resample_mean(&with_series) {
                series.insert(name, resampled);
            } else {
                // No overlapping time range: nothing can honestly be
                // averaged. Keep the first run's data but label it as a
                // single seed's series, never as the mean.
                series.insert(format!("{name}:seed0"), (*first).clone());
            }
        }

        RunSummary {
            created: mean_u(|r| r.created),
            expected_pairs: mean_u(|r| r.expected_pairs),
            delivered_pairs: mean_u(|r| r.delivered_pairs),
            bonus_deliveries: mean_u(|r| r.bonus_deliveries),
            messages_with_delivery: mean_u(|r| r.messages_with_delivery),
            delivery_ratio: mean_f(|r| r.delivery_ratio),
            delivery_ratio_by_priority: by_priority,
            mean_latency_secs,
            latency_count: total_latency_count,
            relays_completed: mean_u(|r| r.relays_completed),
            relay_bytes: mean_u(|r| r.relay_bytes),
            transfers_aborted: mean_u(|r| r.transfers_aborted),
            transfers_retried: mean_u(|r| r.transfers_retried),
            transfers_resumed: mean_u(|r| r.transfers_resumed),
            transfers_abandoned: mean_u(|r| r.transfers_abandoned),
            buffer_evictions: mean_u(|r| r.buffer_evictions),
            ttl_expiries: mean_u(|r| r.ttl_expiries),
            depleted_nodes: mean_u(|r| r.depleted_nodes),
            series,
        }
    }
}

/// Averages misaligned time series by resampling each onto their common
/// time grid (the union of sample times clipped to the overlapping range)
/// with linear interpolation. Returns `None` when the series share no
/// overlapping range (or any series is empty).
///
/// Each input must be sorted by time, which holds for everything
/// [`StatsCollector::push_sample`] records (simulation time is monotonic).
fn resample_mean(series: &[&Vec<(f64, f64)>]) -> Option<Vec<(f64, f64)>> {
    if series.iter().any(|s| s.is_empty()) {
        return None;
    }
    let start = series
        .iter()
        .map(|s| s[0].0)
        .fold(f64::NEG_INFINITY, f64::max);
    let end = series
        .iter()
        .map(|s| s[s.len() - 1].0)
        .fold(f64::INFINITY, f64::min);
    if start > end {
        return None;
    }
    let mut grid: Vec<f64> = series
        .iter()
        .flat_map(|s| s.iter().map(|&(t, _)| t))
        .filter(|&t| t >= start && t <= end)
        .collect();
    grid.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    grid.dedup();
    let mean = grid
        .iter()
        .map(|&t| {
            let v = series.iter().map(|s| interpolate_at(s, t)).sum::<f64>() / series.len() as f64;
            (t, v)
        })
        .collect();
    Some(mean)
}

/// Linear interpolation of a time-sorted series at `t` (exact hits return
/// the sample; `t` is expected to be within the series' time range).
fn interpolate_at(series: &[(f64, f64)], t: f64) -> f64 {
    match series.binary_search_by(|&(st, _)| st.partial_cmp(&t).expect("finite sample times")) {
        Ok(i) => series[i].1,
        Err(i) => {
            if i == 0 {
                series[0].1
            } else if i >= series.len() {
                series[series.len() - 1].1
            } else {
                let (t0, v0) = series[i - 1];
                let (t1, v1) = series[i];
                let span = t1 - t0;
                if span <= 0.0 {
                    v0
                } else {
                    v0 + (v1 - v0) * (t - t0) / span
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn delivery_ratio_counts_expected_pairs_once() {
        let mut s = StatsCollector::new();
        s.record_created(MessageId(1), Priority::High, [NodeId(1), NodeId(2)]);
        assert!(s.record_delivered(MessageId(1), NodeId(1), t(0.0), t(10.0)));
        assert!(
            !s.record_delivered(MessageId(1), NodeId(1), t(0.0), t(20.0)),
            "duplicate"
        );
        let sum = s.summarize();
        assert_eq!(sum.expected_pairs, 2);
        assert_eq!(sum.delivered_pairs, 1);
        assert_eq!(sum.delivery_ratio, 0.5);
        assert_eq!(sum.mean_latency_secs, 10.0);
        assert_eq!(sum.messages_with_delivery, 1);
    }

    #[test]
    fn unexpected_deliveries_counted_separately() {
        let mut s = StatsCollector::new();
        s.record_created(MessageId(1), Priority::Low, [NodeId(1)]);
        s.record_delivered(MessageId(1), NodeId(9), t(0.0), t(5.0));
        let sum = s.summarize();
        assert_eq!(sum.delivered_pairs, 0);
        assert_eq!(sum.bonus_deliveries, 1);
        assert_eq!(sum.delivery_ratio, 0.0);
        assert_eq!(
            sum.mean_latency_secs, 0.0,
            "bonus deliveries excluded from latency"
        );
    }

    #[test]
    fn per_priority_ratios() {
        let mut s = StatsCollector::new();
        s.record_created(MessageId(1), Priority::High, [NodeId(1), NodeId(2)]);
        s.record_created(MessageId(2), Priority::Low, [NodeId(3)]);
        s.record_delivered(MessageId(1), NodeId(1), t(0.0), t(1.0));
        s.record_delivered(MessageId(1), NodeId(2), t(0.0), t(2.0));
        let sum = s.summarize();
        assert_eq!(sum.delivery_ratio_by_priority[&1], 1.0);
        assert_eq!(sum.delivery_ratio_by_priority[&3], 0.0);
    }

    #[test]
    fn traffic_counters() {
        let mut s = StatsCollector::new();
        s.record_relay(1000);
        s.record_relay(500);
        s.record_abort();
        s.record_retry();
        s.record_retry();
        s.record_resume();
        s.record_abandon();
        s.record_evictions(3);
        s.record_expiries(2);
        let sum = s.summarize();
        assert_eq!(sum.relays_completed, 2);
        assert_eq!(sum.relay_bytes, 1500);
        assert_eq!(sum.transfers_aborted, 1);
        assert_eq!(sum.transfers_retried, 2);
        assert_eq!(sum.transfers_resumed, 1);
        assert_eq!(sum.transfers_abandoned, 1);
        assert_eq!(sum.buffer_evictions, 3);
        assert_eq!(sum.ttl_expiries, 2);
    }

    #[test]
    fn zero_expected_pairs_yields_zero_ratio() {
        let s = StatsCollector::new();
        assert_eq!(s.summarize().delivery_ratio, 0.0);
    }

    #[test]
    fn mean_latency_weights_by_delivery_count() {
        // Run a: one delivery at 10 s. Run b: three deliveries at 2 s each.
        let mut a = StatsCollector::new();
        a.record_created(MessageId(1), Priority::High, [NodeId(1)]);
        a.record_delivered(MessageId(1), NodeId(1), t(0.0), t(10.0));
        let mut b = StatsCollector::new();
        b.record_created(
            MessageId(1),
            Priority::High,
            [NodeId(1), NodeId(2), NodeId(3)],
        );
        for node in [NodeId(1), NodeId(2), NodeId(3)] {
            b.record_delivered(MessageId(1), node, t(0.0), t(2.0));
        }
        let sa = a.summarize();
        let sb = b.summarize();
        assert_eq!(sa.latency_count, 1);
        assert_eq!(sb.latency_count, 3);
        let avg = RunSummary::mean_of(&[sa, sb]);
        // Weighted: (10·1 + 2·3) / 4 = 4.0 — not the unweighted (10+2)/2.
        assert_eq!(avg.mean_latency_secs, 4.0);
        assert_eq!(avg.latency_count, 4);
    }

    #[test]
    fn delivery_free_runs_carry_no_latency_weight() {
        let mut a = StatsCollector::new();
        a.record_created(MessageId(1), Priority::High, [NodeId(1)]);
        a.record_delivered(MessageId(1), NodeId(1), t(0.0), t(8.0));
        let mut b = StatsCollector::new();
        b.record_created(MessageId(1), Priority::High, [NodeId(1)]);
        // b delivers nothing: its 0.0 "latency" must not drag the mean.
        let avg = RunSummary::mean_of(&[a.summarize(), b.summarize()]);
        assert_eq!(avg.mean_latency_secs, 8.0);
        // All runs delivery-free → mean stays the 0.0 convention.
        let mut c = StatsCollector::new();
        c.record_created(MessageId(1), Priority::Low, [NodeId(1)]);
        let empty = RunSummary::mean_of(&[c.summarize()]);
        assert_eq!(empty.mean_latency_secs, 0.0);
        assert_eq!(empty.latency_count, 0);
    }

    #[test]
    fn absent_priority_levels_are_excluded_not_zeroed() {
        // Run a created only High traffic (fully delivered); run b created
        // only Low traffic. Neither run's missing level may count as 0.0.
        let mut a = StatsCollector::new();
        a.record_created(MessageId(1), Priority::High, [NodeId(1)]);
        a.record_delivered(MessageId(1), NodeId(1), t(0.0), t(1.0));
        let mut b = StatsCollector::new();
        b.record_created(MessageId(2), Priority::Low, [NodeId(2)]);
        let avg = RunSummary::mean_of(&[a.summarize(), b.summarize()]);
        assert_eq!(
            avg.delivery_ratio_by_priority[&Priority::High.level()],
            1.0,
            "only run a created High traffic, so its ratio stands alone"
        );
        assert_eq!(avg.delivery_ratio_by_priority[&Priority::Low.level()], 0.0);
    }

    #[test]
    fn misaligned_series_resample_onto_common_grid() {
        // a samples v=t at t ∈ {0, 60, 120}; b samples v=t at t ∈ {0, 30, 60}.
        let mut a = StatsCollector::new();
        let mut b = StatsCollector::new();
        for secs in [0.0, 60.0, 120.0] {
            a.push_sample("load", t(secs), secs);
        }
        for secs in [0.0, 30.0, 60.0] {
            b.push_sample("load", t(secs), secs);
        }
        let avg = RunSummary::mean_of(&[a.summarize(), b.summarize()]);
        // Common range [0, 60], union grid {0, 30, 60}; both series are the
        // identity there, so the mean is the identity too — crucially with
        // *both* runs contributing, not just the first.
        assert_eq!(
            avg.series["load"],
            vec![(0.0, 0.0), (30.0, 30.0), (60.0, 60.0)]
        );
    }

    #[test]
    fn disjoint_series_are_tagged_not_passed_off_as_means() {
        let mut a = StatsCollector::new();
        a.push_sample("rating", t(0.0), 1.0);
        a.push_sample("rating", t(10.0), 2.0);
        let mut b = StatsCollector::new();
        b.push_sample("rating", t(100.0), 9.0);
        b.push_sample("rating", t(110.0), 9.5);
        let avg = RunSummary::mean_of(&[a.summarize(), b.summarize()]);
        assert!(
            !avg.series.contains_key("rating"),
            "no honest mean exists for disjoint time ranges"
        );
        assert_eq!(
            avg.series["rating:seed0"],
            vec![(0.0, 1.0), (10.0, 2.0)],
            "first seed's data survives, clearly labelled as n=1"
        );
    }

    #[test]
    fn interpolation_is_linear_between_samples() {
        let s = vec![(0.0, 0.0), (10.0, 100.0)];
        assert_eq!(super::interpolate_at(&s, 0.0), 0.0);
        assert_eq!(super::interpolate_at(&s, 2.5), 25.0);
        assert_eq!(super::interpolate_at(&s, 10.0), 100.0);
    }

    #[test]
    fn mean_of_averages_fields_and_aligned_series() {
        let mut a = StatsCollector::new();
        a.record_created(MessageId(1), Priority::High, [NodeId(1)]);
        a.record_delivered(MessageId(1), NodeId(1), t(0.0), t(4.0));
        a.push_sample("rating", t(60.0), 4.0);
        let mut b = StatsCollector::new();
        b.record_created(MessageId(1), Priority::High, [NodeId(1)]);
        b.push_sample("rating", t(60.0), 2.0);
        let avg = RunSummary::mean_of(&[a.summarize(), b.summarize()]);
        assert_eq!(avg.delivery_ratio, 0.5);
        assert_eq!(avg.series["rating"], vec![(60.0, 3.0)]);
    }
}
