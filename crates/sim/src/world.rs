//! Node identity and spatial indexing.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::geometry::{Area, Point};

/// A node identifier, dense from `0..n` within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Normalizes an unordered node pair to `(smaller, larger)` — the key
/// shape used for contact-indexed maps throughout the workspace.
#[must_use]
pub fn ordered_pair(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// A uniform spatial hash grid for range queries over node positions.
///
/// Cell size equals the radio range, so all neighbours within range of a
/// point lie in its 3×3 cell neighbourhood. Rebuilt each simulation step
/// (positions change every step anyway), which is cheap: one pass over all
/// nodes.
#[derive(Debug)]
pub struct SpatialGrid {
    cell: f64,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<NodeId>>,
}

impl SpatialGrid {
    /// Creates a grid covering `area` with cells of `cell_size` meters.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive.
    #[must_use]
    pub fn new(area: Area, cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        let cols = (area.width / cell_size).ceil().max(1.0) as usize;
        let rows = (area.height / cell_size).ceil().max(1.0) as usize;
        SpatialGrid {
            cell: cell_size,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
        }
    }

    fn cell_of(&self, p: Point) -> (usize, usize) {
        let cx = ((p.x / self.cell) as usize).min(self.cols - 1);
        let cy = ((p.y / self.cell) as usize).min(self.rows - 1);
        (cx, cy)
    }

    /// Clears and re-inserts all nodes.
    pub fn rebuild(&mut self, positions: &[Point]) {
        for c in &mut self.cells {
            c.clear();
        }
        for (i, &p) in positions.iter().enumerate() {
            let (cx, cy) = self.cell_of(p);
            self.cells[cy * self.cols + cx].push(NodeId(i as u32));
        }
    }

    /// Number of cell rows in the grid — the sharding axis for
    /// [`Self::for_each_pair_in_rows`].
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Visits every unordered pair of nodes whose distance is at most
    /// `range`. Each pair is visited exactly once, with `a < b`.
    pub fn for_each_pair_within(
        &self,
        positions: &[Point],
        range: f64,
        visit: impl FnMut(NodeId, NodeId),
    ) {
        self.for_each_pair_in_rows(positions, range, 0, self.rows, visit);
    }

    /// Visits every unordered pair whose *home* cell (the "here" cell of the
    /// forward-neighbour sweep) lies in rows `[row_start, row_end)`. A stripe
    /// only reads into row `row_end` (the forward neighbours SW/S/SE), never
    /// writes, so disjoint stripes can be enumerated concurrently; visiting
    /// all stripes in ascending row order reproduces
    /// [`Self::for_each_pair_within`] exactly, pair for pair.
    pub fn for_each_pair_in_rows(
        &self,
        positions: &[Point],
        range: f64,
        row_start: usize,
        row_end: usize,
        mut visit: impl FnMut(NodeId, NodeId),
    ) {
        let range_sq = range * range;
        for cy in row_start..row_end.min(self.rows) {
            for cx in 0..self.cols {
                let here = &self.cells[cy * self.cols + cx];
                if here.is_empty() {
                    continue;
                }
                // Pairs within this cell.
                for i in 0..here.len() {
                    for j in i + 1..here.len() {
                        let (a, b) = ordered_pair(here[i], here[j]);
                        if positions[a.index()].distance_sq_to(positions[b.index()]) <= range_sq {
                            visit(a, b);
                        }
                    }
                }
                // Pairs with forward neighbour cells (E, SW, S, SE) so each
                // cell pair is scanned once.
                for (dx, dy) in [(1i64, 0i64), (-1, 1), (0, 1), (1, 1)] {
                    let nx = cx as i64 + dx;
                    let ny = cy as i64 + dy;
                    if nx < 0 || ny < 0 || nx >= self.cols as i64 || ny >= self.rows as i64 {
                        continue;
                    }
                    let there = &self.cells[ny as usize * self.cols + nx as usize];
                    for &u in here {
                        for &v in there {
                            let (a, b) = ordered_pair(u, v);
                            if positions[a.index()].distance_sq_to(positions[b.index()]) <= range_sq
                            {
                                visit(a, b);
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// Brute-force reference for pair enumeration.
    fn brute(positions: &[Point], range: f64) -> BTreeSet<(u32, u32)> {
        let mut out = BTreeSet::new();
        for i in 0..positions.len() {
            for j in i + 1..positions.len() {
                if positions[i].distance_to(positions[j]) <= range {
                    out.insert((i as u32, j as u32));
                }
            }
        }
        out
    }

    fn grid_pairs(positions: &[Point], area: Area, range: f64) -> BTreeSet<(u32, u32)> {
        let mut grid = SpatialGrid::new(area, range);
        grid.rebuild(positions);
        let mut out = BTreeSet::new();
        grid.for_each_pair_within(positions, range, |a, b| {
            assert!(a < b, "pairs must be ordered");
            assert!(out.insert((a.0, b.0)), "pair visited twice: {a} {b}");
        });
        out
    }

    #[test]
    fn matches_brute_force_on_random_layouts() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        let area = Area::new(1000.0, 800.0);
        for _ in 0..20 {
            let n = rng.gen_range(2..60);
            let positions: Vec<Point> = (0..n)
                .map(|_| {
                    Point::new(
                        rng.gen_range(0.0..area.width),
                        rng.gen_range(0.0..area.height),
                    )
                })
                .collect();
            let range = rng.gen_range(20.0..300.0);
            assert_eq!(
                grid_pairs(&positions, area, range),
                brute(&positions, range)
            );
        }
    }

    #[test]
    fn nodes_on_boundary_are_indexed() {
        let area = Area::new(100.0, 100.0);
        let positions = vec![Point::new(100.0, 100.0), Point::new(99.0, 99.0)];
        assert_eq!(grid_pairs(&positions, area, 5.0).len(), 1);
    }

    #[test]
    fn empty_world_yields_no_pairs() {
        let area = Area::new(10.0, 10.0);
        assert!(grid_pairs(&[], area, 5.0).is_empty());
        assert!(grid_pairs(&[Point::ORIGIN], area, 5.0).is_empty());
    }

    #[test]
    fn striped_enumeration_matches_full_sweep_in_order() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(77);
        let area = Area::new(900.0, 700.0);
        for _ in 0..10 {
            let n = rng.gen_range(2..80);
            let positions: Vec<Point> = (0..n)
                .map(|_| {
                    Point::new(
                        rng.gen_range(0.0..area.width),
                        rng.gen_range(0.0..area.height),
                    )
                })
                .collect();
            let range = rng.gen_range(20.0..250.0);
            let mut grid = SpatialGrid::new(area, range);
            grid.rebuild(&positions);

            let mut full = Vec::new();
            grid.for_each_pair_within(&positions, range, |a, b| full.push((a, b)));

            // Any stripe partition, concatenated in ascending row order,
            // must reproduce the full sweep pair-for-pair.
            for stripes in [1usize, 2, 3, 7, grid.row_count().max(1)] {
                let rows = grid.row_count();
                let per = rows.div_ceil(stripes);
                let mut merged = Vec::new();
                let mut start = 0;
                while start < rows {
                    let end = (start + per).min(rows);
                    grid.for_each_pair_in_rows(&positions, range, start, end, |a, b| {
                        merged.push((a, b));
                    });
                    start = end;
                }
                assert_eq!(merged, full, "stripes={stripes}");
            }
        }
    }

    #[test]
    fn range_larger_than_area_connects_everyone() {
        let area = Area::new(50.0, 50.0);
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(50.0, 0.0),
            Point::new(0.0, 50.0),
            Point::new(50.0, 50.0),
        ];
        assert_eq!(grid_pairs(&positions, area, 1000.0).len(), 6);
    }
}
