//! Contact (link) tracking.
//!
//! A *contact* exists between two nodes while they are within radio range of
//! each other. The kernel recomputes in-range pairs every step and diffs
//! against the active set, producing up/down events for the protocol layer.

use crate::fxhash::{FxHashMap, FxHashSet};

use serde::{Deserialize, Serialize};

use crate::time::SimTime;
use crate::world::{ordered_pair, NodeId};

/// An unordered node pair, stored with the smaller id first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContactKey(pub NodeId, pub NodeId);

impl ContactKey {
    /// Creates a key, normalizing the order.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (a node cannot contact itself).
    #[must_use]
    pub fn new(a: NodeId, b: NodeId) -> Self {
        assert!(a != b, "self-contact is not a contact");
        let (lo, hi) = ordered_pair(a, b);
        ContactKey(lo, hi)
    }

    /// The peer of `node` in this contact.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint.
    #[must_use]
    pub fn peer_of(self, node: NodeId) -> NodeId {
        if self.0 == node {
            self.1
        } else if self.1 == node {
            self.0
        } else {
            panic!("{node} is not part of contact {self:?}")
        }
    }
}

/// A change in link state produced by one step's diff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ContactEvent {
    /// The pair came into range.
    Up(ContactKey),
    /// The pair left range; carries the contact duration start time.
    Down(ContactKey, SimTime),
}

/// The set of currently-active contacts.
#[derive(Debug, Default)]
pub struct ContactTable {
    active: FxHashMap<ContactKey, SimTime>,
    /// Per-node sorted neighbour lists, maintained incrementally by
    /// [`Self::diff`] so [`Self::peers_of`] is O(degree) instead of a scan
    /// over every active contact (the protocol layer calls it per node per
    /// exchange, which made the scan quadratic in dense worlds).
    adjacency: FxHashMap<NodeId, Vec<NodeId>>,
    /// Scratch reused across [`Self::diff`] calls to avoid rebuilding a
    /// `HashSet` allocation every step.
    scratch_in_range: FxHashSet<ContactKey>,
    scratch_downs: Vec<ContactKey>,
    total_contacts: u64,
}

fn adj_insert(adjacency: &mut FxHashMap<NodeId, Vec<NodeId>>, node: NodeId, peer: NodeId) {
    let peers = adjacency.entry(node).or_default();
    if let Err(pos) = peers.binary_search(&peer) {
        peers.insert(pos, peer);
    }
}

fn adj_remove(adjacency: &mut FxHashMap<NodeId, Vec<NodeId>>, node: NodeId, peer: NodeId) {
    if let Some(peers) = adjacency.get_mut(&node) {
        if let Ok(pos) = peers.binary_search(&peer) {
            peers.remove(pos);
        }
        if peers.is_empty() {
            adjacency.remove(&node);
        }
    }
}

impl ContactTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `a` and `b` are currently in contact.
    #[must_use]
    pub fn is_up(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.active.contains_key(&ContactKey::new(a, b))
    }

    /// When the contact between `a` and `b` came up, if active.
    #[must_use]
    pub fn up_since(&self, a: NodeId, b: NodeId) -> Option<SimTime> {
        if a == b {
            return None;
        }
        self.active.get(&ContactKey::new(a, b)).copied()
    }

    /// All peers currently in contact with `node`, sorted.
    ///
    /// Allocates a fresh `Vec`; hot paths should borrow via
    /// [`ContactTable::peers_of_slice`] instead.
    #[must_use]
    pub fn peers_of(&self, node: NodeId) -> Vec<NodeId> {
        self.peers_of_slice(node).to_vec()
    }

    /// All peers currently in contact with `node`, sorted, borrowed from
    /// the adjacency index — no allocation. Every router consults the
    /// neighbour list on every route decision, so the per-call `Vec` of
    /// [`ContactTable::peers_of`] showed up in whole-run profiles.
    #[must_use]
    pub fn peers_of_slice(&self, node: NodeId) -> &[NodeId] {
        self.adjacency.get(&node).map_or(&[], Vec::as_slice)
    }

    /// Audit: checks the incremental adjacency lists against a fresh scan of
    /// the active contact set, returning a description of the first mismatch.
    /// Used by tests and the invariant checker; not on the hot path.
    pub fn audit_adjacency(&self) -> Result<(), String> {
        let mut reference: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
        for k in self.active.keys() {
            adj_insert(&mut reference, k.0, k.1);
            adj_insert(&mut reference, k.1, k.0);
        }
        if reference == self.adjacency {
            Ok(())
        } else {
            Err(format!(
                "adjacency drifted from active set: {} nodes indexed, {} expected",
                self.adjacency.len(),
                reference.len()
            ))
        }
    }

    /// Number of currently-active contacts.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Total contacts ever established.
    #[must_use]
    pub fn total_contacts(&self) -> u64 {
        self.total_contacts
    }

    /// Diffs the active set against `now_in_range` (the pairs within range
    /// this step), returning up/down events sorted deterministically.
    ///
    /// `now_in_range` must contain normalized keys (smaller id first), which
    /// [`crate::world::SpatialGrid::for_each_pair_within`] guarantees.
    pub fn diff(&mut self, now_in_range: &[ContactKey], now: SimTime) -> Vec<ContactEvent> {
        let mut events = Vec::new();
        // Downs: active contacts no longer in range. Indexed lookup — a
        // linear Vec::contains here makes the per-step diff quadratic in
        // the contact count, which dominates dense 500-node runs. The set
        // and the downs list are scratch buffers reused across steps so the
        // steady-state diff allocates nothing.
        self.scratch_in_range.clear();
        self.scratch_in_range.extend(now_in_range.iter().copied());
        self.scratch_downs.clear();
        for k in self.active.keys() {
            if !self.scratch_in_range.contains(k) {
                self.scratch_downs.push(*k);
            }
        }
        self.scratch_downs.sort_unstable();
        for i in 0..self.scratch_downs.len() {
            let k = self.scratch_downs[i];
            let since = self
                .active
                .remove(&k)
                .expect("a pair collected from `active` stays present until removed here");
            adj_remove(&mut self.adjacency, k.0, k.1);
            adj_remove(&mut self.adjacency, k.1, k.0);
            events.push(ContactEvent::Down(k, since));
        }
        // Ups: in-range pairs not yet active.
        for &k in now_in_range {
            if let std::collections::hash_map::Entry::Vacant(e) = self.active.entry(k) {
                e.insert(now);
                adj_insert(&mut self.adjacency, k.0, k.1);
                adj_insert(&mut self.adjacency, k.1, k.0);
                self.total_contacts += 1;
                events.push(ContactEvent::Up(k));
            }
        }
        events
    }

    /// Captures the table's dynamic state for a snapshot: the active
    /// contacts as sorted `(a, b, up_since)` triples plus the lifetime
    /// contact counter. The adjacency index is derived and rebuilt on
    /// restore.
    #[must_use]
    pub fn export_state(&self) -> ContactTableState {
        let mut active: Vec<(NodeId, NodeId, SimTime)> = self
            .active
            .iter()
            .map(|(k, &since)| (k.0, k.1, since))
            .collect();
        active.sort_by_key(|&(a, b, _)| (a, b));
        ContactTableState {
            active,
            total_contacts: self.total_contacts,
        }
    }

    /// Overwrites the table from a snapshot, rebuilding the adjacency
    /// index from the restored active set.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry (a self-contact
    /// or an unnormalized pair).
    pub fn import_state(&mut self, state: &ContactTableState) -> Result<(), String> {
        let mut active =
            FxHashMap::with_capacity_and_hasher(state.active.len(), Default::default());
        let mut adjacency: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
        for &(a, b, since) in &state.active {
            if a >= b {
                return Err(format!(
                    "snapshot contact ({a}, {b}) is not a normalized pair (need a < b)"
                ));
            }
            active.insert(ContactKey(a, b), since);
            adj_insert(&mut adjacency, a, b);
            adj_insert(&mut adjacency, b, a);
        }
        self.active = active;
        self.adjacency = adjacency;
        self.total_contacts = state.total_contacts;
        Ok(())
    }
}

/// The dynamic state of a [`ContactTable`], for snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContactTableState {
    /// Active contacts as `(smaller, larger, up_since)` triples, sorted.
    pub active: Vec<(NodeId, NodeId, SimTime)>,
    /// Total contacts ever established.
    pub total_contacts: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(a: u32, b: u32) -> ContactKey {
        ContactKey::new(NodeId(a), NodeId(b))
    }

    #[test]
    fn key_normalizes_order() {
        assert_eq!(k(2, 1), k(1, 2));
        assert_eq!(k(1, 2).peer_of(NodeId(1)), NodeId(2));
        assert_eq!(k(1, 2).peer_of(NodeId(2)), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "self-contact")]
    fn self_contact_rejected() {
        let _ = k(3, 3);
    }

    #[test]
    fn diff_produces_ups_then_downs() {
        let mut t = ContactTable::new();
        let t0 = SimTime::from_secs(10.0);
        let ev = t.diff(&[k(0, 1), k(1, 2)], t0);
        assert_eq!(
            ev,
            vec![ContactEvent::Up(k(0, 1)), ContactEvent::Up(k(1, 2))]
        );
        assert!(t.is_up(NodeId(0), NodeId(1)));
        assert_eq!(t.up_since(NodeId(1), NodeId(2)), Some(t0));
        assert_eq!(t.active_count(), 2);

        let t1 = SimTime::from_secs(20.0);
        let ev = t.diff(&[k(1, 2), k(2, 3)], t1);
        assert_eq!(
            ev,
            vec![ContactEvent::Down(k(0, 1), t0), ContactEvent::Up(k(2, 3))]
        );
        assert!(!t.is_up(NodeId(0), NodeId(1)));
        assert_eq!(t.total_contacts(), 3);
    }

    #[test]
    fn peers_of_lists_sorted_neighbours() {
        let mut t = ContactTable::new();
        t.diff(&[k(5, 1), k(1, 3), k(2, 3)], SimTime::ZERO);
        assert_eq!(t.peers_of(NodeId(1)), vec![NodeId(3), NodeId(5)]);
        assert_eq!(t.peers_of(NodeId(4)), Vec::<NodeId>::new());
    }

    #[test]
    fn adjacency_tracks_ups_and_downs() {
        let mut t = ContactTable::new();
        t.diff(&[k(0, 1), k(0, 2), k(1, 2)], SimTime::ZERO);
        assert_eq!(t.peers_of(NodeId(0)), vec![NodeId(1), NodeId(2)]);
        t.audit_adjacency().unwrap();

        // Drop 0-1, keep the rest; 0 and 1 each lose exactly one peer.
        t.diff(&[k(0, 2), k(1, 2)], SimTime::from_secs(5.0));
        assert_eq!(t.peers_of(NodeId(0)), vec![NodeId(2)]);
        assert_eq!(t.peers_of(NodeId(1)), vec![NodeId(2)]);
        assert_eq!(t.peers_of(NodeId(2)), vec![NodeId(0), NodeId(1)]);
        t.audit_adjacency().unwrap();

        // Everything down: adjacency empties out.
        t.diff(&[], SimTime::from_secs(6.0));
        assert_eq!(t.peers_of(NodeId(2)), Vec::<NodeId>::new());
        t.audit_adjacency().unwrap();
    }

    #[test]
    fn adjacency_matches_scan_on_random_churn() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        let mut t = ContactTable::new();
        for step in 0..200u64 {
            let mut in_range: Vec<ContactKey> = (0..rng.gen_range(0..20))
                .map(|_| {
                    let a = rng.gen_range(0..10u32);
                    let mut b = rng.gen_range(0..10u32);
                    if b == a {
                        b = (b + 1) % 10;
                    }
                    k(a, b)
                })
                .collect();
            in_range.sort_unstable();
            in_range.dedup();
            t.diff(&in_range, SimTime::from_secs(step as f64));
            t.audit_adjacency().unwrap();
            for n in 0..10u32 {
                let node = NodeId(n);
                let mut scan: Vec<NodeId> = t
                    .peers_of(node)
                    .iter()
                    .copied()
                    .filter(|&p| t.is_up(node, p))
                    .collect();
                scan.sort_unstable();
                assert_eq!(t.peers_of(node), scan);
            }
        }
    }

    #[test]
    fn stable_contact_produces_no_events() {
        let mut t = ContactTable::new();
        t.diff(&[k(0, 1)], SimTime::ZERO);
        let ev = t.diff(&[k(0, 1)], SimTime::from_secs(1.0));
        assert!(ev.is_empty());
        assert_eq!(t.up_since(NodeId(0), NodeId(1)), Some(SimTime::ZERO));
    }
}
