//! # dtn-sim
//!
//! A discrete-time delay-tolerant-network (DTN) simulator: the substrate for
//! reproducing *"Reputation and Credit Based Incentive Mechanism for
//! Data-Centric Message Delivery in Delay Tolerant Networks"* (Jethawa &
//! Madria, ICDCS 2017 / MDM 2018). The paper evaluates on the ONE simulator;
//! this crate provides the equivalent machinery in Rust:
//!
//! * a time-stepped [`kernel::Simulation`] (move → contacts → transfers →
//!   TTL → protocol tick), deterministic under a scenario seed;
//! * [`mobility`] models, including the Random Waypoint model used by every
//!   experiment in the paper;
//! * a range-based [`radio`] model with the Friis path-loss equation that
//!   the incentive mechanism's hardware factor is built on;
//! * bandwidth-limited [`transfer`]s over tracked [`contact`]s;
//! * byte-bounded node [`buffer`]s with configurable drop policy;
//! * per-node [`energy`] accounting;
//! * [`stats`] capturing the paper's metrics (delivery ratio, traffic,
//!   per-priority delivery, named time series).
//!
//! Routing and incentive logic live in downstream crates (`dtn-routing`,
//! `dtn-incentive`, `dtn-reputation`, `dtn-core`) and plug in through the
//! [`protocol::Protocol`] trait.
//!
//! ## Example
//!
//! ```
//! use dtn_sim::prelude::*;
//!
//! // Two pedestrians in a 1 km² field; no routing logic (NullProtocol).
//! let mut sim = SimulationBuilder::new(Area::square_km(1.0), 42)
//!     .nodes(2, || Box::new(RandomWaypoint::pedestrian()))
//!     .build(NullProtocol);
//! let summary = sim.run_until(SimTime::from_secs(600.0));
//! assert_eq!(summary.created, 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod buffer;
pub mod contact;
pub mod energy;
pub mod events;
pub mod faults;
pub mod fxhash;
pub mod geometry;
pub mod invariants;
pub mod kernel;
pub mod message;
pub mod metrics;
pub mod mobility;
pub mod mobility_map;
pub mod protocol;
pub mod radio;
pub mod rng;
pub mod snapshot;
pub mod stats;
pub mod time;
pub mod trace;
pub mod transfer;
pub mod world;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::buffer::{Buffer, DropPolicy, InsertOutcome, RejectReason};
    pub use crate::energy::EnergyUse;
    pub use crate::events::{ContactEngine, EventQueue, KernelMode};
    pub use crate::faults::{FaultPlan, FaultStats};
    pub use crate::geometry::{Area, Point};
    pub use crate::invariants::InvariantChecker;
    pub use crate::kernel::{ScheduledMessage, SimApi, Simulation, SimulationBuilder, WorldState};
    pub use crate::message::{
        Annotation, Keyword, MessageBody, MessageCopy, MessageId, Priority, Quality,
    };
    pub use crate::metrics::{
        Histogram, KernelCounters, MetricsRegistry, Phase, PhaseProfiler, PhaseTiming,
    };
    pub use crate::mobility::{
        MobilityModel, RandomWalk, RandomWaypoint, RandomWaypointFleet, ScriptedWaypoints,
        Stationary,
    };
    pub use crate::mobility_map::ManhattanGrid;
    pub use crate::protocol::{NullProtocol, Protocol, Reception};
    pub use crate::radio::RadioConfig;
    pub use crate::rng::{RngState, SimRng};
    pub use crate::snapshot::SnapshotError;
    pub use crate::stats::{RunSummary, StatsCollector};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{TraceEntry, TraceEvent, TraceLog};
    pub use crate::transfer::{
        AbortReason, AbortedTransfer, Checkpoint, CompletedTransfer, RecoveryPolicy,
    };
    pub use crate::world::{ordered_pair, NodeId};
}
