//! Cross-cutting invariant checking.
//!
//! An [`InvariantChecker`] makes the kernel audit conservation properties
//! while a run is in flight — every step or at a configurable cadence —
//! instead of only asserting on final summaries. The kernel-owned checks
//! live in [`kernel_invariants`]; protocols add their own (token
//! conservation, rating bounds, …) via
//! [`crate::protocol::Protocol::check_invariants`]. On a breach the kernel
//! panics with a [`format_breach`] report carrying everything needed to
//! replay the run: the seed, the fault-plan spec, and a bounded excerpt of
//! the event trace.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::faults::FaultPlan;
use crate::kernel::SimApi;
use crate::time::SimTime;

/// How many trailing trace lines a breach report includes.
const TRACE_TAIL_LINES: usize = 20;

/// Decides on which steps the kernel runs its invariant audit.
#[derive(Debug, Clone)]
pub struct InvariantChecker {
    every_steps: u64,
    steps_since: u64,
    checks_run: u64,
}

impl InvariantChecker {
    /// Checks every `steps` kernel steps (1 = every step).
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    #[must_use]
    pub fn every(steps: u64) -> Self {
        assert!(steps > 0, "check cadence must be positive");
        InvariantChecker {
            every_steps: steps,
            steps_since: 0,
            checks_run: 0,
        }
    }

    /// How many audits have run so far.
    #[must_use]
    pub fn checks_run(&self) -> u64 {
        self.checks_run
    }

    /// Advances the cadence clock; `true` when this step should audit.
    pub(crate) fn due(&mut self) -> bool {
        self.steps_since += 1;
        if self.steps_since >= self.every_steps {
            self.steps_since = 0;
            self.checks_run += 1;
            true
        } else {
            false
        }
    }

    /// Captures the cadence clock for a snapshot; the cadence itself is
    /// rebuilt from the scenario on restore.
    #[must_use]
    pub fn export_state(&self) -> InvariantCheckerState {
        InvariantCheckerState {
            steps_since: self.steps_since,
            checks_run: self.checks_run,
        }
    }

    /// Overwrites the cadence clock from a snapshot.
    pub fn import_state(&mut self, state: &InvariantCheckerState) {
        self.steps_since = state.steps_since;
        self.checks_run = state.checks_run;
    }
}

/// The dynamic state of an [`InvariantChecker`] — the cadence clock,
/// without the configured cadence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvariantCheckerState {
    /// Steps elapsed since the last audit.
    pub steps_since: u64,
    /// Audits run so far.
    pub checks_run: u64,
}

/// The kernel-owned invariant audit. Returns one human-readable line per
/// violation (empty = healthy).
///
/// Checked per node: buffer occupancy never exceeds capacity and matches
/// the sum of buffered copy sizes; the copy count reconciles with the
/// buffer's lifetime insert/remove counters; every buffered copy has a
/// registered message body; energy use is finite and non-negative; battery
/// remaining stays within `[0, budget]`; the position lies inside the world
/// area. Checked globally: transfer-engine byte conservation (every
/// in-flight offset and recovery checkpoint within `[0, bytes_total]`),
/// plus the incremental indexes — contact adjacency lists vs the active
/// contact set, and the batched transfer stepper's active-sender index
/// vs the queues it summarises.
#[must_use]
pub fn kernel_invariants(api: &SimApi) -> Vec<String> {
    let mut violations = api.transfer_byte_audit();
    violations.extend(api.index_audit());
    let budget = api.battery_budget();
    for node in api.node_ids() {
        let buf = api.buffer(node);
        if buf.used_bytes() > buf.capacity_bytes() {
            violations.push(format!(
                "{node}: buffer over capacity ({} > {} bytes)",
                buf.used_bytes(),
                buf.capacity_bytes()
            ));
        }
        let recomputed: u64 = buf
            .iter()
            .map(crate::message::MessageCopy::size_bytes)
            .sum();
        if recomputed != buf.used_bytes() {
            violations.push(format!(
                "{node}: buffer byte accounting drifted (recomputed {recomputed}, tracked {})",
                buf.used_bytes()
            ));
        }
        match buf.lifetime_stored().checked_sub(buf.lifetime_removed()) {
            Some(live) if live == buf.len() as u64 => {}
            Some(live) => violations.push(format!(
                "{node}: copy accounting drifted (stored-removed={live}, buffered {})",
                buf.len()
            )),
            None => violations.push(format!(
                "{node}: removed more copies than were ever stored ({} > {})",
                buf.lifetime_removed(),
                buf.lifetime_stored()
            )),
        }
        for id in buf.ids_sorted() {
            if api.body(id).is_none() {
                violations.push(format!("{node}: buffered copy of {id} has no body"));
            }
        }
        let use_ = api.energy_usage(node);
        if !(use_.tx_joules.is_finite()
            && use_.rx_joules.is_finite()
            && use_.tx_joules >= 0.0
            && use_.rx_joules >= 0.0)
        {
            violations.push(format!(
                "{node}: energy use not finite/non-negative (tx {} J, rx {} J)",
                use_.tx_joules, use_.rx_joules
            ));
        }
        if let (Some(remaining), Some(budget)) = (api.battery_remaining(node), budget) {
            if !(remaining.is_finite() && (0.0..=budget).contains(&remaining)) {
                violations.push(format!(
                    "{node}: battery remaining {remaining} J outside [0, {budget}]"
                ));
            }
        }
        let p = api.position(node);
        if !api.area().contains(p) {
            violations.push(format!(
                "{node}: position ({}, {}) outside the world area",
                p.x, p.y
            ));
        }
    }
    violations
}

/// Formats an invariant-breach report: what broke, when, and the exact
/// `(seed, chaos spec)` pair plus trace excerpt needed to replay it.
#[must_use]
pub fn format_breach(
    seed: u64,
    plan: Option<&FaultPlan>,
    now: SimTime,
    violations: &[String],
    trace_rendered: &str,
) -> String {
    let mut report = format!(
        "invariant breach at {now} (seed {seed}, chaos: {})\n",
        plan.map_or_else(|| "none".to_string(), ToString::to_string)
    );
    for v in violations {
        let _ = writeln!(report, "  - {v}");
    }
    match plan {
        Some(p) => {
            let _ = writeln!(
                report,
                "replay: rerun the same scenario with --seed {seed} --chaos '{p}' --check-invariants"
            );
        }
        None => {
            let _ = writeln!(
                report,
                "replay: rerun the same scenario with --seed {seed} --check-invariants"
            );
        }
    }
    report.push_str("trace tail:\n");
    if trace_rendered.is_empty() {
        report.push_str("  (trace disabled; attach a TraceLog or pass --trace for an excerpt)\n");
    } else {
        let lines: Vec<&str> = trace_rendered.lines().collect();
        let skip = lines.len().saturating_sub(TRACE_TAIL_LINES);
        if skip > 0 {
            let _ = writeln!(report, "  … {skip} earlier events elided");
        }
        for line in &lines[skip..] {
            let _ = writeln!(report, "  {line}");
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_fires_every_n_steps() {
        let mut c = InvariantChecker::every(3);
        let fired: Vec<bool> = (0..7).map(|_| c.due()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, true, false]);
        assert_eq!(c.checks_run(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cadence_rejected() {
        let _ = InvariantChecker::every(0);
    }

    #[test]
    fn breach_report_names_seed_plan_and_tail() {
        let plan: FaultPlan = "crash=2".parse().unwrap();
        let trace = (0..30).fold(String::new(), |mut acc, i| {
            let _ = writeln!(acc, "00:00:{i:02} event-{i}");
            acc
        });
        let report = format_breach(
            42,
            Some(&plan),
            SimTime::from_secs(61.0),
            &["n3: buffer over capacity".to_string()],
            &trace,
        );
        assert!(report.contains("seed 42"));
        assert!(report.contains("crash=2"));
        assert!(report.contains("--chaos"));
        assert!(report.contains("n3: buffer over capacity"));
        assert!(report.contains("… 10 earlier events elided"));
        assert!(report.contains("event-29"), "tail keeps the latest events");
        assert!(!report.contains("event-09"), "early events are elided");
    }

    #[test]
    fn breach_report_handles_disabled_trace() {
        let report = format_breach(7, None, SimTime::ZERO, &["bad".to_string()], "");
        assert!(report.contains("chaos: none"));
        assert!(report.contains("trace disabled"));
        assert!(!report.contains("--chaos"));
    }
}
