//! The event-driven contact core.
//!
//! The time-stepped kernel pays a full world sweep every step: rebuild the
//! spatial grid from scratch, enumerate every 3×3 cell neighbourhood, and
//! distance-check every candidate pair — O(nodes + near pairs) work even
//! when nobody is near anybody. This module replaces that sweep with a
//! *predicted-crossing* scheduler that produces the exact same in-range
//! pair list every step (byte-identical traces and summaries, any thread
//! count) while doing work only where geometry says something can change:
//!
//! * **Cell-crossing events.** Each node belongs to one coarse grid cell
//!   (cell width = radio range, the same geometry as the sweep grid). The
//!   earliest step at which a node can leave its cell is bounded by its
//!   distance to the cell boundary over its speed cap, so the per-node
//!   "did I cross?" test is skipped entirely until that predicted step.
//!   A model that cannot bound its speed predicts "next step", which
//!   degrades to the exact per-step check, never to a wrong answer.
//! * **Pair-recheck events.** When two nodes share adjacent cells, the
//!   pair enters a watch set and is distance-checked at a conservatively
//!   predicted step: a pair at distance `d` closing at a combined speed
//!   cap `v` cannot come within range `r` for at least `(d − r) / v`
//!   seconds. Pairs near the range boundary graduate into a *hot* set
//!   that is checked every step, so in-range detection is exact.
//! * **Deterministic queue.** Predictions live in a binary heap keyed
//!   `(due step, pair id)`; stale entries (a pair re-predicted before its
//!   old event fired) are skipped by a generation check against the watch
//!   set. Every data structure is updated in deterministic order, so the
//!   engine's state — and therefore its cost — is a pure function of the
//!   scenario and seed.
//!
//! Invalidation rule: predictions are *never* trusted across a waypoint
//! change, because they never look at headings at all — only at the speed
//! cap, which no leg change can exceed. A teleporting or scripted node is
//! caught by the cell-crossing test the same step it moves, which resets
//! every affected pair prediction (see [`ContactEngine::collect`]).
//!
//! Region parallelism: watched pairs are sharded into `threads` regions
//! (stable pair → region assignment), each with its own heap, watch map,
//! and hot set. Regions step in parallel between per-step epoch barriers
//! and merge their in-range contributions in region order; the merged
//! list is sorted, so the output is independent of the region count and
//! the worker count. See DESIGN.md §15 for the full determinism argument.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::contact::ContactKey;
use crate::energy::EnergyMeter;
use crate::geometry::{Area, Point};
use crate::world::NodeId;

/// Which contact-detection core a simulation runs on.
///
/// Both modes produce byte-identical traces and summaries on every
/// scenario (the conformance suite asserts this); they differ only in
/// wall-clock cost. The time-stepped sweep remains available for one
/// release as the equivalence oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum KernelMode {
    /// The original per-step world sweep (grid rebuild + full pair scan).
    TimeStepped,
    /// The predicted-crossing event core (this module). The default.
    #[default]
    EventDriven,
}

impl std::fmt::Display for KernelMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            KernelMode::TimeStepped => "time-stepped",
            KernelMode::EventDriven => "event-driven",
        })
    }
}

impl std::str::FromStr for KernelMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "time-stepped" => Ok(KernelMode::TimeStepped),
            "event-driven" => Ok(KernelMode::EventDriven),
            other => Err(format!(
                "unknown kernel mode {other:?} (expected time-stepped or event-driven)"
            )),
        }
    }
}

/// A deterministic event queue: a binary heap keyed `(due step, id)`.
///
/// Pop order is a pure function of the pushed contents — ties on the due
/// step break on the id — so any schedule built through deterministic
/// pushes replays identically.
#[derive(Debug)]
pub struct EventQueue<T: Ord> {
    heap: BinaryHeap<Reverse<(u64, T)>>,
}

impl<T: Ord> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T: Ord> EventQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// Schedules `id` to fire at `due`.
    pub fn push(&mut self, due: u64, id: T) {
        self.heap.push(Reverse((due, id)));
    }

    /// Pops the earliest event if it is due at or before `step`.
    pub fn pop_due(&mut self, step: u64) -> Option<(u64, T)> {
        match self.heap.peek() {
            Some(Reverse((due, _))) if *due <= step => {
                let Reverse(entry) = self.heap.pop().expect("peeked entry");
                Some(entry)
            }
            _ => None,
        }
    }

    /// Number of scheduled (possibly stale) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    fn clear(&mut self) {
        self.heap.clear();
    }
}

/// A watched pair's scheduling state inside its region.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PairState {
    /// Within the hot band around the radio range: checked every step.
    Hot,
    /// Far enough out that the next check is predicted for this step.
    /// A popped event whose due step disagrees with this value is stale
    /// (the pair was re-predicted since) and is skipped.
    Due(u64),
}

/// One shard of the watch set: an independent event queue, watch map, and
/// hot list. A pair maps to exactly one region for its whole life
/// (stable id-based assignment), so regions never race: between epoch
/// barriers each region is touched by exactly one worker.
/// Pair-state map on the fast id hasher: only `get`/`insert`/`remove`
/// ever touch it (iteration order is never observed), so the hasher
/// choice cannot affect simulation output.
type PairMap = crate::fxhash::FxHashMap<ContactKey, PairState>;

#[derive(Debug, Default)]
struct Region {
    state: PairMap,
    queue: EventQueue<ContactKey>,
    hot: Vec<ContactKey>,
    /// In-range pairs found this step; merged in region order, then sorted.
    out: Vec<ContactKey>,
}

/// How many steps of combined-speed travel the hot band extends past the
/// radio range on entry. Pairs closer than this are checked every step.
const HOT_ENTER_STEPS: f64 = 2.0;
/// Hot-band exit threshold, in combined-speed steps past the range. Wider
/// than the entry threshold so boundary pairs do not flap between the hot
/// list and the queue.
const HOT_EXIT_STEPS: f64 = 6.0;
/// Cap on how far ahead a recheck may be predicted, in steps.
const MAX_PREDICT_STEPS: f64 = 1_000_000.0;

/// The predicted-crossing contact engine (see the module docs).
///
/// [`ContactEngine::collect`] produces, for any step, the exact sorted
/// list of in-range non-depleted pairs that the time-stepped sweep would
/// produce — the superset property of the watch set guarantees no pair is
/// missed, and the shared distance predicate guarantees no extras.
#[derive(Debug)]
pub struct ContactEngine {
    range: f64,
    dt_secs: f64,
    cell: f64,
    cols: usize,
    rows: usize,
    /// Coarse-cell occupancy, maintained incrementally on crossings.
    cells: Vec<Vec<NodeId>>,
    /// Each node's current flat cell index.
    node_cell: Vec<u32>,
    /// Each node's slot inside its cell's occupancy vector (O(1) removal).
    cell_slot: Vec<u32>,
    /// Earliest step at which each node could leave its cell.
    cross_check_at: Vec<u64>,
    /// Per-node speed cap, m/s (`f64::INFINITY` when the model has none).
    vmax: Vec<f64>,
    regions: Vec<Region>,
    /// Nodes that changed cell this step (scratch).
    crossed: Vec<NodeId>,
}

impl ContactEngine {
    /// Builds an engine over `area` with the given radio `range`, step
    /// length, and region count, watching the pairs implied by the
    /// initial `positions`. `vmax` carries each node's speed cap.
    ///
    /// # Panics
    ///
    /// Panics if `positions` and `vmax` disagree in length, or the range
    /// or step is non-positive.
    #[must_use]
    pub fn new(
        area: Area,
        range: f64,
        dt_secs: f64,
        regions: usize,
        positions: &[Point],
        vmax: Vec<f64>,
    ) -> Self {
        assert_eq!(positions.len(), vmax.len(), "one speed cap per node");
        assert!(range > 0.0, "radio range must be positive");
        assert!(dt_secs > 0.0, "step must be positive");
        // Same cell geometry as the sweep grid: cell width = radio range,
        // so two nodes in non-adjacent cells are strictly farther apart
        // than the range — the adjacency invariant the watch set rests on.
        let cell = range.max(1.0);
        let cols = ((area.width / cell).ceil() as usize).max(1);
        let rows = ((area.height / cell).ceil() as usize).max(1);
        let n = positions.len();
        let mut engine = ContactEngine {
            range,
            dt_secs,
            cell,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            node_cell: vec![0; n],
            cell_slot: vec![0; n],
            cross_check_at: vec![0; n],
            vmax,
            regions: (0..regions.max(1)).map(|_| Region::default()).collect(),
            crossed: Vec::new(),
        };
        engine.rebuild(positions, 0);
        engine
    }

    /// Discards all predictions and watch state and rebuilds them from
    /// `positions` as of `step`. Used after a snapshot restore: the watch
    /// set is derived state, and a rebuilt superset yields the same exact
    /// in-range list as the uninterrupted engine would.
    ///
    /// `positions` are the positions *before* the mobility phase of
    /// `step`: by the time `collect(step)` runs, every node has moved one
    /// further `dt`. Seeding therefore schedules every prediction one
    /// step early (`lag = 1`) so the extra movement cannot outrun a
    /// prediction made from the older geometry.
    pub fn rebuild(&mut self, positions: &[Point], step: u64) {
        for cell in &mut self.cells {
            cell.clear();
        }
        for region in &mut self.regions {
            region.state.clear();
            region.queue.clear();
            region.hot.clear();
            region.out.clear();
        }
        for (i, &p) in positions.iter().enumerate() {
            let c = self.cell_index(p);
            self.node_cell[i] = c as u32;
            self.cell_slot[i] = self.cells[c].len() as u32;
            self.cells[c].push(NodeId(i as u32));
            self.cross_check_at[i] = step
                .saturating_add(self.cross_steps(p, c, self.vmax[i]))
                .saturating_sub(1);
        }
        // Seed the watch set: every node "crossed into" its cell at once.
        for i in 0..positions.len() {
            self.watch_neighbourhood(NodeId(i as u32), step, positions, 1);
        }
    }

    /// Collects the exact sorted in-range pair list for `step` into
    /// `out`, applying the same depleted-radio filter as the sweep.
    /// `workers` bounds the OS threads used for the region phase; it is
    /// wall-clock-only and never affects the output.
    pub fn collect(
        &mut self,
        step: u64,
        positions: &[Point],
        energy: &EnergyMeter,
        workers: usize,
        out: &mut Vec<ContactKey>,
    ) {
        // Phase 1 (serial): fire due cell-crossing checks. Moving a node
        // between cells is deterministic bookkeeping; collecting all moves
        // before generating candidates keeps adjacency consistent when
        // both endpoints of a pair cross in the same step.
        self.crossed.clear();
        for (i, &p) in positions.iter().enumerate() {
            if self.cross_check_at[i] > step {
                continue;
            }
            let c = self.cell_index(p);
            let old = self.node_cell[i] as usize;
            if c != old {
                let node = NodeId(i as u32);
                let slot = self.cell_slot[i] as usize;
                self.cells[old].swap_remove(slot);
                if let Some(&moved) = self.cells[old].get(slot) {
                    self.cell_slot[moved.index()] = slot as u32;
                }
                self.node_cell[i] = c as u32;
                self.cell_slot[i] = self.cells[c].len() as u32;
                self.cells[c].push(node);
                self.crossed.push(node);
            }
            self.cross_check_at[i] = step.saturating_add(self.cross_steps(p, c, self.vmax[i]));
        }
        // Phase 2 (serial): every crossed node re-pairs against its new
        // 3×3 neighbourhood. Already-hot pairs are left alone; scheduled
        // or unwatched pairs are re-predicted from scratch — this is the
        // invalidation rule that makes teleports and leg changes safe.
        for idx in 0..self.crossed.len() {
            let node = self.crossed[idx];
            self.watch_neighbourhood(node, step, positions, 0);
        }
        // Phase 3 (parallel epoch): each region fires its due pair
        // rechecks and scans its hot list, writing in-range pairs to its
        // own buffer. Regions are disjoint, so any worker partition
        // computes identical region states.
        let range_sq = self.range * self.range;
        let shared = EngineShared {
            range: self.range,
            range_sq,
            dt_secs: self.dt_secs,
            cols: self.cols,
            node_cell: &self.node_cell,
            vmax: &self.vmax,
        };
        let workers = workers.max(1).min(self.regions.len());
        if workers > 1 {
            let per = self.regions.len().div_ceil(workers);
            std::thread::scope(|s| {
                for chunk in self.regions.chunks_mut(per) {
                    let shared = &shared;
                    s.spawn(move || {
                        for region in chunk {
                            region.step(step, positions, energy, shared);
                        }
                    });
                }
            });
        } else {
            for region in &mut self.regions {
                region.step(step, positions, energy, &shared);
            }
        }
        // Phase 4 (serial): merge in region order. The caller sorts, so
        // the final list is independent of the region/worker partition.
        for region in &mut self.regions {
            out.extend_from_slice(&region.out);
        }
    }

    /// Total watched pairs across all regions (diagnostics).
    #[must_use]
    pub fn watched_pairs(&self) -> usize {
        self.regions.iter().map(|r| r.state.len()).sum()
    }

    fn cell_index(&self, p: Point) -> usize {
        let cx = ((p.x / self.cell) as usize).min(self.cols - 1);
        let cy = ((p.y / self.cell) as usize).min(self.rows - 1);
        cy * self.cols + cx
    }

    /// Steps until `p` could first leave cell `c`: boundary distance over
    /// the speed cap. An unbounded model checks again next step; a pinned
    /// node never does.
    fn cross_steps(&self, p: Point, c: usize, vmax: f64) -> u64 {
        if vmax <= 0.0 {
            return u64::MAX;
        }
        if !vmax.is_finite() {
            return 1;
        }
        let cx = (c % self.cols) as f64;
        let cy = (c / self.cols) as f64;
        let margin = (p.x - cx * self.cell)
            .min((cx + 1.0) * self.cell - p.x)
            .min(p.y - cy * self.cell)
            .min((cy + 1.0) * self.cell - p.y);
        let steps = (margin / (vmax * self.dt_secs)).floor();
        if steps <= 1.0 {
            1
        } else {
            steps.min(MAX_PREDICT_STEPS) as u64
        }
    }

    /// (Re-)watches every pair between `node` and the occupants of its
    /// 3×3 cell neighbourhood. Hot pairs are already exact; anything else
    /// gets a fresh prediction from current positions. `lag` is the
    /// number of mobility steps the supplied positions trail the next
    /// `collect` call by (1 when seeding from a rebuild, 0 in-step).
    fn watch_neighbourhood(&mut self, node: NodeId, step: u64, positions: &[Point], lag: u64) {
        let shared = EngineShared {
            range: self.range,
            range_sq: self.range * self.range,
            dt_secs: self.dt_secs,
            cols: self.cols,
            node_cell: &self.node_cell,
            vmax: &self.vmax,
        };
        let c = self.node_cell[node.index()] as usize;
        let cx = c % self.cols;
        let cy = c / self.cols;
        let region_count = self.regions.len();
        for ny in cy.saturating_sub(1)..=(cy + 1).min(self.rows - 1) {
            for nx in cx.saturating_sub(1)..=(cx + 1).min(self.cols - 1) {
                for &other in &self.cells[ny * self.cols + nx] {
                    if other == node {
                        continue;
                    }
                    let pair = ContactKey::new(node, other);
                    let region = &mut self.regions[pair_region(pair, region_count)];
                    if region.state.get(&pair) == Some(&PairState::Hot) {
                        continue;
                    }
                    region.classify(pair, step, lag, positions, &shared);
                }
            }
        }
    }
}

/// Read-only engine context shared with the region phase.
struct EngineShared<'a> {
    range: f64,
    range_sq: f64,
    dt_secs: f64,
    cols: usize,
    node_cell: &'a [u32],
    vmax: &'a [f64],
}

impl EngineShared<'_> {
    /// Chebyshev cell distance ≤ 1 — the watchability criterion. Two
    /// nodes in non-adjacent cells are strictly farther apart than the
    /// range, and re-entering adjacency necessarily crosses a cell
    /// boundary, which re-watches the pair.
    fn cells_adjacent(&self, pair: ContactKey) -> bool {
        let a = self.node_cell[pair.0.index()] as usize;
        let b = self.node_cell[pair.1.index()] as usize;
        let (ax, ay) = (a % self.cols, a / self.cols);
        let (bx, by) = (b % self.cols, b / self.cols);
        ax.abs_diff(bx) <= 1 && ay.abs_diff(by) <= 1
    }
}

impl Region {
    /// Fires this region's due pair rechecks, then scans its hot list,
    /// collecting in-range non-depleted pairs into `self.out`.
    fn step(&mut self, step: u64, positions: &[Point], energy: &EnergyMeter, eng: &EngineShared) {
        self.out.clear();
        // Due rechecks first: a pair predicted for this very step may be
        // in range right now, and classification routes it into the hot
        // list scanned below.
        while let Some((due, pair)) = self.queue.pop_due(step) {
            if self.state.get(&pair) != Some(&PairState::Due(due)) {
                continue; // stale: the pair was re-predicted or went hot
            }
            if !eng.cells_adjacent(pair) {
                self.state.remove(&pair);
                continue;
            }
            self.classify(pair, step, 0, positions, eng);
        }
        // Hot scan: exact distance check every step for every pair near
        // the range boundary. Index loop because demotions swap-remove.
        let mut i = 0;
        while i < self.hot.len() {
            let pair = self.hot[i];
            if !eng.cells_adjacent(pair) {
                self.state.remove(&pair);
                self.hot.swap_remove(i);
                continue;
            }
            let d_sq = positions[pair.0.index()].distance_sq_to(positions[pair.1.index()]);
            if d_sq <= eng.range_sq && !energy.is_depleted(pair.0) && !energy.is_depleted(pair.1) {
                self.out.push(pair);
            }
            let vp = eng.vmax[pair.0.index()] + eng.vmax[pair.1.index()];
            let exit = eng.range + HOT_EXIT_STEPS * vp * eng.dt_secs;
            if d_sq > exit * exit {
                // Far enough to predict ahead again (vp > 0, else the
                // exit band collapses to the range and d ≤ range keeps
                // the pair hot; an immobile out-of-range pair was never
                // classified hot to begin with).
                let due = step + predict_steps(d_sq.sqrt() - eng.range, vp, eng.dt_secs);
                self.state.insert(pair, PairState::Due(due));
                self.queue.push(due, pair);
                self.hot.swap_remove(i);
                continue;
            }
            i += 1;
        }
    }

    /// Places `pair` in the watch set from its current geometry: inside
    /// the hot band → hot (checked every step); approachable → predicted
    /// recheck; immobile and out of range → unwatched (it can never
    /// close, and any future motion re-watches it via a cell crossing).
    /// `lag` shifts the prediction earlier when the supplied positions
    /// trail the next `collect` by that many mobility steps.
    fn classify(
        &mut self,
        pair: ContactKey,
        step: u64,
        lag: u64,
        positions: &[Point],
        eng: &EngineShared,
    ) {
        let d_sq = positions[pair.0.index()].distance_sq_to(positions[pair.1.index()]);
        let vp = eng.vmax[pair.0.index()] + eng.vmax[pair.1.index()];
        let enter = eng.range + HOT_ENTER_STEPS * vp * eng.dt_secs;
        if d_sq <= enter * enter {
            if self.state.insert(pair, PairState::Hot) != Some(PairState::Hot) {
                self.hot.push(pair);
            }
            return;
        }
        if vp <= 0.0 {
            // Neither endpoint can move: the gap is permanent.
            self.state.remove(&pair);
            return;
        }
        let due = step
            .saturating_add(predict_steps(d_sq.sqrt() - eng.range, vp, eng.dt_secs))
            .saturating_sub(lag);
        self.state.insert(pair, PairState::Due(due));
        self.queue.push(due, pair);
    }
}

/// Stable pair → region assignment: pure function of the pair id, so a
/// pair lives in one region forever and regions never exchange state.
fn pair_region(pair: ContactKey, regions: usize) -> usize {
    pair.0 .0 as usize % regions
}

/// Conservative steps until a pair `slack` metres outside the range could
/// close it at combined speed cap `vp`: each step shrinks the gap by at
/// most `vp·dt`, so checking after `floor(slack / (vp·dt))` steps can
/// never miss the crossing.
fn predict_steps(slack: f64, vp: f64, dt_secs: f64) -> u64 {
    let steps = (slack / (vp * dt_secs)).floor();
    if steps <= 1.0 {
        1
    } else {
        steps.min(MAX_PREDICT_STEPS) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::RadioConfig;

    #[test]
    fn queue_pops_in_step_then_id_order() {
        let mut q = EventQueue::new();
        q.push(5, 2u32);
        q.push(3, 9);
        q.push(5, 1);
        q.push(8, 0);
        assert_eq!(q.pop_due(10), Some((3, 9)));
        assert_eq!(q.pop_due(10), Some((5, 1)));
        assert_eq!(q.pop_due(10), Some((5, 2)));
        assert_eq!(q.pop_due(7), None, "not due yet");
        assert_eq!(q.pop_due(8), Some((8, 0)));
        assert!(q.is_empty());
    }

    #[test]
    fn kernel_mode_parses_and_round_trips() {
        assert_eq!(
            "time-stepped".parse::<KernelMode>().unwrap(),
            KernelMode::TimeStepped
        );
        assert_eq!(
            "event-driven".parse::<KernelMode>().unwrap(),
            KernelMode::EventDriven
        );
        assert!("both".parse::<KernelMode>().is_err());
        assert_eq!(KernelMode::default(), KernelMode::EventDriven);
        let doc = KernelMode::TimeStepped.to_value();
        assert_eq!(
            KernelMode::from_value(&doc).unwrap(),
            KernelMode::TimeStepped
        );
    }

    /// The engine must reproduce the sweep's in-range list exactly on a
    /// randomized world of movers with assorted speed caps.
    #[test]
    fn engine_matches_brute_force_over_random_walks() {
        use crate::rng::SimRng;

        let area = Area::new(900.0, 700.0);
        let range = RadioConfig::paper_default().range_m;
        let n = 60;
        let mut rng = SimRng::new(7);
        let mut positions: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.uniform(0.0, area.width), rng.uniform(0.0, area.height)))
            .collect();
        // Mixed caps: pinned nodes, slow walkers, one fast hopper, and one
        // node with no declared cap at all.
        let vmax: Vec<f64> = (0..n)
            .map(|i| match i % 5 {
                0 => 0.0,
                1 => 1.5,
                2 => 6.0,
                3 => 40.0,
                _ => f64::INFINITY,
            })
            .collect();
        let energy = EnergyMeter::new(n, RadioConfig::paper_default());
        let mut engine = ContactEngine::new(area, range, 1.0, 3, &positions, vmax.clone());
        let mut got = Vec::new();
        for step in 0..400u64 {
            // Move every node within its cap (pinned nodes stay put; the
            // "unbounded" node teleports anywhere).
            for i in 0..n {
                let cap = if vmax[i].is_finite() { vmax[i] } else { 250.0 };
                if cap == 0.0 {
                    continue;
                }
                let p = positions[i];
                let q = Point::new(
                    (p.x + rng.uniform(-cap, cap)).clamp(0.0, area.width),
                    (p.y + rng.uniform(-cap, cap)).clamp(0.0, area.height),
                );
                // A diagonal draw can exceed the cap by √2; shrink it.
                let d = p.distance_to(q);
                positions[i] = if d > cap { p.step_toward(q, cap) } else { q };
            }
            got.clear();
            engine.collect(step, &positions, &energy, 2, &mut got);
            got.sort_unstable();
            let mut want = Vec::new();
            for a in 0..n {
                for b in (a + 1)..n {
                    if positions[a].distance_sq_to(positions[b]) <= range * range {
                        want.push(ContactKey(NodeId(a as u32), NodeId(b as u32)));
                    }
                }
            }
            assert_eq!(got, want, "step {step} diverged from brute force");
        }
    }

    /// Rebuilding from positions mid-run must not change the output —
    /// the watch set is derived state.
    #[test]
    fn rebuild_is_output_invariant() {
        let area = Area::new(400.0, 400.0);
        let range = 50.0;
        let n = 20;
        let positions: Vec<Point> = (0..n)
            .map(|i| Point::new(20.0 * i as f64, 11.0 * i as f64 % 400.0))
            .collect();
        let vmax = vec![2.0; n];
        let energy = EnergyMeter::new(n, RadioConfig::paper_default());
        let mut a = ContactEngine::new(area, range, 1.0, 1, &positions, vmax.clone());
        let mut b = ContactEngine::new(area, range, 1.0, 4, &positions, vmax);
        b.rebuild(&positions, 57);
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        a.collect(57, &positions, &energy, 1, &mut out_a);
        b.collect(57, &positions, &energy, 3, &mut out_b);
        out_a.sort_unstable();
        out_b.sort_unstable();
        assert_eq!(out_a, out_b);
        assert!(!out_a.is_empty(), "fixture should have contacts");
    }
}
