//! Per-node message buffers.
//!
//! Each node stores in-transit message copies in a byte-bounded buffer
//! (Table 5.1 default: 250 MB). When an incoming message does not fit, a
//! [`DropPolicy`] decides which existing copies to evict — ONE's default is
//! to drop the oldest-received copy, which we reproduce, with a priority-
//! aware alternative used by the priority-segmented experiment (Fig. 5.6).

use std::collections::HashMap;

use crate::fxhash::FxHashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::message::{Annotation, MessageBody, MessageCopy, MessageId, Priority};
use crate::time::SimTime;
use crate::world::NodeId;

/// What to evict when an arriving message does not fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropPolicy {
    /// Never evict; reject the newcomer instead.
    RejectNew,
    /// Evict the copy that has been buffered the longest (ONE's default).
    DropOldest,
    /// Evict lowest-priority first, oldest within a priority class.
    DropLowestPriority,
}

/// The outcome of attempting to insert a message into a buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The copy was stored; `evicted` lists any copies dropped to make room.
    Stored {
        /// Ids of evicted copies, in eviction order.
        evicted: Vec<MessageId>,
    },
    /// The copy was rejected (too large, duplicate, or policy refused).
    Rejected(RejectReason),
}

/// Why an insert was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// A copy of this message is already buffered (UUID dedup, §3.1).
    Duplicate,
    /// The message is larger than the whole buffer.
    TooLarge,
    /// The policy is [`DropPolicy::RejectNew`] and there was no room.
    NoRoom,
}

/// A byte-bounded store of message copies for one node.
#[derive(Debug)]
pub struct Buffer {
    capacity_bytes: u64,
    used_bytes: u64,
    policy: DropPolicy,
    copies: FxHashMap<MessageId, MessageCopy>,
    /// Lifetime count of successful inserts (the invariant checker
    /// reconciles `stored - removed` against the live copy count).
    lifetime_stored: u64,
    /// Lifetime count of removals (evictions, sweeps, explicit removes).
    lifetime_removed: u64,
    /// Bumped on every mutation (insert, remove, `get_mut`, restore) so
    /// routers can cache derived orderings keyed by this value. Not part
    /// of the snapshot wire format: caches start cold after a resume.
    generation: u64,
}

impl Buffer {
    /// Creates an empty buffer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero.
    #[must_use]
    pub fn new(capacity_bytes: u64, policy: DropPolicy) -> Self {
        assert!(capacity_bytes > 0, "buffer capacity must be positive");
        Buffer {
            capacity_bytes,
            used_bytes: 0,
            policy,
            copies: FxHashMap::default(),
            lifetime_stored: 0,
            lifetime_removed: 0,
            generation: 0,
        }
    }

    /// Monotonic mutation counter: two reads returning the same value
    /// guarantee the buffer contents (and copy annotations) are unchanged
    /// between them, so derived orderings may be reused.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// The configured drop policy.
    #[must_use]
    pub fn policy(&self) -> DropPolicy {
        self.policy
    }

    /// Lifetime count of successful inserts.
    #[must_use]
    pub fn lifetime_stored(&self) -> u64 {
        self.lifetime_stored
    }

    /// Lifetime count of removals (evictions, TTL sweeps, explicit
    /// removes).
    #[must_use]
    pub fn lifetime_removed(&self) -> u64 {
        self.lifetime_removed
    }

    /// Bytes currently used.
    #[must_use]
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Free space in bytes.
    #[must_use]
    pub fn free_bytes(&self) -> u64 {
        self.capacity_bytes - self.used_bytes
    }

    /// Number of buffered copies.
    #[must_use]
    pub fn len(&self) -> usize {
        self.copies.len()
    }

    /// Whether the buffer holds no copies.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.copies.is_empty()
    }

    /// Whether a copy of `id` is buffered.
    #[must_use]
    pub fn contains(&self, id: MessageId) -> bool {
        self.copies.contains_key(&id)
    }

    /// The buffered copy of `id`, if any.
    #[must_use]
    pub fn get(&self, id: MessageId) -> Option<&MessageCopy> {
        self.copies.get(&id)
    }

    /// Mutable access to the buffered copy of `id` (used by enrichment).
    /// Conservatively bumps the generation: the caller may mutate fields
    /// (e.g. quality annotations) that derived orderings depend on.
    #[must_use]
    pub fn get_mut(&mut self, id: MessageId) -> Option<&mut MessageCopy> {
        self.generation += 1;
        self.copies.get_mut(&id)
    }

    /// Iterates over the buffered copies in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &MessageCopy> {
        self.copies.values()
    }

    /// Ids of all buffered copies, sorted for deterministic iteration.
    #[must_use]
    pub fn ids_sorted(&self) -> Vec<MessageId> {
        let mut ids = Vec::new();
        self.ids_sorted_into(&mut ids);
        ids
    }

    /// [`Self::ids_sorted`] appended into a caller-owned buffer (cleared
    /// first) so hot routing passes can reuse one allocation.
    pub fn ids_sorted_into(&self, out: &mut Vec<MessageId>) {
        out.clear();
        out.extend(self.copies.keys().copied());
        out.sort_unstable();
    }

    /// Inserts a copy, evicting per policy if needed.
    pub fn insert(&mut self, copy: MessageCopy) -> InsertOutcome {
        let id = copy.id();
        let size = copy.size_bytes();
        if self.copies.contains_key(&id) {
            return InsertOutcome::Rejected(RejectReason::Duplicate);
        }
        if size > self.capacity_bytes {
            return InsertOutcome::Rejected(RejectReason::TooLarge);
        }
        let mut evicted = Vec::new();
        while self.used_bytes + size > self.capacity_bytes {
            match self.pick_victim() {
                Some(victim) => {
                    self.remove(victim);
                    evicted.push(victim);
                }
                None => return InsertOutcome::Rejected(RejectReason::NoRoom),
            }
        }
        self.used_bytes += size;
        self.copies.insert(id, copy);
        self.lifetime_stored += 1;
        self.generation += 1;
        InsertOutcome::Stored { evicted }
    }

    /// Removes the copy of `id`, returning it if present.
    pub fn remove(&mut self, id: MessageId) -> Option<MessageCopy> {
        let copy = self.copies.remove(&id)?;
        self.used_bytes -= copy.size_bytes();
        self.lifetime_removed += 1;
        self.generation += 1;
        Some(copy)
    }

    /// Removes all copies whose TTL has elapsed at `now`, returning their
    /// ids in ascending order (the backing map iterates in hash order,
    /// which differs between otherwise-identical runs).
    pub fn sweep_expired(&mut self, now: SimTime) -> Vec<MessageId> {
        let mut expired: Vec<MessageId> = self
            .copies
            .values()
            .filter(|c| c.body.is_expired(now))
            .map(MessageCopy::id)
            .collect();
        expired.sort_unstable();
        for id in &expired {
            self.remove(*id);
        }
        expired
    }

    /// Chooses an eviction victim per policy, or `None` to reject.
    fn pick_victim(&self) -> Option<MessageId> {
        match self.policy {
            DropPolicy::RejectNew => None,
            DropPolicy::DropOldest => self
                .copies
                .values()
                .min_by(|a, b| {
                    a.received_at
                        .partial_cmp(&b.received_at)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.id().cmp(&b.id()))
                })
                .map(MessageCopy::id),
            DropPolicy::DropLowestPriority => self
                .copies
                .values()
                .max_by(|a, b| {
                    // Priority::Low has the largest level(); evict it first,
                    // oldest first within a class (the oldest copy must be
                    // the max, so compare received_at in reverse).
                    priority_key(a.body.priority)
                        .cmp(&priority_key(b.body.priority))
                        .then(
                            b.received_at
                                .partial_cmp(&a.received_at)
                                .unwrap_or(std::cmp::Ordering::Equal),
                        )
                        .then(a.id().cmp(&b.id()))
                })
                .map(MessageCopy::id),
        }
    }
}

fn priority_key(p: Priority) -> u8 {
    p.level()
}

/// The snapshot of one buffered copy. The shared [`MessageBody`] is stored
/// once per message in the world snapshot, not per copy, so a copy records
/// only its id plus the per-copy divergent state (annotations, path,
/// arrival time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CopyState {
    /// The message this copy belongs to.
    pub id: MessageId,
    /// All tags on this copy, in add order.
    pub annotations: Vec<Annotation>,
    /// Every node this copy has visited.
    pub path: Vec<NodeId>,
    /// When the holding node received (or created) the copy.
    pub received_at: SimTime,
}

/// The dynamic state of one [`Buffer`] (capacity and policy are scenario
/// configuration and are rebuilt, not snapshotted).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferState {
    /// Buffered copies, sorted by message id.
    pub copies: Vec<CopyState>,
    /// Bytes currently used.
    pub used_bytes: u64,
    /// Lifetime count of successful inserts.
    pub lifetime_stored: u64,
    /// Lifetime count of removals.
    pub lifetime_removed: u64,
}

impl Buffer {
    /// Captures the buffer's dynamic state for a snapshot, in sorted
    /// (deterministic) order.
    #[must_use]
    pub fn export_state(&self) -> BufferState {
        let mut copies: Vec<CopyState> = self
            .copies
            .values()
            .map(|c| CopyState {
                id: c.id(),
                annotations: c.annotations.clone(),
                path: c.path.clone(),
                received_at: c.received_at,
            })
            .collect();
        copies.sort_by_key(|c| c.id);
        BufferState {
            copies,
            used_bytes: self.used_bytes,
            lifetime_stored: self.lifetime_stored,
            lifetime_removed: self.lifetime_removed,
        }
    }

    /// Overwrites the buffer's dynamic state from a snapshot, resolving
    /// each copy's shared body from `bodies`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency: a copy whose body
    /// is absent from `bodies`, or byte accounting that does not match the
    /// restored copies.
    pub fn import_state(
        &mut self,
        state: &BufferState,
        bodies: &HashMap<MessageId, Arc<MessageBody>>,
    ) -> Result<(), String> {
        let mut copies =
            FxHashMap::with_capacity_and_hasher(state.copies.len(), Default::default());
        let mut recomputed: u64 = 0;
        for c in &state.copies {
            let body = bodies
                .get(&c.id)
                .ok_or_else(|| format!("buffered copy of {} has no body in the snapshot", c.id))?;
            recomputed += body.size_bytes;
            copies.insert(
                c.id,
                MessageCopy {
                    body: Arc::clone(body),
                    annotations: c.annotations.clone(),
                    path: c.path.clone(),
                    received_at: c.received_at,
                },
            );
        }
        if recomputed != state.used_bytes {
            return Err(format!(
                "buffer byte accounting mismatch: copies sum to {recomputed} bytes, \
                 snapshot recorded {}",
                state.used_bytes
            ));
        }
        if state.used_bytes > self.capacity_bytes {
            return Err(format!(
                "snapshot holds {} bytes but the rebuilt buffer capacity is {}",
                state.used_bytes, self.capacity_bytes
            ));
        }
        self.copies = copies;
        self.used_bytes = state.used_bytes;
        self.lifetime_stored = state.lifetime_stored;
        self.lifetime_removed = state.lifetime_removed;
        self.generation += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Keyword, MessageBody, Quality};
    use crate::world::NodeId;
    use std::sync::Arc;

    fn copy(id: u64, size: u64, prio: Priority, received: f64) -> MessageCopy {
        let body = Arc::new(MessageBody {
            id: MessageId(id),
            source: NodeId(0),
            created_at: SimTime::from_secs(received),
            size_bytes: size,
            ttl_secs: 1000.0,
            priority: prio,
            quality: Quality::new(0.5),
            ground_truth: vec![Keyword(0)],
        });
        MessageCopy::original(body, vec![Keyword(0)], SimTime::from_secs(received))
    }

    #[test]
    fn stores_until_full_then_evicts_oldest() {
        let mut b = Buffer::new(100, DropPolicy::DropOldest);
        assert!(matches!(
            b.insert(copy(1, 40, Priority::High, 1.0)),
            InsertOutcome::Stored { .. }
        ));
        assert!(matches!(
            b.insert(copy(2, 40, Priority::High, 2.0)),
            InsertOutcome::Stored { .. }
        ));
        // 80 used; inserting 40 must evict m1 (oldest).
        match b.insert(copy(3, 40, Priority::High, 3.0)) {
            InsertOutcome::Stored { evicted } => assert_eq!(evicted, vec![MessageId(1)]),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(!b.contains(MessageId(1)));
        assert!(b.contains(MessageId(2)) && b.contains(MessageId(3)));
        assert_eq!(b.used_bytes(), 80);
    }

    #[test]
    fn reject_new_policy_refuses_when_full() {
        let mut b = Buffer::new(100, DropPolicy::RejectNew);
        b.insert(copy(1, 80, Priority::High, 1.0));
        assert_eq!(
            b.insert(copy(2, 40, Priority::High, 2.0)),
            InsertOutcome::Rejected(RejectReason::NoRoom)
        );
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn duplicate_and_oversize_rejected() {
        let mut b = Buffer::new(100, DropPolicy::DropOldest);
        b.insert(copy(1, 10, Priority::High, 1.0));
        assert_eq!(
            b.insert(copy(1, 10, Priority::High, 2.0)),
            InsertOutcome::Rejected(RejectReason::Duplicate)
        );
        assert_eq!(
            b.insert(copy(2, 101, Priority::High, 2.0)),
            InsertOutcome::Rejected(RejectReason::TooLarge)
        );
    }

    #[test]
    fn low_priority_evicted_before_high() {
        let mut b = Buffer::new(100, DropPolicy::DropLowestPriority);
        b.insert(copy(1, 40, Priority::High, 1.0));
        b.insert(copy(2, 40, Priority::Low, 5.0));
        match b.insert(copy(3, 40, Priority::Medium, 9.0)) {
            InsertOutcome::Stored { evicted } => assert_eq!(evicted, vec![MessageId(2)]),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(b.contains(MessageId(1)), "high priority survives");
    }

    #[test]
    fn priority_tie_breaks_toward_oldest() {
        let mut b = Buffer::new(100, DropPolicy::DropLowestPriority);
        b.insert(copy(1, 40, Priority::Low, 1.0)); // older
        b.insert(copy(2, 40, Priority::Low, 5.0)); // newer
        match b.insert(copy(3, 40, Priority::High, 9.0)) {
            InsertOutcome::Stored { evicted } => {
                assert_eq!(
                    evicted,
                    vec![MessageId(1)],
                    "oldest of the low class goes first"
                );
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(b.contains(MessageId(2)));
    }

    #[test]
    fn big_insert_can_evict_multiple() {
        let mut b = Buffer::new(100, DropPolicy::DropOldest);
        b.insert(copy(1, 30, Priority::High, 1.0));
        b.insert(copy(2, 30, Priority::High, 2.0));
        b.insert(copy(3, 30, Priority::High, 3.0));
        match b.insert(copy(4, 90, Priority::High, 4.0)) {
            InsertOutcome::Stored { evicted } => {
                assert_eq!(evicted, vec![MessageId(1), MessageId(2), MessageId(3)]);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(b.used_bytes(), 90);
    }

    #[test]
    fn remove_frees_space() {
        let mut b = Buffer::new(100, DropPolicy::DropOldest);
        b.insert(copy(1, 60, Priority::High, 1.0));
        assert_eq!(b.free_bytes(), 40);
        let removed = b.remove(MessageId(1)).expect("present");
        assert_eq!(removed.id(), MessageId(1));
        assert_eq!(b.free_bytes(), 100);
        assert!(b.remove(MessageId(1)).is_none());
        assert!(b.is_empty());
    }

    #[test]
    fn ttl_sweep_removes_only_expired() {
        let mut b = Buffer::new(1000, DropPolicy::DropOldest);
        // copy() sets ttl 1000 s, created at `received`.
        b.insert(copy(1, 10, Priority::High, 0.0));
        b.insert(copy(2, 10, Priority::High, 500.0));
        let gone = b.sweep_expired(SimTime::from_secs(1200.0));
        assert_eq!(gone, vec![MessageId(1)]);
        assert!(b.contains(MessageId(2)));
        assert_eq!(b.used_bytes(), 10);
    }

    #[test]
    fn lifetime_counters_reconcile_with_live_count() {
        let mut b = Buffer::new(100, DropPolicy::DropOldest);
        assert_eq!(b.policy(), DropPolicy::DropOldest);
        b.insert(copy(1, 40, Priority::High, 1.0));
        b.insert(copy(2, 40, Priority::High, 2.0));
        b.insert(copy(3, 40, Priority::High, 3.0)); // evicts m1
        b.insert(copy(1, 40, Priority::High, 4.0)); // m1 re-stored, evicts m2
        b.remove(MessageId(3));
        b.sweep_expired(SimTime::from_secs(5000.0)); // everything expires
        assert!(b.is_empty());
        assert_eq!(
            b.lifetime_stored() - b.lifetime_removed(),
            b.len() as u64,
            "stored {} - removed {} must equal live count",
            b.lifetime_stored(),
            b.lifetime_removed()
        );
        assert_eq!(b.lifetime_stored(), 4);
    }

    #[test]
    fn sorted_ids_are_deterministic() {
        let mut b = Buffer::new(1000, DropPolicy::DropOldest);
        for id in [5u64, 1, 9, 3] {
            b.insert(copy(id, 10, Priority::High, id as f64));
        }
        assert_eq!(
            b.ids_sorted(),
            vec![MessageId(1), MessageId(3), MessageId(5), MessageId(9)]
        );
    }
}
