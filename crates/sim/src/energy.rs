//! Per-node energy accounting.
//!
//! The incentive mechanism's hardware factor compensates nodes for the
//! battery they spend transmitting and receiving (Paper I, §3.2). The meter
//! integrates transmit power over airtime on the sending side and the
//! Friis-attenuated reception power over airtime on the receiving side.

use serde::{Deserialize, Serialize};

use crate::radio::RadioConfig;
use crate::time::SimDuration;
use crate::world::NodeId;

/// Cumulative energy use for one node, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyUse {
    /// Joules spent transmitting.
    pub tx_joules: f64,
    /// Joules spent receiving.
    pub rx_joules: f64,
}

impl EnergyUse {
    /// Total joules spent.
    #[must_use]
    pub fn total_joules(&self) -> f64 {
        self.tx_joules + self.rx_joules
    }
}

/// Tracks energy use for every node in the world, optionally against a
/// finite battery budget.
#[derive(Debug)]
pub struct EnergyMeter {
    radio: RadioConfig,
    per_node: Vec<EnergyUse>,
    /// Extra joules drained outside radio activity (fault-injected battery
    /// spikes); counts against the battery but not against radio-use stats.
    drained: Vec<f64>,
    /// Joules available per node; `None` models mains/ideal power.
    battery_joules: Option<f64>,
}

impl EnergyMeter {
    /// Creates a meter for `node_count` nodes using `radio` for power terms.
    #[must_use]
    pub fn new(node_count: usize, radio: RadioConfig) -> Self {
        EnergyMeter {
            radio,
            per_node: vec![EnergyUse::default(); node_count],
            drained: vec![0.0; node_count],
            battery_joules: None,
        }
    }

    /// Gives every node a finite battery of `joules`. A node whose total
    /// use reaches the budget is *depleted*: the kernel stops forming
    /// contacts for it (its radio is dead).
    ///
    /// # Panics
    ///
    /// Panics if `joules` is not strictly positive.
    pub fn set_battery(&mut self, joules: f64) {
        assert!(joules > 0.0, "battery budget must be positive");
        self.battery_joules = Some(joules);
    }

    /// The configured battery budget, if any.
    #[must_use]
    pub fn battery_joules(&self) -> Option<f64> {
        self.battery_joules
    }

    /// Joules left in `node`'s battery (`None` on ideal power).
    #[must_use]
    pub fn remaining_joules(&self, node: NodeId) -> Option<f64> {
        self.battery_joules.map(|b| {
            (b - self.per_node[node.index()].total_joules() - self.drained[node.index()]).max(0.0)
        })
    }

    /// Drains `joules` from `node` outside radio accounting (a battery
    /// spike). Only meaningful against a finite battery, but always
    /// recorded.
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or not finite.
    pub fn drain(&mut self, node: NodeId, joules: f64) {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "drain must be finite and non-negative"
        );
        self.drained[node.index()] += joules;
    }

    /// Joules drained from `node` by battery spikes so far.
    #[must_use]
    pub fn drained_joules(&self, node: NodeId) -> f64 {
        self.drained[node.index()]
    }

    /// Whether `node`'s battery is exhausted.
    #[must_use]
    pub fn is_depleted(&self, node: NodeId) -> bool {
        self.remaining_joules(node).is_some_and(|r| r <= 0.0)
    }

    /// Number of depleted nodes.
    #[must_use]
    pub fn depleted_count(&self) -> usize {
        match self.battery_joules {
            None => 0,
            Some(b) => self
                .per_node
                .iter()
                .zip(&self.drained)
                .filter(|(u, d)| u.total_joules() + **d >= b)
                .count(),
        }
    }

    /// Charges both endpoints of a finished transfer.
    ///
    /// Returns `(tx_joules, rx_joules)` for this transfer so the protocol
    /// layer can convert the same quantities into incentive tokens.
    pub fn charge_transfer(
        &mut self,
        from: NodeId,
        to: NodeId,
        airtime: SimDuration,
        distance_m: f64,
    ) -> (f64, f64) {
        let secs = airtime.as_secs();
        let tx = self.radio.tx_power_w * secs;
        let rx = self.radio.rx_power(distance_m) * secs;
        self.per_node[from.index()].tx_joules += tx;
        self.per_node[to.index()].rx_joules += rx;
        (tx, rx)
    }

    /// Captures the meter's dynamic state (per-node use and spike drains)
    /// for a snapshot; the radio and battery configuration are rebuilt from
    /// the scenario on restore.
    #[must_use]
    pub fn export_state(&self) -> EnergyMeterState {
        EnergyMeterState {
            per_node: self.per_node.clone(),
            drained: self.drained.clone(),
        }
    }

    /// Overwrites the meter's dynamic state from a snapshot.
    ///
    /// # Errors
    ///
    /// Rejects a state sized for a different node count.
    pub fn import_state(&mut self, state: &EnergyMeterState) -> Result<(), String> {
        if state.per_node.len() != self.per_node.len() || state.drained.len() != self.drained.len()
        {
            return Err(format!(
                "snapshot energy state covers {} nodes, world has {}",
                state.per_node.len(),
                self.per_node.len()
            ));
        }
        self.per_node = state.per_node.clone();
        self.drained = state.drained.clone();
        Ok(())
    }

    /// The cumulative use of one node.
    #[must_use]
    pub fn usage(&self, node: NodeId) -> EnergyUse {
        self.per_node[node.index()]
    }

    /// Total joules across the whole network.
    #[must_use]
    pub fn network_total_joules(&self) -> f64 {
        self.per_node.iter().map(EnergyUse::total_joules).sum()
    }
}

/// The dynamic state of an [`EnergyMeter`]: cumulative radio use and
/// fault-injected drains, without the radio/battery configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeterState {
    /// Per-node cumulative radio energy use.
    pub per_node: Vec<EnergyUse>,
    /// Per-node joules drained by battery spikes.
    pub drained: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_endpoint() {
        let mut m = EnergyMeter::new(3, RadioConfig::paper_default());
        let (tx, rx) = m.charge_transfer(NodeId(0), NodeId(1), SimDuration::from_secs(4.0), 50.0);
        assert!((tx - 0.4).abs() < 1e-12, "0.1 W * 4 s = 0.4 J, got {tx}");
        assert!(
            rx > 0.0 && rx < tx,
            "reception power is path-loss attenuated"
        );
        assert_eq!(m.usage(NodeId(0)).tx_joules, tx);
        assert_eq!(m.usage(NodeId(1)).rx_joules, rx);
        assert_eq!(m.usage(NodeId(2)), EnergyUse::default());

        m.charge_transfer(NodeId(0), NodeId(2), SimDuration::from_secs(4.0), 50.0);
        assert!((m.usage(NodeId(0)).tx_joules - 2.0 * tx).abs() < 1e-12);
        assert!((m.network_total_joules() - (2.0 * tx + 2.0 * rx)).abs() < 1e-12);
    }

    #[test]
    fn battery_budget_depletes() {
        let mut m = EnergyMeter::new(2, RadioConfig::paper_default());
        assert!(
            m.remaining_joules(NodeId(0)).is_none(),
            "ideal power by default"
        );
        assert!(!m.is_depleted(NodeId(0)));
        m.set_battery(0.5);
        assert_eq!(m.remaining_joules(NodeId(0)), Some(0.5));
        // 0.1 W × 4 s = 0.4 J of transmission.
        m.charge_transfer(NodeId(0), NodeId(1), SimDuration::from_secs(4.0), 50.0);
        assert!(!m.is_depleted(NodeId(0)));
        m.charge_transfer(NodeId(0), NodeId(1), SimDuration::from_secs(4.0), 50.0);
        assert!(m.is_depleted(NodeId(0)), "0.8 J > 0.5 J budget");
        assert_eq!(m.remaining_joules(NodeId(0)), Some(0.0));
        assert!(!m.is_depleted(NodeId(1)), "receiver spent far less");
        assert_eq!(m.depleted_count(), 1);
    }

    #[test]
    fn spike_drain_counts_against_battery_not_radio_stats() {
        let mut m = EnergyMeter::new(2, RadioConfig::paper_default());
        m.set_battery(1.0);
        m.drain(NodeId(0), 0.6);
        assert_eq!(m.drained_joules(NodeId(0)), 0.6);
        assert_eq!(m.usage(NodeId(0)), EnergyUse::default(), "radio untouched");
        assert_eq!(m.remaining_joules(NodeId(0)), Some(0.4));
        assert!(!m.is_depleted(NodeId(0)));
        m.drain(NodeId(0), 0.5);
        assert!(m.is_depleted(NodeId(0)));
        assert_eq!(m.depleted_count(), 1);
        assert_eq!(m.remaining_joules(NodeId(1)), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_battery_rejected() {
        EnergyMeter::new(1, RadioConfig::paper_default()).set_battery(0.0);
    }

    #[test]
    fn closer_receivers_absorb_more_power() {
        let mut m = EnergyMeter::new(2, RadioConfig::paper_default());
        let (_, rx_near) =
            m.charge_transfer(NodeId(0), NodeId(1), SimDuration::from_secs(1.0), 5.0);
        let (_, rx_far) =
            m.charge_transfer(NodeId(0), NodeId(1), SimDuration::from_secs(1.0), 95.0);
        assert!(rx_near > rx_far);
    }
}
