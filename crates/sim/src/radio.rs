//! Radio model: range-based connectivity, link speed, and the Friis
//! transmission equation used by the hardware-factor incentive.
//!
//! The paper's ONE-simulator configuration (Table 5.1) models the radio as a
//! fixed 100 m transmission radius and a fixed 250 kB/s link speed; the
//! incentive mechanism's *hardware factor* additionally needs the reception
//! power, which the paper computes with the Friis equation (Paper I, §3.2):
//!
//! ```text
//! P_r = P_t / L_v        where L_v = (4π R / λ)²
//! ```
//!
//! with `R` the distance between the devices and `λ` the wavelength (the
//! thesis calls the symbol "bandwidth"; dimensional analysis of the free-space
//! path-loss formula requires a wavelength, so we expose it as such and
//! default it to the 2.4 GHz ISM band of the Bluetooth demo hardware).

use serde::{Deserialize, Serialize};

/// Static radio parameters shared by every node in a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioConfig {
    /// Transmission radius in meters (Table 5.1 default: 100 m).
    pub range_m: f64,
    /// Link speed in bytes per second (Table 5.1 default: 250 kB/s).
    pub link_speed_bps: f64,
    /// Transmission power `P_t` in watts (default 0.1 W, a typical
    /// class-1 Bluetooth / low-power Wi-Fi radio).
    pub tx_power_w: f64,
    /// Carrier wavelength `λ` in meters (default 0.125 m ≈ 2.4 GHz).
    pub wavelength_m: f64,
}

impl RadioConfig {
    /// The paper's Table 5.1 radio: 100 m radius, 250 kB/s.
    #[must_use]
    pub fn paper_default() -> Self {
        RadioConfig {
            range_m: 100.0,
            link_speed_bps: 250_000.0,
            tx_power_w: 0.1,
            wavelength_m: 0.125,
        }
    }

    /// A class-2 Bluetooth radio (the Paper II demo hardware): ~10 m
    /// range, ~200 kB/s effective throughput, 2.5 mW.
    #[must_use]
    pub fn bluetooth() -> Self {
        RadioConfig {
            range_m: 10.0,
            link_speed_bps: 200_000.0,
            tx_power_w: 0.0025,
            wavelength_m: 0.125,
        }
    }

    /// A Wi-Fi Direct radio (the paper's stated future work): ~200 m
    /// range, ~25 MB/s effective throughput, 0.25 W.
    #[must_use]
    pub fn wifi_direct() -> Self {
        RadioConfig {
            range_m: 200.0,
            link_speed_bps: 25_000_000.0,
            tx_power_w: 0.25,
            wavelength_m: 0.06, // 5 GHz band
        }
    }

    /// Time in seconds to push `bytes` over one link.
    #[must_use]
    pub fn transfer_secs(&self, bytes: u64) -> f64 {
        bytes as f64 / self.link_speed_bps
    }

    /// Free-space path loss `L_v = (4π R / λ)²` at distance `distance_m`.
    ///
    /// Distances below one wavelength are clamped to one wavelength so the
    /// near-field does not produce a gain (`L_v < 1`), which the far-field
    /// Friis formula is not valid for anyway.
    #[must_use]
    pub fn path_loss(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(self.wavelength_m);
        let ratio = 4.0 * std::f64::consts::PI * d / self.wavelength_m;
        ratio * ratio
    }

    /// Reception power `P_r = P_t / L_v` in watts at `distance_m`.
    ///
    /// ```
    /// use dtn_sim::radio::RadioConfig;
    /// let radio = RadioConfig::paper_default();
    /// let near = radio.rx_power(10.0);
    /// let far = radio.rx_power(100.0);
    /// assert!(near > far, "reception power decays with distance");
    /// ```
    #[must_use]
    pub fn rx_power(&self, distance_m: f64) -> f64 {
        self.tx_power_w / self.path_loss(distance_m)
    }
}

impl Default for RadioConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table_5_1() {
        let r = RadioConfig::paper_default();
        assert_eq!(r.range_m, 100.0);
        assert_eq!(r.link_speed_bps, 250_000.0);
    }

    #[test]
    fn transfer_time_for_1mb_message() {
        // Table 5.1: 1 MB messages at 250 kB/s → 4 seconds per hop.
        let r = RadioConfig::paper_default();
        assert_eq!(r.transfer_secs(1_000_000), 4.0);
        assert_eq!(r.transfer_secs(0), 0.0);
    }

    #[test]
    fn path_loss_follows_inverse_square() {
        let r = RadioConfig::paper_default();
        let l10 = r.path_loss(10.0);
        let l20 = r.path_loss(20.0);
        assert!(
            (l20 / l10 - 4.0).abs() < 1e-9,
            "doubling distance quadruples loss"
        );
    }

    #[test]
    fn rx_power_never_exceeds_tx_power() {
        let r = RadioConfig::paper_default();
        for d in [0.0, 0.01, 0.125, 1.0, 50.0, 100.0] {
            let p = r.rx_power(d);
            assert!(
                p > 0.0 && p <= r.tx_power_w,
                "rx power {p} out of range at d={d}"
            );
        }
    }

    #[test]
    fn radio_presets_are_ordered_sensibly() {
        let bt = RadioConfig::bluetooth();
        let paper = RadioConfig::paper_default();
        let wifi = RadioConfig::wifi_direct();
        assert!(bt.range_m < paper.range_m && paper.range_m < wifi.range_m);
        assert!(bt.link_speed_bps <= paper.link_speed_bps);
        assert!(paper.link_speed_bps < wifi.link_speed_bps);
        assert!(bt.tx_power_w < paper.tx_power_w && paper.tx_power_w < wifi.tx_power_w);
        // A 1 MB photo over the demo's Bluetooth takes 5 s; over Wi-Fi
        // Direct it takes 40 ms.
        assert_eq!(bt.transfer_secs(1_000_000), 5.0);
        assert!(wifi.transfer_secs(1_000_000) < 0.05);
    }

    #[test]
    fn friis_hand_computed_value() {
        // L_v = (4π·100/0.125)² ≈ 1.0106e8; P_r = 0.1 / L_v ≈ 9.9e-10 W.
        let r = RadioConfig::paper_default();
        let l = r.path_loss(100.0);
        assert!((l - 1.010_6e8).abs() / l < 1e-3, "L_v = {l}");
        let p = r.rx_power(100.0);
        assert!((p - 9.895e-10).abs() / p < 1e-3, "P_r = {p}");
    }
}
