//! A minimal multiply-shift hasher for hot simulation containers.
//!
//! The simulator's inner-loop maps are keyed by small dense integers
//! (node ids, message ids, contact pairs), where SipHash's DoS
//! resistance buys nothing while its per-lookup setup cost shows up in
//! whole-run profiles. This is the fxhash word step: rotate, xor,
//! multiply by a golden-ratio-derived odd constant.
//!
//! Determinism: a hasher choice can only affect program output through
//! *iteration order*. Every container switched to these types either
//! never iterates (pure point lookups) or sorts what it drains before
//! use (contact diffs, snapshot exports, due-pair scans) — audited at
//! each use site. Lookup results themselves are hasher-independent.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The fxhash multiplier (64-bit golden ratio, forced odd).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-word-at-a-time fxhash state.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher(u64);

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(SEED);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_words_hash_distinctly() {
        let hash = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_ne!(hash(0), hash(1));
        assert_ne!(hash(1), hash(1 << 32));
        // Order-sensitive across multi-word keys (pair keys).
        let pair = |a: u32, b: u32| {
            let mut h = FxHasher::default();
            h.write_u32(a);
            h.write_u32(b);
            h.finish()
        };
        assert_ne!(pair(1, 2), pair(2, 1));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&500), Some(&1000));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        s.insert((3, 4));
        assert!(s.contains(&(3, 4)));
        assert!(!s.contains(&(4, 3)));
    }
}
