//! Versioned, checksummed snapshot files.
//!
//! A snapshot file is one header line followed by a JSON body:
//!
//! ```text
//! DTNSNAP v2 <fnv128-hex-of-body>\n
//! { ... }
//! ```
//!
//! The header names the format version and carries a 128-bit FNV-1a digest
//! of the body, so truncation, bit rot, and version drift are all detected
//! *before* the body is parsed — a damaged snapshot is reported as a typed
//! [`SnapshotError`], never a panic or a silently wrong world. Writes go
//! through a `.tmp` file renamed into place, so a crash mid-write can never
//! leave a half-written file at the target path (the same discipline as the
//! sweep cache).
//!
//! This module owns only the *container*; what goes inside is any
//! [`Serialize`]/[`Deserialize`] document — the kernel's
//! [`crate::kernel::WorldState`], or a workload-level wrapper around it.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// Magic token opening every snapshot header.
pub const MAGIC: &str = "DTNSNAP";

/// The format version this build writes and accepts. Bump it whenever the
/// body layout changes shape incompatibly, and record the change in
/// DESIGN.md §14 (CI enforces that pairing).
pub const FORMAT_VERSION: &str = "v2";

/// Why a snapshot could not be written or read back.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying filesystem operation failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The OS error.
        source: io::Error,
    },
    /// The file ends before the header line does — a crash mid-write or a
    /// truncated copy.
    Truncated {
        /// The file involved.
        path: PathBuf,
    },
    /// The header parses but the body's checksum does not match it.
    Corrupt {
        /// The file involved.
        path: PathBuf,
        /// The digest the header promised.
        expected: String,
        /// The digest the body actually hashes to.
        actual: String,
    },
    /// The header names a format version this build does not speak.
    VersionMismatch {
        /// The file involved.
        path: PathBuf,
        /// The version the file claims.
        found: String,
    },
    /// The file is not a snapshot at all (bad magic) or its body does not
    /// parse as the expected document.
    Malformed {
        /// The file involved.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// The snapshot parsed cleanly but does not belong to the world being
    /// restored (different scenario, seed, or node count).
    Mismatch {
        /// What disagreed.
        detail: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { path, source } => {
                write!(f, "snapshot I/O failed at {}: {source}", path.display())
            }
            SnapshotError::Truncated { path } => {
                write!(f, "snapshot {} is truncated", path.display())
            }
            SnapshotError::Corrupt {
                path,
                expected,
                actual,
            } => write!(
                f,
                "snapshot {} is corrupt: header digest {expected}, body hashes to {actual}",
                path.display()
            ),
            SnapshotError::VersionMismatch { path, found } => write!(
                f,
                "snapshot {} is format {found}, this build speaks {FORMAT_VERSION}",
                path.display()
            ),
            SnapshotError::Malformed { path, detail } => {
                write!(f, "snapshot {} is malformed: {detail}", path.display())
            }
            SnapshotError::Mismatch { detail } => {
                write!(f, "snapshot does not match this run: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Serializes `doc` and writes it to `path` atomically (tmp-then-rename).
///
/// # Errors
///
/// [`SnapshotError::Io`] when the write or rename fails, or
/// [`SnapshotError::Malformed`] when the document itself cannot be
/// serialized (non-finite floats).
pub fn save<T: Serialize>(doc: &T, path: &Path) -> Result<(), SnapshotError> {
    let body = serde_json::to_string(&doc.to_value()).map_err(|e| SnapshotError::Malformed {
        path: path.to_path_buf(),
        detail: format!("document does not serialize: {e}"),
    })?;
    let header = format!("{MAGIC} {FORMAT_VERSION} {}\n", fnv128_hex(body.as_bytes()));
    let mut contents = header;
    contents.push_str(&body);
    let tmp = tmp_path(path);
    let io_err = |source| SnapshotError::Io {
        path: path.to_path_buf(),
        source,
    };
    std::fs::write(&tmp, contents.as_bytes())
        .and_then(|()| std::fs::rename(&tmp, path))
        .map_err(io_err)
}

/// Reads, verifies, and parses the snapshot at `path`.
///
/// Verification order: the header line must be complete
/// ([`SnapshotError::Truncated`]), open with [`MAGIC`]
/// ([`SnapshotError::Malformed`]), name [`FORMAT_VERSION`]
/// ([`SnapshotError::VersionMismatch`]), and its digest must match the
/// body ([`SnapshotError::Corrupt`]) — only then is the body parsed.
///
/// # Errors
///
/// Any [`SnapshotError`] variant except [`SnapshotError::Mismatch`]
/// (pairing the document with a world is the caller's job).
pub fn load<T: Deserialize>(path: &Path) -> Result<T, SnapshotError> {
    let raw = std::fs::read_to_string(path).map_err(|source| SnapshotError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    let Some((header, body)) = raw.split_once('\n') else {
        return Err(SnapshotError::Truncated {
            path: path.to_path_buf(),
        });
    };
    let mut fields = header.split_ascii_whitespace();
    let malformed = |detail: String| SnapshotError::Malformed {
        path: path.to_path_buf(),
        detail,
    };
    let magic = fields.next().unwrap_or("");
    if magic != MAGIC {
        return Err(malformed(format!(
            "header opens with `{magic}`, expected `{MAGIC}`"
        )));
    }
    let version = fields
        .next()
        .ok_or_else(|| malformed("header is missing the version field".to_string()))?;
    if version != FORMAT_VERSION {
        return Err(SnapshotError::VersionMismatch {
            path: path.to_path_buf(),
            found: version.to_string(),
        });
    }
    let expected = fields
        .next()
        .ok_or_else(|| malformed("header is missing the checksum field".to_string()))?;
    let actual = fnv128_hex(body.as_bytes());
    if expected != actual {
        return Err(SnapshotError::Corrupt {
            path: path.to_path_buf(),
            expected: expected.to_string(),
            actual,
        });
    }
    let value = serde_json::from_str(body)
        .map_err(|e| malformed(format!("body is not valid JSON: {e}")))?;
    T::from_value(&value).map_err(|e| malformed(format!("body does not parse: {e}")))
}

/// The sibling `.tmp` path used for atomic writes. Appends rather than
/// replaces the extension so `world.snap` and `world.json` cannot collide
/// on one tmp file.
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

/// 128-bit FNV-1a, hex-encoded: stable across platforms and runs, same
/// digest the sweep cache uses for payload integrity.
fn fnv128_hex(bytes: &[u8]) -> String {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut state = OFFSET;
    for &b in bytes {
        state ^= u128::from(b);
        state = state.wrapping_mul(PRIME);
    }
    format!("{state:032x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Doc {
        name: String,
        steps: u64,
        ratio: f64,
    }

    fn doc() -> Doc {
        Doc {
            name: "demo".to_string(),
            steps: 12_345,
            ratio: 0.625,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dtn-snap-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn round_trips_and_cleans_tmp() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("world.snap");
        save(&doc(), &path).expect("save");
        assert!(!tmp_path(&path).exists(), "tmp renamed away");
        let back: Doc = load(&path).expect("load");
        assert_eq!(back, doc());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_is_typed_not_a_panic() {
        let dir = tmpdir("trunc");
        let path = dir.join("world.snap");
        save(&doc(), &path).expect("save");
        let raw = std::fs::read_to_string(&path).unwrap();
        // Cut inside the header: no newline survives.
        std::fs::write(&path, &raw[..10]).unwrap();
        assert!(matches!(
            load::<Doc>(&path),
            Err(SnapshotError::Truncated { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_body_is_detected_by_checksum() {
        let dir = tmpdir("corrupt");
        let path = dir.join("world.snap");
        save(&doc(), &path).expect("save");
        let raw = std::fs::read_to_string(&path).unwrap();
        let flipped = raw.replace("12345", "12346");
        assert_ne!(raw, flipped, "the body actually changed");
        std::fs::write(&path, flipped).unwrap();
        let err = load::<Doc>(&path).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_version_is_rejected() {
        let dir = tmpdir("version");
        let path = dir.join("world.snap");
        save(&doc(), &path).expect("save");
        let raw = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, raw.replacen(FORMAT_VERSION, "v999", 1)).unwrap();
        let err = load::<Doc>(&path).unwrap_err();
        match err {
            SnapshotError::VersionMismatch { found, .. } => assert_eq!(found, "v999"),
            other => panic!("expected VersionMismatch, got {other}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_snapshot_file_is_malformed() {
        let dir = tmpdir("magic");
        let path = dir.join("not-a-snap.txt");
        std::fs::write(&path, "hello world\nmore text\n").unwrap();
        assert!(matches!(
            load::<Doc>(&path),
            Err(SnapshotError::Malformed { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io() {
        let err = load::<Doc>(Path::new("/nonexistent/dir/world.snap")).unwrap_err();
        assert!(matches!(err, SnapshotError::Io { .. }), "{err}");
    }
}
