//! Planar geometry for node positions and movement.

use serde::{Deserialize, Serialize};

/// A position on the simulation plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Meters east of the origin.
    pub x: f64,
    /// Meters north of the origin.
    pub y: f64,
}

impl Point {
    /// The origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from coordinates in meters.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    ///
    /// ```
    /// use dtn_sim::geometry::Point;
    /// let d = Point::new(0.0, 0.0).distance_to(Point::new(3.0, 4.0));
    /// assert_eq!(d, 5.0);
    /// ```
    #[must_use]
    pub fn distance_to(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when
    /// only comparisons are needed).
    #[must_use]
    pub fn distance_sq_to(self, other: Point) -> f64 {
        (self.x - other.x).powi(2) + (self.y - other.y).powi(2)
    }

    /// A point moved `dist` meters from `self` toward `target`.
    ///
    /// If `dist` meets or exceeds the distance to `target`, returns `target`
    /// exactly (no overshoot).
    #[must_use]
    pub fn step_toward(self, target: Point, dist: f64) -> Point {
        let total = self.distance_to(target);
        if total <= dist || total == 0.0 {
            return target;
        }
        let f = dist / total;
        Point::new(
            self.x + (target.x - self.x) * f,
            self.y + (target.y - self.y) * f,
        )
    }
}

/// An axis-aligned rectangular world area `[0, width] x [0, height]`, meters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Area {
    /// East–west extent in meters.
    pub width: f64,
    /// North–south extent in meters.
    pub height: f64,
}

impl Area {
    /// Creates an area.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not strictly positive and finite.
    #[must_use]
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0 && width.is_finite() && height.is_finite(),
            "area dimensions must be positive and finite"
        );
        Area { width, height }
    }

    /// A square area covering `sq_km` square kilometers.
    ///
    /// The paper's scenarios use a 5 km² square field (Table 5.1).
    #[must_use]
    pub fn square_km(sq_km: f64) -> Self {
        let side = (sq_km * 1_000_000.0).sqrt();
        Area::new(side, side)
    }

    /// Whether `p` lies inside the area (inclusive of the boundary).
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= 0.0 && p.y >= 0.0 && p.x <= self.width && p.y <= self.height
    }

    /// Clamps `p` onto the area.
    #[must_use]
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(p.x.clamp(0.0, self.width), p.y.clamp(0.0, self.height))
    }

    /// Surface in square meters.
    #[must_use]
    pub fn surface_m2(&self) -> f64 {
        self.width * self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance_to(b), b.distance_to(a));
        assert_eq!(a.distance_to(b), 5.0);
        assert_eq!(a.distance_sq_to(b), 25.0);
    }

    #[test]
    fn step_toward_does_not_overshoot() {
        let a = Point::ORIGIN;
        let b = Point::new(10.0, 0.0);
        assert_eq!(a.step_toward(b, 4.0), Point::new(4.0, 0.0));
        assert_eq!(a.step_toward(b, 100.0), b);
        assert_eq!(b.step_toward(b, 1.0), b, "stepping toward self stays put");
    }

    #[test]
    fn square_km_has_right_surface() {
        let area = Area::square_km(5.0);
        assert!((area.surface_m2() - 5_000_000.0).abs() < 1e-6);
        assert!((area.width - area.height).abs() < 1e-9);
    }

    #[test]
    fn contains_and_clamp() {
        let area = Area::new(100.0, 50.0);
        assert!(area.contains(Point::new(0.0, 0.0)));
        assert!(area.contains(Point::new(100.0, 50.0)));
        assert!(!area.contains(Point::new(100.1, 0.0)));
        assert_eq!(area.clamp(Point::new(-5.0, 60.0)), Point::new(0.0, 50.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_area_rejected() {
        let _ = Area::new(0.0, 10.0);
    }
}
