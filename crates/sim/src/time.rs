//! Simulation clock types.
//!
//! The simulator is time-stepped: a [`SimTime`] is an absolute number of
//! seconds since the start of the run, and a [`SimDuration`] is a span of
//! seconds. Both are thin newtypes over `f64` ([C-NEWTYPE]) so that absolute
//! times and spans cannot be confused at call sites.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// An absolute simulation time, in seconds since the start of the run.
///
/// ```
/// use dtn_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(90.0);
/// assert_eq!(t.as_secs(), 90.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

/// A span of simulation time, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimDuration(f64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds since the start of the run.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative"
        );
        SimTime(secs)
    }

    /// Seconds since the start of the run.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// Returns [`SimDuration::ZERO`] when `earlier` is later than `self`
    /// rather than producing a negative span.
    #[must_use]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration((self.0 - earlier.0).max(0.0))
    }

    /// Returns the later of the two times.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration must be finite and non-negative"
        );
        SimDuration(secs)
    }

    /// Creates a duration from whole minutes.
    #[must_use]
    pub fn from_mins(mins: f64) -> Self {
        Self::from_secs(mins * 60.0)
    }

    /// Creates a duration from whole hours.
    #[must_use]
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// The span in seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Whether the span is zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: f64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0 as u64;
        write!(
            f,
            "{:02}:{:02}:{:02}",
            total / 3600,
            (total / 60) % 60,
            total % 60
        )
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(10.0);
        let d = SimDuration::from_secs(5.0);
        assert_eq!((t + d).as_secs(), 15.0);
        assert_eq!(((t + d) - t).as_secs(), 5.0);
    }

    #[test]
    fn duration_since_clamps_to_zero() {
        let early = SimTime::from_secs(1.0);
        let late = SimTime::from_secs(9.0);
        assert_eq!(early.duration_since(late), SimDuration::ZERO);
        assert_eq!(late.duration_since(early).as_secs(), 8.0);
    }

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimDuration::from_mins(2.0).as_secs(), 120.0);
        assert_eq!(SimDuration::from_hours(1.0).as_secs(), 3600.0);
    }

    #[test]
    fn display_formats_wall_clock() {
        assert_eq!(SimTime::from_secs(3725.0).to_string(), "01:02:05");
        assert_eq!(SimDuration::from_secs(2.25).to_string(), "2.2s");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn max_picks_later() {
        let a = SimTime::from_secs(3.0);
        let b = SimTime::from_secs(7.0);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10.0);
        assert_eq!((d * 0.5).as_secs(), 5.0);
        assert_eq!((d / 2.0).as_secs(), 5.0);
        assert!((d + d).as_secs() == 20.0);
        assert!(!d.is_zero());
        assert!(SimDuration::ZERO.is_zero());
    }
}
