//! Deterministic random-number streams.
//!
//! Every stochastic component of the simulator draws from a [`SimRng`]
//! derived from the scenario seed via [`SimRng::stream`]. Substreams are
//! decorrelated by hashing the parent seed with a stream label, so adding a
//! new consumer of randomness does not perturb the draws seen by existing
//! consumers — a property the per-figure experiments rely on when comparing
//! protocol variants under identical workloads.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// A seeded random-number generator for one simulation component.
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: SmallRng,
}

/// The complete serializable position of a [`SimRng`] stream: the
/// derivation seed plus the raw generator words. Restoring from this
/// resumes the stream at exactly the draw it was captured at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngState {
    /// The stream's derivation seed (`SimRng::seed`).
    pub seed: u64,
    /// xoshiro256++ state word 0.
    pub s0: u64,
    /// xoshiro256++ state word 1.
    pub s1: u64,
    /// xoshiro256++ state word 2.
    pub s2: u64,
    /// xoshiro256++ state word 3.
    pub s3: u64,
}

/// Mixes two 64-bit values with the SplitMix64 finalizer.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates the root generator for a scenario seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimRng {
            seed,
            inner: SmallRng::seed_from_u64(mix(seed, 0x5151_5151)),
        }
    }

    /// The seed this generator was created from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Captures the stream's exact position for a snapshot.
    #[must_use]
    pub fn state(&self) -> RngState {
        let s = self.inner.state();
        RngState {
            seed: self.seed,
            s0: s[0],
            s1: s[1],
            s2: s[2],
            s3: s[3],
        }
    }

    /// Rebuilds a stream at the exact position captured by [`SimRng::state`].
    #[must_use]
    pub fn from_state(state: RngState) -> Self {
        SimRng {
            seed: state.seed,
            inner: SmallRng::from_state([state.s0, state.s1, state.s2, state.s3]),
        }
    }

    /// Derives an independent substream labelled by `label`.
    ///
    /// Streams with the same `(seed, label)` always produce the same draws,
    /// regardless of what other streams were derived or consumed.
    ///
    /// ```
    /// use dtn_sim::rng::SimRng;
    /// use rand::Rng;
    ///
    /// let root = SimRng::new(42);
    /// let mut a1 = root.stream(7);
    /// let mut a2 = root.stream(7);
    /// assert_eq!(a1.gen::<u64>(), a2.gen::<u64>());
    /// ```
    #[must_use]
    pub fn stream(&self, label: u64) -> SimRng {
        let child = mix(self.seed, label.wrapping_add(1));
        SimRng {
            seed: child,
            inner: SmallRng::seed_from_u64(child),
        }
    }

    /// Derives a per-node substream (`label` namespaced away from
    /// component streams).
    #[must_use]
    pub fn node_stream(&self, node_index: usize) -> SimRng {
        self.stream(0x4E4F_4445_0000_0000 | node_index as u64)
    }

    /// Returns `true` with probability `p` (clamped into `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.inner.gen::<f64>() < p
    }

    /// A uniform draw in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        assert!(low < high, "uniform range must be non-empty");
        self.inner.gen_range(low..high)
    }

    /// A uniform integer draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot draw an index from an empty range");
        self.inner.gen_range(0..n)
    }

    /// Chooses `k` distinct indices out of `[0, n)` (Floyd's algorithm).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn choose_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot choose {k} distinct items out of {n}");
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        for j in n - k..n {
            let t = self.inner.gen_range(0..=j);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        chosen
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn streams_are_reproducible() {
        let root = SimRng::new(1);
        let xs: Vec<u64> = (0..4).map(|_| root.stream(9).next_u64()).collect();
        assert!(xs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn different_labels_decorrelate() {
        let root = SimRng::new(1);
        assert_ne!(root.stream(1).next_u64(), root.stream(2).next_u64());
        assert_ne!(
            root.node_stream(0).next_u64(),
            root.node_stream(1).next_u64()
        );
    }

    #[test]
    fn different_seeds_decorrelate() {
        assert_ne!(SimRng::new(1).next_u64(), SimRng::new(2).next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = SimRng::new(4);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits} hits");
    }

    #[test]
    fn choose_indices_distinct_and_in_range() {
        let mut rng = SimRng::new(5);
        for _ in 0..50 {
            let picked = rng.choose_indices(20, 7);
            assert_eq!(picked.len(), 7);
            let set: HashSet<usize> = picked.iter().copied().collect();
            assert_eq!(set.len(), 7, "indices must be distinct");
            assert!(picked.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn choose_all_is_permutation() {
        let mut rng = SimRng::new(6);
        let picked = rng.choose_indices(10, 10);
        let set: HashSet<usize> = picked.into_iter().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn choose_too_many_panics() {
        SimRng::new(7).choose_indices(3, 4);
    }

    #[test]
    fn state_round_trip_resumes_stream_exactly() {
        let mut rng = SimRng::new(99).stream(4);
        for _ in 0..17 {
            let _ = rng.next_u64();
        }
        let state = rng.state();
        let mut resumed = SimRng::from_state(state);
        assert_eq!(resumed.seed(), rng.seed());
        for _ in 0..64 {
            assert_eq!(resumed.next_u64(), rng.next_u64());
        }
    }

    #[test]
    fn state_survives_serde() {
        let mut rng = SimRng::new(5);
        let _ = rng.next_u64();
        let state = rng.state();
        let json = serde_json::to_string(&state).expect("serializes");
        let back: RngState = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, state);
    }
}
