//! Property-based tests over the credit mechanism's invariants.

use proptest::prelude::*;

use dtn_incentive::ledger::{TokenLedger, Tokens};
use dtn_incentive::params::{IncentiveParams, Role};
use dtn_incentive::promise::{
    hardware_incentive, software_incentive, tag_incentive, total_promise, SoftwareFactors,
};
use dtn_incentive::settlement::{award, relay_prepayment, AwardInputs, FirstDeliveryRegistry};
use dtn_sim::message::MessageId;
use dtn_sim::radio::RadioConfig;
use dtn_sim::world::NodeId;

fn arb_factors() -> impl Strategy<Value = SoftwareFactors> {
    (
        0.0f64..20.0, // receiver_interest_sum
        0.0f64..20.0, // max_connected_interest_sum
        0u64..5_000_000,
        1u64..5_000_000,
        0.0f64..1.0,
        0.01f64..1.0,
        1u8..5,
        1u8..5,
        1u8..4,
    )
        .prop_map(
            |(recv, max_conn, size, max_size, q, q_m, r_u, r_v, p_s)| SoftwareFactors {
                receiver_interest_sum: recv,
                max_connected_interest_sum: max_conn,
                size_bytes: size,
                max_size_bytes: max_size,
                quality: q,
                max_quality: q_m.max(q),
                sender_role: Role::new(r_u),
                receiver_role: Role::new(r_v),
                source_priority: p_s,
            },
        )
}

proptest! {
    /// Token transfers conserve the network total under any sequence of
    /// transfers and best-effort settlements.
    #[test]
    fn ledger_conserves_total(
        n in 2usize..12,
        initial in 0.0f64..500.0,
        ops in prop::collection::vec((0usize..12, 0usize..12, 0.0f64..100.0, prop::bool::ANY), 0..200)
    ) {
        let mut ledger = TokenLedger::new(n, Tokens::new(initial));
        let expected_total = initial * n as f64;
        for (from, to, amount, exact) in ops {
            let from = NodeId((from % n) as u32);
            let to = NodeId((to % n) as u32);
            if exact {
                let _ = ledger.transfer(from, to, Tokens::new(amount));
            } else {
                let _ = ledger.transfer_up_to(from, to, Tokens::new(amount));
            }
            prop_assert!(ledger.total().amount().is_finite());
            prop_assert!((ledger.total().amount() - expected_total).abs() < 1e-6);
            for i in 0..n {
                let balance = ledger.balance(NodeId(i as u32)).amount();
                prop_assert!(balance.is_finite());
                prop_assert!(balance >= -1e-9);
            }
        }
    }

    /// transfer_up_to never moves more than requested nor more than the
    /// payer holds.
    #[test]
    fn transfer_up_to_bounds(balance in 0.0f64..100.0, request in 0.0f64..200.0) {
        let mut ledger = TokenLedger::new(2, Tokens::new(balance));
        let moved = ledger.transfer_up_to(NodeId(0), NodeId(1), Tokens::new(request));
        prop_assert!(moved.amount() <= request + 1e-12);
        prop_assert!(moved.amount() <= balance + 1e-12);
        prop_assert!((ledger.balance(NodeId(0)).amount() - (balance - moved.amount())).abs() < 1e-9);
    }

    /// The software incentive is always within `[0, I_m]`.
    #[test]
    fn software_incentive_bounded(f in arb_factors()) {
        let params = IncentiveParams::paper_default();
        let i_s = software_incentive(&f, &params);
        prop_assert!(i_s.amount() >= 0.0);
        prop_assert!(i_s.amount() <= params.max_incentive + 1e-9);
    }

    /// Monotonicity: raising the receiver's interest sum (with the max
    /// fixed) never lowers the software incentive.
    #[test]
    fn software_incentive_monotone_in_interest(
        f in arb_factors(),
        bump in 0.0f64..5.0
    ) {
        let params = IncentiveParams::paper_default();
        // Pin the connected max above both values so P_v stays comparable.
        let mut lo = f;
        lo.max_connected_interest_sum = 40.0;
        let mut hi = lo;
        hi.receiver_interest_sum = lo.receiver_interest_sum + bump;
        prop_assert!(
            software_incentive(&hi, &params) >= software_incentive(&lo, &params)
        );
    }

    /// Total promise is capped at I_m and is at least each component's
    /// min with the cap.
    #[test]
    fn total_promise_cap(s in 0.0f64..30.0, h in 0.0f64..30.0) {
        let params = IncentiveParams::paper_default();
        let total = total_promise(Tokens::new(s), Tokens::new(h), &params);
        prop_assert!(total.amount() <= params.max_incentive + 1e-12);
        prop_assert!(total.amount() <= s + h + 1e-12);
        prop_assert!(total.amount() >= s.min(params.max_incentive) - 1e-12);
    }

    /// Hardware incentive: non-negative, linear in airtime, and the relay
    /// form is never below the source form.
    #[test]
    fn hardware_incentive_shape(airtime in 0.0f64..100.0, distance in 0.0f64..200.0) {
        let params = IncentiveParams::paper_default();
        let radio = RadioConfig::paper_default();
        let src = hardware_incentive(&radio, airtime, distance, true, &params);
        let relay = hardware_incentive(&radio, airtime, distance, false, &params);
        prop_assert!(src.amount() >= 0.0);
        prop_assert!(relay >= src);
        let double = hardware_incentive(&radio, airtime * 2.0, distance, true, &params);
        prop_assert!((double.amount() - 2.0 * src.amount()).abs() < 1e-9);
    }

    /// Tag incentive: monotone in the count, capped at I_c.
    #[test]
    fn tag_incentive_monotone_capped(a in 0usize..100, b in 0usize..100) {
        let params = IncentiveParams::paper_default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(tag_incentive(hi, &params) >= tag_incentive(lo, &params));
        prop_assert!(tag_incentive(hi, &params).amount() <= params.tag_cap + 1e-12);
    }

    /// The award never exceeds promise + tag reward, never falls below the
    /// floor fraction of it, and is monotone in the deliverer's rating.
    #[test]
    fn award_bounds_and_monotonicity(
        promise in 0.0f64..10.0,
        tags in 0.0f64..5.0,
        path in prop::collection::vec(0.0f64..5.0, 0..6),
        rating in 0.0f64..5.0,
        bump in 0.0f64..5.0
    ) {
        let params = IncentiveParams::paper_default();
        let base = AwardInputs {
            promise: Tokens::new(promise),
            tag_reward: Tokens::new(tags),
            path_ratings: path.clone(),
            deliverer_rating: rating,
        };
        let a = award(&base, &params);
        let ceiling = promise + tags;
        prop_assert!(a.amount() <= ceiling + 1e-9);
        prop_assert!(a.amount() >= params.award_floor * ceiling - 1e-9);
        let better = AwardInputs {
            deliverer_rating: (rating + bump).min(params.max_rating),
            ..base
        };
        prop_assert!(award(&better, &params) >= a);
    }

    /// Relay prepayment triggers iff strictly above the threshold, and is
    /// exactly the configured fraction.
    #[test]
    fn prepayment_threshold_exact(mean in 0.0f64..1.0, promise in 0.0f64..10.0) {
        let params = IncentiveParams::paper_default();
        match relay_prepayment(mean, Tokens::new(promise), &params) {
            Some(p) => {
                prop_assert!(mean > params.relay_threshold);
                prop_assert!((p.amount() - promise * params.prepay_fraction).abs() < 1e-12);
            }
            None => prop_assert!(mean <= params.relay_threshold),
        }
    }

    /// The first-delivery registry grants each (message, destination) pair
    /// exactly once regardless of claim order or repetition.
    #[test]
    fn registry_grants_once(
        claims in prop::collection::vec((0u64..10, 0u32..10), 0..200)
    ) {
        let mut reg = FirstDeliveryRegistry::new();
        let mut seen = std::collections::HashSet::new();
        for (m, d) in claims {
            let fresh = reg.try_claim(MessageId(m), NodeId(d));
            prop_assert_eq!(fresh, seen.insert((m, d)));
        }
        prop_assert_eq!(reg.len(), seen.len());
    }
}
