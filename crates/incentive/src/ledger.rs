//! The token ledger.
//!
//! Every node is endowed with the same number of incentive tokens at start
//! (Table 5.1: 200) and pays peers for message receptions, relay services
//! and content enrichment. The economy is *closed*: tokens only move between
//! nodes, so the network total is invariant — a property the proptest suite
//! checks over arbitrary transaction sequences.

use std::fmt;

use serde::{Deserialize, Serialize};

use dtn_sim::world::NodeId;

/// An amount of incentive tokens (non-negative, fractional).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Tokens(f64);

impl Tokens {
    /// Zero tokens.
    pub const ZERO: Tokens = Tokens(0.0);

    /// Creates an amount.
    ///
    /// # Panics
    ///
    /// Panics if `amount` is negative or not finite.
    #[must_use]
    pub fn new(amount: f64) -> Self {
        assert!(
            amount.is_finite() && amount >= 0.0,
            "token amounts must be finite and non-negative"
        );
        Tokens(amount)
    }

    /// The raw amount.
    #[must_use]
    pub fn amount(self) -> f64 {
        self.0
    }

    /// Whether the amount is zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Saturating subtraction (never below zero).
    #[must_use]
    pub fn saturating_sub(self, rhs: Tokens) -> Tokens {
        Tokens((self.0 - rhs.0).max(0.0))
    }

    /// Scales the amount by a non-negative factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[must_use]
    pub fn scaled(self, factor: f64) -> Tokens {
        Tokens::new(self.0 * factor)
    }

    /// The smaller of two amounts.
    #[must_use]
    pub fn min(self, other: Tokens) -> Tokens {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }
}

impl std::ops::Add for Tokens {
    type Output = Tokens;

    fn add(self, rhs: Tokens) -> Tokens {
        Tokens(self.0 + rhs.0)
    }
}

impl std::iter::Sum for Tokens {
    fn sum<I: Iterator<Item = Tokens>>(iter: I) -> Tokens {
        Tokens(iter.map(|t| t.0).sum())
    }
}

impl fmt::Display for Tokens {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} tok", self.0)
    }
}

/// Error returned when a payer cannot cover a transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsufficientTokens {
    /// The node that could not pay.
    pub payer: NodeId,
    /// What the payment required.
    pub required: Tokens,
    /// What the payer had.
    pub available: Tokens,
}

impl fmt::Display for InsufficientTokens {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "node {} cannot pay {} (has {})",
            self.payer, self.required, self.available
        )
    }
}

impl std::error::Error for InsufficientTokens {}

/// Per-node token balances with a closed-economy invariant.
#[derive(Debug, Clone)]
pub struct TokenLedger {
    balances: Vec<f64>,
    transfers: u64,
}

impl TokenLedger {
    /// Creates a ledger with every node holding `initial` tokens.
    #[must_use]
    pub fn new(node_count: usize, initial: Tokens) -> Self {
        TokenLedger {
            balances: vec![initial.amount(); node_count],
            transfers: 0,
        }
    }

    /// The balance of `node`.
    #[must_use]
    pub fn balance(&self, node: NodeId) -> Tokens {
        Tokens(self.balances[node.index()])
    }

    /// Whether `node` can pay `amount` in full.
    #[must_use]
    pub fn can_pay(&self, node: NodeId, amount: Tokens) -> bool {
        self.balances[node.index()] + 1e-12 >= amount.amount()
    }

    /// Moves `amount` from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Fails with [`InsufficientTokens`] when `from` cannot cover the full
    /// amount; no tokens move in that case.
    pub fn transfer(
        &mut self,
        from: NodeId,
        to: NodeId,
        amount: Tokens,
    ) -> Result<(), InsufficientTokens> {
        if !self.can_pay(from, amount) {
            return Err(InsufficientTokens {
                payer: from,
                required: amount,
                available: self.balance(from),
            });
        }
        if from != to {
            // Credit exactly what is debited: `can_pay` tolerates a 1e-12
            // float residue, so clamping the debit at zero while crediting
            // the nominal amount would mint that residue and break the
            // closed-economy invariant. Move min(balance, amount) instead.
            let moved = amount.amount().min(self.balances[from.index()]);
            self.balances[from.index()] -= moved;
            self.balances[to.index()] += moved;
        }
        self.transfers += 1;
        Ok(())
    }

    /// Transfers what the payer can afford, up to `amount`; returns the
    /// amount actually moved. Used for best-effort settlements where a
    /// partially funded award is better than none.
    pub fn transfer_up_to(&mut self, from: NodeId, to: NodeId, amount: Tokens) -> Tokens {
        let affordable = Tokens(self.balances[from.index()].max(0.0)).min(amount);
        if affordable.is_zero() {
            return Tokens::ZERO;
        }
        self.transfer(from, to, affordable)
            .expect("affordable amount is payable");
        affordable
    }

    /// Total tokens in the network (invariant under transfers).
    #[must_use]
    pub fn total(&self) -> Tokens {
        Tokens(self.balances.iter().sum())
    }

    /// Number of successful transfers executed.
    #[must_use]
    pub fn transfer_count(&self) -> u64 {
        self.transfers
    }

    /// Nodes with a zero (or numerically negligible) balance.
    #[must_use]
    pub fn broke_nodes(&self) -> Vec<NodeId> {
        self.balances
            .iter()
            .enumerate()
            .filter(|(_, &b)| b < 1e-9)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Captures the ledger's state for a whole-world snapshot.
    #[must_use]
    pub fn export_state(&self) -> TokenLedgerState {
        TokenLedgerState {
            balances: self.balances.clone(),
            transfers: self.transfers,
        }
    }

    /// Overwrites the ledger from a snapshot.
    ///
    /// # Errors
    ///
    /// Errors when the snapshot's node count differs from this ledger's.
    pub fn import_state(&mut self, state: &TokenLedgerState) -> Result<(), String> {
        if state.balances.len() != self.balances.len() {
            return Err(format!(
                "snapshot holds {} balances for a {}-node ledger",
                state.balances.len(),
                self.balances.len()
            ));
        }
        self.balances.clone_from(&state.balances);
        self.transfers = state.transfers;
        Ok(())
    }
}

/// Serialized form of a [`TokenLedger`]: per-node balances in node order
/// plus the lifetime transfer count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenLedgerState {
    /// Balance of each node, in node order.
    pub balances: Vec<f64>,
    /// Successful transfers executed so far.
    pub transfers: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_conserve_total() {
        let mut l = TokenLedger::new(3, Tokens::new(100.0));
        assert_eq!(l.total().amount(), 300.0);
        l.transfer(NodeId(0), NodeId(1), Tokens::new(30.0))
            .expect("payable");
        assert_eq!(l.balance(NodeId(0)).amount(), 70.0);
        assert_eq!(l.balance(NodeId(1)).amount(), 130.0);
        assert_eq!(l.total().amount(), 300.0);
        assert_eq!(l.transfer_count(), 1);
    }

    #[test]
    fn overdraft_rejected_without_movement() {
        let mut l = TokenLedger::new(2, Tokens::new(10.0));
        let err = l
            .transfer(NodeId(0), NodeId(1), Tokens::new(10.5))
            .expect_err("overdraft");
        assert_eq!(err.payer, NodeId(0));
        assert_eq!(err.required.amount(), 10.5);
        assert_eq!(l.balance(NodeId(0)).amount(), 10.0);
        assert_eq!(l.transfer_count(), 0);
    }

    #[test]
    fn transfer_up_to_moves_what_is_affordable() {
        let mut l = TokenLedger::new(2, Tokens::new(10.0));
        let moved = l.transfer_up_to(NodeId(0), NodeId(1), Tokens::new(25.0));
        assert_eq!(moved.amount(), 10.0);
        assert_eq!(l.balance(NodeId(0)).amount(), 0.0);
        assert_eq!(l.balance(NodeId(1)).amount(), 20.0);
        let moved = l.transfer_up_to(NodeId(0), NodeId(1), Tokens::new(1.0));
        assert!(moved.is_zero());
    }

    #[test]
    fn self_transfer_is_a_no_op_on_balances() {
        let mut l = TokenLedger::new(1, Tokens::new(5.0));
        l.transfer(NodeId(0), NodeId(0), Tokens::new(3.0))
            .expect("payable");
        assert_eq!(l.balance(NodeId(0)).amount(), 5.0);
    }

    #[test]
    fn exact_boundary_transfers_conserve_exactly() {
        // Transfers at the exact balance boundary (where the epsilon-
        // tolerant can_pay is most permissive) must keep the total exact.
        let mut l = TokenLedger::new(2, Tokens::new(10.0));
        l.transfer(NodeId(0), NodeId(1), Tokens::new(10.0))
            .expect("payable");
        l.transfer(NodeId(1), NodeId(0), Tokens::new(20.0))
            .expect("payable");
        l.transfer(NodeId(0), NodeId(1), Tokens::new(20.0))
            .expect("payable");
        assert_eq!(l.total().amount(), 20.0);
        assert_eq!(l.balance(NodeId(0)).amount(), 0.0);
    }

    #[test]
    fn broke_nodes_detected() {
        let mut l = TokenLedger::new(2, Tokens::new(5.0));
        l.transfer(NodeId(1), NodeId(0), Tokens::new(5.0))
            .expect("payable");
        assert_eq!(l.broke_nodes(), vec![NodeId(1)]);
    }

    #[test]
    fn token_arithmetic() {
        let a = Tokens::new(3.0);
        let b = Tokens::new(5.0);
        assert_eq!((a + b).amount(), 8.0);
        assert_eq!(b.saturating_sub(a).amount(), 2.0);
        assert_eq!(a.saturating_sub(b), Tokens::ZERO);
        assert_eq!(a.scaled(2.0).amount(), 6.0);
        assert_eq!(a.min(b), a);
        assert_eq!([a, b].into_iter().sum::<Tokens>().amount(), 8.0);
        assert!(Tokens::ZERO.is_zero());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_tokens_rejected() {
        let _ = Tokens::new(-1.0);
    }
}
