//! Constants of the incentive mechanism (Paper I, Table 3.1 and §3.2).

use serde::{Deserialize, Serialize};

/// A user's role in the deployment hierarchy (`R_u` in Table 3.1).
///
/// Rank 1 is the top of the hierarchy (e.g. a sergeant in the battlefield
/// scenario); larger numbers are further down (soldier = 2, …). Algorithm 3
/// divides by the *sender's* rank, so higher-ranked senders promise more.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Role(u8);

impl Role {
    /// The top of the hierarchy.
    pub const TOP: Role = Role(1);

    /// Creates a role with rank `rank` (1 = top).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is zero (ranks start at 1).
    #[must_use]
    pub fn new(rank: u8) -> Self {
        assert!(rank >= 1, "role ranks start at 1");
        Role(rank)
    }

    /// The numeric rank (1 = top of hierarchy).
    #[must_use]
    pub fn rank(self) -> u8 {
        self.0
    }

    /// Whether `self` outranks `other` (smaller rank = higher authority).
    #[must_use]
    pub fn outranks(self, other: Role) -> bool {
        self.0 < other.0
    }
}

impl Default for Role {
    fn default() -> Self {
        Role(2)
    }
}

/// Tunable constants of the credit mechanism.
///
/// Everything the thesis leaves symbolic gets a named default here; the
/// experiment harness sweeps the ones the evaluation varies (initial
/// tokens, Fig. 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IncentiveParams {
    /// `I_m`: the maximum incentive promise for one message.
    pub max_incentive: f64,
    /// Tokens every node starts with (Table 5.1 default: 200).
    pub initial_tokens: f64,
    /// `I_c`: cap on the total per-message reward for added tags.
    pub tag_cap: f64,
    /// `z`: per-tag reward as a fraction of `I_m` (`I_tk = z·I_m`, 0<z<1).
    pub tag_z: f64,
    /// `c`: proportionality constant converting joules into tokens for the
    /// hardware factor (`I_h = c·P_t·t`, resp. `c·(P_t+P_r)·t`).
    pub energy_c: f64,
    /// α in the award formula `I_v` (must exceed 0.5: own observation
    /// dominates relayed path ratings).
    pub award_alpha: f64,
    /// Relay threshold (Table 5.1: 0.8): a receiving relay whose mean tag
    /// weight exceeds this prepays a fraction of the promise to the sender.
    pub relay_threshold: f64,
    /// The fraction of the promise prepaid when above the relay threshold.
    pub prepay_fraction: f64,
    /// Floor on the reputation-scaled award fraction, so even poorly rated
    /// deliverers receive "a percentage of incentive" (Paper I, §1.3.3).
    pub award_floor: f64,
    /// `r_m`: the maximum device rating (Fig. 5.4 uses a 0–5 scale).
    pub max_rating: f64,
}

impl IncentiveParams {
    /// Paper-faithful defaults (Table 5.1 plus documented choices for the
    /// symbolic constants — see `DESIGN.md` §2).
    #[must_use]
    pub fn paper_default() -> Self {
        IncentiveParams {
            max_incentive: 10.0,
            initial_tokens: 200.0,
            tag_cap: 5.0,
            tag_z: 0.1,
            energy_c: 1.0,
            award_alpha: 0.6,
            relay_threshold: 0.8,
            prepay_fraction: 0.25,
            award_floor: 0.2,
            max_rating: 5.0,
        }
    }

    /// Validates parameter invariants.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint (α ∈ (0.5, 1], z ∈ (0, 1), fractions in [0, 1], positive
    /// caps).
    pub fn validate(&self) -> Result<(), String> {
        if self.max_incentive <= 0.0 {
            return Err("max_incentive must be positive".into());
        }
        if self.initial_tokens < 0.0 {
            return Err("initial_tokens must be non-negative".into());
        }
        if !(self.tag_z > 0.0 && self.tag_z < 1.0) {
            return Err("tag_z must lie in (0, 1)".into());
        }
        if self.tag_cap < 0.0 {
            return Err("tag_cap must be non-negative".into());
        }
        if !(self.award_alpha > 0.5 && self.award_alpha <= 1.0) {
            return Err("award_alpha must lie in (0.5, 1] (paper: α > 0.5)".into());
        }
        if !(0.0..=1.0).contains(&self.relay_threshold) {
            return Err("relay_threshold must lie in [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.prepay_fraction) {
            return Err("prepay_fraction must lie in [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.award_floor) {
            return Err("award_floor must lie in [0, 1]".into());
        }
        if self.max_rating <= 0.0 {
            return Err("max_rating must be positive".into());
        }
        if self.energy_c < 0.0 {
            return Err("energy_c must be non-negative".into());
        }
        Ok(())
    }
}

impl Default for IncentiveParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_order_by_rank() {
        assert!(Role::TOP.outranks(Role::new(2)));
        assert!(!Role::new(2).outranks(Role::new(2)));
        assert!(!Role::new(3).outranks(Role::new(2)));
        assert_eq!(Role::new(4).rank(), 4);
    }

    #[test]
    #[should_panic(expected = "ranks start at 1")]
    fn rank_zero_rejected() {
        let _ = Role::new(0);
    }

    #[test]
    fn paper_defaults_validate() {
        assert_eq!(IncentiveParams::paper_default().validate(), Ok(()));
        assert_eq!(IncentiveParams::paper_default().initial_tokens, 200.0);
        assert_eq!(IncentiveParams::paper_default().relay_threshold, 0.8);
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = IncentiveParams::paper_default();
        p.award_alpha = 0.5;
        assert!(p.validate().is_err(), "α must exceed 0.5");
        let mut p = IncentiveParams::paper_default();
        p.tag_z = 1.0;
        assert!(p.validate().is_err());
        let mut p = IncentiveParams::paper_default();
        p.max_incentive = 0.0;
        assert!(p.validate().is_err());
        let mut p = IncentiveParams::paper_default();
        p.prepay_fraction = 1.5;
        assert!(p.validate().is_err());
    }
}
