//! Incentive-promise computation (Paper I, §3.2, Algorithm 3).
//!
//! When a node forwards a message it attaches a *promise*: the number of
//! tokens the eventual destination will pay the deliverer. The promise is
//! the capped sum of a **software** factor (message size, quality, priority,
//! the receiver's interest level, the sender's role) and a **hardware**
//! factor (energy spent, via the Friis equation), plus a separate reward for
//! relevant enrichment tags.

use serde::{Deserialize, Serialize};

use dtn_sim::radio::RadioConfig;

use crate::ledger::Tokens;
use crate::params::{IncentiveParams, Role};

/// Inputs to the software-factor computation for one `(message, receiver)`
/// pair (symbols from Table 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoftwareFactors {
    /// `Σw`: sum of the receiver's interest weights over the message tags.
    pub receiver_interest_sum: f64,
    /// `w_m`: the maximum such sum among all devices currently connected to
    /// the sender (so the best-placed receiver gets `P_v = 1`).
    pub max_connected_interest_sum: f64,
    /// `S`: message size in bytes.
    pub size_bytes: u64,
    /// `S_m`: the largest message size in the sender's buffer.
    pub max_size_bytes: u64,
    /// `Q`: message quality in `[0, 1]`.
    pub quality: f64,
    /// `Q_m`: the best quality among the sender's buffered messages.
    pub max_quality: f64,
    /// `R_u`: the sender's role.
    pub sender_role: Role,
    /// `R_v`: the receiver's role.
    pub receiver_role: Role,
    /// `P_s`: the priority level assigned by the source (1 = high).
    pub source_priority: u8,
}

/// Computes `I_s`, the software-factor incentive promise (Algorithm 3).
///
/// Two branches, verbatim from the paper:
///
/// * `P_v = 0` **and** the sender outranks the receiver **and** the message
///   is high priority → promise the maximum (`I_m`): a superior pushing a
///   critical message to a subordinate who cannot deliver it *yet* still
///   promises everything, because carrying it spreads the TSRs.
/// * Otherwise, with `P_v = Σw / w_m`:
///   `I_s = (¼(S/S_m + Q/Q_m) + ½·P_v/(R_u·P_s)) · I_m` — data-centric and
///   user-centric factors weighted half each.
///
/// `P_v > 0` with `w_m = 0` cannot occur (the receiver's own sum bounds the
/// max); zero maxima in the data terms degrade to zero contribution.
#[must_use]
pub fn software_incentive(f: &SoftwareFactors, params: &IncentiveParams) -> Tokens {
    let i_m = params.max_incentive;
    let p_v = if f.max_connected_interest_sum > 0.0 {
        (f.receiver_interest_sum / f.max_connected_interest_sum).clamp(0.0, 1.0)
    } else {
        0.0
    };
    if p_v == 0.0 {
        return if f.sender_role.outranks(f.receiver_role) && f.source_priority == 1 {
            Tokens::new(i_m)
        } else {
            Tokens::ZERO
        };
    }
    let size_term = if f.max_size_bytes > 0 {
        (f.size_bytes as f64 / f.max_size_bytes as f64).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let quality_term = if f.max_quality > 0.0 {
        (f.quality / f.max_quality).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let user_term = p_v / (f64::from(f.sender_role.rank()) * f64::from(f.source_priority.max(1)));
    let i_s = (0.25 * (size_term + quality_term) + 0.5 * user_term) * i_m;
    Tokens::new(i_s.clamp(0.0, i_m))
}

/// Computes `I_h`, the hardware-factor incentive.
///
/// * Source delivering directly: `I_h = c · P_t · t`.
/// * Relay delivering: `I_h = c · (P_t + P_r) · t` — the relay is
///   compensated for both receiving the message earlier and transmitting it
///   now. `P_r` comes from the Friis equation at `distance_m`.
#[must_use]
pub fn hardware_incentive(
    radio: &RadioConfig,
    airtime_secs: f64,
    distance_m: f64,
    deliverer_is_source: bool,
    params: &IncentiveParams,
) -> Tokens {
    let t = airtime_secs.max(0.0);
    let p_t = radio.tx_power_w;
    let power = if deliverer_is_source {
        p_t
    } else {
        p_t + radio.rx_power(distance_m)
    };
    Tokens::new(params.energy_c * power * t)
}

/// Computes the total promise `I = min(I_s + I_h, I_m)`.
#[must_use]
pub fn total_promise(software: Tokens, hardware: Tokens, params: &IncentiveParams) -> Tokens {
    (software + hardware).min(Tokens::new(params.max_incentive))
}

/// Computes `I_t`, the reward for enrichment tags the destination found
/// relevant: `I_t = min(Σ I_tk, I_c)` with `I_tk = z·I_m` per tag.
#[must_use]
pub fn tag_incentive(relevant_tag_count: usize, params: &IncentiveParams) -> Tokens {
    let per_tag = params.tag_z * params.max_incentive;
    Tokens::new((relevant_tag_count as f64 * per_tag).min(params.tag_cap))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> IncentiveParams {
        IncentiveParams::paper_default()
    }

    fn base_factors() -> SoftwareFactors {
        SoftwareFactors {
            receiver_interest_sum: 1.0,
            max_connected_interest_sum: 2.0,
            size_bytes: 500_000,
            max_size_bytes: 1_000_000,
            quality: 0.8,
            max_quality: 1.0,
            sender_role: Role::new(2),
            receiver_role: Role::new(2),
            source_priority: 1,
        }
    }

    #[test]
    fn else_branch_hand_computed() {
        // P_v = 0.5; size term = 0.5; quality term = 0.8;
        // I_s = (0.25·(0.5+0.8) + 0.5·0.5/(2·1))·10 = (0.325 + 0.125)·10 = 4.5.
        let i_s = software_incentive(&base_factors(), &params());
        assert!((i_s.amount() - 4.5).abs() < 1e-12, "got {i_s}");
    }

    #[test]
    fn superior_high_priority_promises_max_when_pv_zero() {
        let f = SoftwareFactors {
            receiver_interest_sum: 0.0,
            sender_role: Role::TOP,
            receiver_role: Role::new(2),
            source_priority: 1,
            ..base_factors()
        };
        assert_eq!(software_incentive(&f, &params()).amount(), 10.0);
    }

    #[test]
    fn pv_zero_without_rank_or_priority_promises_nothing() {
        // Same rank → no max promise.
        let f = SoftwareFactors {
            receiver_interest_sum: 0.0,
            ..base_factors()
        };
        assert_eq!(software_incentive(&f, &params()), Tokens::ZERO);
        // Outranked but low priority → nothing either.
        let f = SoftwareFactors {
            receiver_interest_sum: 0.0,
            sender_role: Role::TOP,
            source_priority: 3,
            ..base_factors()
        };
        assert_eq!(software_incentive(&f, &params()), Tokens::ZERO);
    }

    #[test]
    fn bigger_and_better_messages_promise_more() {
        let small = software_incentive(
            &SoftwareFactors {
                size_bytes: 100_000,
                ..base_factors()
            },
            &params(),
        );
        let large = software_incentive(
            &SoftwareFactors {
                size_bytes: 1_000_000,
                ..base_factors()
            },
            &params(),
        );
        assert!(
            large > small,
            "larger messages cost more buffer → larger promise"
        );

        let poor = software_incentive(
            &SoftwareFactors {
                quality: 0.2,
                ..base_factors()
            },
            &params(),
        );
        let good = software_incentive(
            &SoftwareFactors {
                quality: 1.0,
                ..base_factors()
            },
            &params(),
        );
        assert!(good > poor, "higher quality → larger promise");
    }

    #[test]
    fn high_priority_and_high_rank_promise_more() {
        let high = software_incentive(&base_factors(), &params());
        let low = software_incentive(
            &SoftwareFactors {
                source_priority: 3,
                ..base_factors()
            },
            &params(),
        );
        assert!(high > low);

        let sergeant = software_incentive(
            &SoftwareFactors {
                sender_role: Role::TOP,
                ..base_factors()
            },
            &params(),
        );
        assert!(sergeant > high, "top-rank sender promises more");
    }

    #[test]
    fn software_incentive_never_exceeds_max() {
        let f = SoftwareFactors {
            receiver_interest_sum: 5.0,
            max_connected_interest_sum: 5.0,
            size_bytes: 1,
            max_size_bytes: 1,
            quality: 1.0,
            max_quality: 1.0,
            sender_role: Role::TOP,
            receiver_role: Role::new(2),
            source_priority: 1,
        };
        // (0.25·2 + 0.5·1)·I_m = I_m exactly.
        assert_eq!(software_incentive(&f, &params()).amount(), 10.0);
    }

    #[test]
    fn hardware_incentive_source_vs_relay() {
        let radio = RadioConfig::paper_default();
        let p = params();
        // 1 MB at 250 kB/s = 4 s of airtime.
        let src = hardware_incentive(&radio, 4.0, 50.0, true, &p);
        let relay = hardware_incentive(&radio, 4.0, 50.0, false, &p);
        assert!((src.amount() - 0.4).abs() < 1e-12, "c·P_t·t = 1·0.1·4");
        assert!(relay > src, "relay also compensated for reception");
        assert_eq!(
            hardware_incentive(&radio, 0.0, 50.0, true, &p),
            Tokens::ZERO
        );
    }

    #[test]
    fn total_promise_is_capped_at_max() {
        let p = params();
        let i = total_promise(Tokens::new(9.0), Tokens::new(5.0), &p);
        assert_eq!(i.amount(), 10.0);
        let i = total_promise(Tokens::new(3.0), Tokens::new(0.5), &p);
        assert_eq!(i.amount(), 3.5);
    }

    #[test]
    fn tag_incentive_caps_at_ic() {
        let p = params(); // z = 0.1, I_m = 10 → 1 token per tag; I_c = 5.
        assert_eq!(tag_incentive(0, &p), Tokens::ZERO);
        assert_eq!(tag_incentive(3, &p).amount(), 3.0);
        assert_eq!(tag_incentive(5, &p).amount(), 5.0);
        assert_eq!(tag_incentive(50, &p).amount(), 5.0, "capped at I_c");
    }
}
