//! Delivery settlement: who gets paid, and how much.
//!
//! The mechanism avoids feedback messages entirely by paying **only the
//! first deliverer** of a message to each destination (Paper I, §1): a relay
//! knows at hand-off time that its promise is conditional on winning the
//! race. [`FirstDeliveryRegistry`] enforces the at-most-once property.
//!
//! The amount actually paid scales the promise by the deliverer's
//! reputation (Paper I, §3.3):
//!
//! ```text
//! I_v = ((1−α)·(Σ r_{m_v,x})/N + α·r_{v,u}/r_m) · (I + I_t),   α > 0.5
//! ```
//!
//! where the first term averages the ratings the message gathered along its
//! path and the second is the destination's own device rating for the
//! deliverer. Both terms are normalized by the maximum rating `r_m` so the
//! award is a *fraction* of the promise (the thesis writes the first term
//! unnormalized, which would let an award exceed its promise five-fold on a
//! 0–5 scale; see DESIGN.md interpretation note 5), and the fraction is
//! floored at [`crate::params::IncentiveParams::award_floor`] so poorly
//! rated deliverers still receive "a percentage of incentive".

use std::collections::HashSet;

use dtn_sim::message::MessageId;
use dtn_sim::world::NodeId;

use crate::ledger::Tokens;
use crate::params::IncentiveParams;

/// Enforces the only-the-first-deliverer-is-paid rule.
///
/// Claims are idempotent per `(message, destination)` pair, which is what
/// makes settlement safe under redelivery: when the recovery layer retries
/// an aborted or corrupted transfer and the same message reaches the same
/// destination twice, only the first arrival's [`try_claim`] returns
/// `true` — the redelivered copy settles nothing.
///
/// [`try_claim`]: FirstDeliveryRegistry::try_claim
#[derive(Debug, Default)]
pub struct FirstDeliveryRegistry {
    claimed: HashSet<(MessageId, NodeId)>,
}

impl FirstDeliveryRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts to claim the delivery of `message` to `destination`.
    ///
    /// Returns `true` exactly once per pair — the caller that gets `true`
    /// pays/collects; later deliverers of the same message to the same
    /// destination get `false` and no payment.
    pub fn try_claim(&mut self, message: MessageId, destination: NodeId) -> bool {
        self.claimed.insert((message, destination))
    }

    /// Whether the pair was already claimed.
    #[must_use]
    pub fn is_claimed(&self, message: MessageId, destination: NodeId) -> bool {
        self.claimed.contains(&(message, destination))
    }

    /// Number of settled deliveries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.claimed.len()
    }

    /// Whether nothing has been settled yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.claimed.is_empty()
    }

    /// The claimed `(message, destination)` pairs, sorted, for a
    /// whole-world snapshot.
    #[must_use]
    pub fn export_state(&self) -> Vec<(MessageId, NodeId)> {
        let mut pairs: Vec<(MessageId, NodeId)> = self.claimed.iter().copied().collect();
        pairs.sort_unstable();
        pairs
    }

    /// Overwrites the registry with the pairs captured by
    /// [`FirstDeliveryRegistry::export_state`].
    pub fn import_state(&mut self, pairs: &[(MessageId, NodeId)]) {
        self.claimed = pairs.iter().copied().collect();
    }
}

/// Inputs to the award computation for one delivery.
#[derive(Debug, Clone, PartialEq)]
pub struct AwardInputs {
    /// The promise `I` attached to the message for this deliverer.
    pub promise: Tokens,
    /// The tag reward `I_t` for enrichment tags the destination accepted.
    pub tag_reward: Tokens,
    /// Ratings `r_{m_v,x}` gathered by the message along its path (may be
    /// empty when no intermediate node rated it).
    pub path_ratings: Vec<f64>,
    /// `r_{v,u}`: the destination's device rating for the deliverer, on the
    /// `[0, r_m]` scale.
    pub deliverer_rating: f64,
}

/// Computes `I_v`, the tokens the destination owes the deliverer.
///
/// The award fraction is
/// `(1−α)·mean(path_ratings)/r_m + α·deliverer_rating/r_m`, clamped into
/// `[award_floor, 1]`. With no path ratings the deliverer's own rating
/// carries full weight (the destination has nothing else to go on).
#[must_use]
pub fn award(inputs: &AwardInputs, params: &IncentiveParams) -> Tokens {
    let r_m = params.max_rating;
    let own = (inputs.deliverer_rating / r_m).clamp(0.0, 1.0);
    let fraction = if inputs.path_ratings.is_empty() {
        own
    } else {
        let mean_path = inputs.path_ratings.iter().sum::<f64>() / inputs.path_ratings.len() as f64;
        let path = (mean_path / r_m).clamp(0.0, 1.0);
        (1.0 - params.award_alpha) * path + params.award_alpha * own
    };
    let fraction = fraction.clamp(params.award_floor, 1.0);
    (inputs.promise + inputs.tag_reward).scaled(fraction)
}

/// Computes the prepayment a receiving relay owes the sender when its mean
/// tag weight exceeds the relay threshold (Table 5.1: 0.8).
///
/// Returns `None` when the threshold is not met (the hand-off is free for
/// the receiver; it will recoup from the destination if it wins the race).
#[must_use]
pub fn relay_prepayment(
    receiver_mean_weight: f64,
    promise: Tokens,
    params: &IncentiveParams,
) -> Option<Tokens> {
    if receiver_mean_weight > params.relay_threshold {
        Some(promise.scaled(params.prepay_fraction))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> IncentiveParams {
        IncentiveParams::paper_default()
    }

    #[test]
    fn first_claim_wins_later_claims_lose() {
        let mut reg = FirstDeliveryRegistry::new();
        assert!(reg.is_empty());
        assert!(reg.try_claim(MessageId(1), NodeId(2)));
        assert!(
            !reg.try_claim(MessageId(1), NodeId(2)),
            "second deliverer unpaid"
        );
        assert!(
            reg.try_claim(MessageId(1), NodeId(3)),
            "other destination independent"
        );
        assert!(
            reg.try_claim(MessageId(2), NodeId(2)),
            "other message independent"
        );
        assert!(reg.is_claimed(MessageId(1), NodeId(2)));
        assert_eq!(reg.len(), 3);
    }

    /// Redelivery regression: a retried transfer can deliver the same
    /// message to the same destination again (possibly via a different
    /// deliverer). However many times and from whomever it arrives, only
    /// the first claim pays.
    #[test]
    fn redelivered_copies_never_claim_twice() {
        let mut reg = FirstDeliveryRegistry::new();
        assert!(reg.try_claim(MessageId(7), NodeId(1)), "first arrival pays");
        for _redelivery in 0..5 {
            assert!(
                !reg.try_claim(MessageId(7), NodeId(1)),
                "redelivered copy must not settle again"
            );
        }
        assert_eq!(reg.len(), 1, "exactly one settlement recorded");
    }

    #[test]
    fn award_hand_computed() {
        // α = 0.6, r_m = 5; path ratings mean 4.0 → 0.8; own rating 3.0 → 0.6.
        // fraction = 0.4·0.8 + 0.6·0.6 = 0.68; award = 0.68·(10+2) = 8.16.
        let inputs = AwardInputs {
            promise: Tokens::new(10.0),
            tag_reward: Tokens::new(2.0),
            path_ratings: vec![5.0, 3.0],
            deliverer_rating: 3.0,
        };
        let a = award(&inputs, &params());
        assert!((a.amount() - 8.16).abs() < 1e-12, "got {a}");
    }

    #[test]
    fn award_without_path_ratings_uses_own_rating() {
        let inputs = AwardInputs {
            promise: Tokens::new(10.0),
            tag_reward: Tokens::ZERO,
            path_ratings: vec![],
            deliverer_rating: 5.0,
        };
        assert_eq!(award(&inputs, &params()).amount(), 10.0);
    }

    #[test]
    fn award_floored_for_pariahs() {
        let inputs = AwardInputs {
            promise: Tokens::new(10.0),
            tag_reward: Tokens::ZERO,
            path_ratings: vec![0.0],
            deliverer_rating: 0.0,
        };
        // fraction clamps to the floor (0.2) → 2 tokens.
        assert_eq!(award(&inputs, &params()).amount(), 2.0);
    }

    #[test]
    fn award_never_exceeds_promise_plus_tags() {
        let inputs = AwardInputs {
            promise: Tokens::new(7.0),
            tag_reward: Tokens::new(3.0),
            path_ratings: vec![500.0], // hostile input, clamped
            deliverer_rating: 500.0,
        };
        assert_eq!(award(&inputs, &params()).amount(), 10.0);
    }

    #[test]
    fn better_reputation_earns_more() {
        let mk = |r| AwardInputs {
            promise: Tokens::new(10.0),
            tag_reward: Tokens::ZERO,
            path_ratings: vec![2.5],
            deliverer_rating: r,
        };
        assert!(award(&mk(4.5), &params()) > award(&mk(1.5), &params()));
    }

    #[test]
    fn relay_prepayment_threshold() {
        let p = params();
        let promise = Tokens::new(8.0);
        assert_eq!(
            relay_prepayment(0.8, promise, &p),
            None,
            "must strictly exceed"
        );
        let pre = relay_prepayment(0.81, promise, &p).expect("above threshold");
        assert_eq!(pre.amount(), 2.0, "25% of the promise");
        assert_eq!(relay_prepayment(0.2, promise, &p), None);
    }
}
