//! # dtn-incentive
//!
//! The credit half of the paper's credit-and-reputation incentive mechanism
//! (Jethawa & Madria, ICDCS 2017 / MDM 2018):
//!
//! * [`ledger`] — per-node token balances in a closed economy (every node
//!   starts with the Table 5.1 endowment of 200 tokens);
//! * [`promise`] — the incentive promise attached at forwarding time:
//!   software factors (Algorithm 3), hardware factors (Friis energy), and
//!   the enrichment-tag reward;
//! * [`settlement`] — the first-deliverer-wins registry, the reputation-
//!   scaled award `I_v`, and the relay-threshold prepayment;
//! * [`params`] — every tunable constant, with the paper's defaults.
//!
//! The mechanics are deliberately protocol-agnostic: `dtn-core` wires them
//! into the ChitChat data flow, and the ablation benches toggle individual
//! pieces.
//!
//! ## Example
//!
//! ```
//! use dtn_incentive::prelude::*;
//! use dtn_sim::world::NodeId;
//!
//! let params = IncentiveParams::paper_default();
//! let mut ledger = TokenLedger::new(2, Tokens::new(params.initial_tokens));
//! ledger.transfer(NodeId(0), NodeId(1), Tokens::new(25.0))?;
//! assert_eq!(ledger.balance(NodeId(0)).amount(), 175.0);
//! assert_eq!(ledger.total().amount(), 400.0); // closed economy
//! # Ok::<(), dtn_incentive::ledger::InsufficientTokens>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ledger;
pub mod params;
pub mod promise;
pub mod settlement;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::ledger::{InsufficientTokens, TokenLedger, Tokens};
    pub use crate::params::{IncentiveParams, Role};
    pub use crate::promise::{
        hardware_incentive, software_incentive, tag_incentive, total_promise, SoftwareFactors,
    };
    pub use crate::settlement::{award, relay_prepayment, AwardInputs, FirstDeliveryRegistry};
}
