//! The `dtn` binary: thin shell over [`dtn_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match dtn_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", dtn_cli::usage());
            std::process::exit(2);
        }
    };
    match dtn_cli::execute(command) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
