//! The `dtn` binary: thin shell over [`dtn_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match dtn_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", dtn_cli::usage());
            std::process::exit(2);
        }
    };
    // Ctrl-C latches a flag the run loop polls: the run flushes its
    // metrics report and a final snapshot, then exits 130 (128 + SIGINT)
    // so scripts can tell an interrupted run from a finished one.
    let sigint = dtn_cli::install_sigint_flag();
    match dtn_cli::execute_with_interrupt(command, &|| {
        sigint.load(std::sync::atomic::Ordering::Relaxed)
    }) {
        Ok(outcome) => {
            print!("{}", outcome.text);
            if outcome.interrupted {
                std::process::exit(130);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
