//! # dtn-cli
//!
//! The `dtn` command-line tool: run incentive-mechanism scenarios from
//! JSON config files without writing Rust.
//!
//! ```text
//! dtn template > scenario.json        # a commented starting point
//! dtn validate scenario.json          # check a config
//! dtn run scenario.json               # run the Incentive arm, print stats
//! dtn run scenario.json --arm chitchat --seed 7 --json out.json
//! dtn compare scenario.json --seeds 3 # paired Incentive-vs-ChitChat
//! ```
//!
//! All the command logic lives in this library so it is unit-testable;
//! `main.rs` only forwards `std::env::args`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt::Write as _;

use dtn_sim::stats::RunSummary;
use dtn_workloads::paper::{reduced_scenario, seeds_for, QUICK_SEEDS};
use dtn_workloads::prelude::{
    read_snapshot, run_with_snapshots, BackendKind, RunMeta, RunProgress, SnapshotPolicy,
};
use dtn_workloads::runner::{compare_arms, compare_overlays};
use dtn_workloads::scenario::{Arm, Scenario};

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print a scenario template to stdout.
    Template,
    /// Validate a scenario file.
    Validate {
        /// Path to the scenario JSON.
        path: String,
    },
    /// Run one arm of a scenario.
    Run {
        /// Path to the scenario JSON.
        path: String,
        /// Which arm to run.
        arm: Arm,
        /// The seed.
        seed: u64,
        /// Optional path for a JSON result dump.
        json_out: Option<String>,
        /// Optional path for a kernel event trace dump.
        trace_out: Option<String>,
        /// Optional fault-injection spec (overrides the scenario's
        /// `chaos` field; see `FaultPlan::from_str` for the grammar).
        chaos: Option<String>,
        /// Optional adversarial strategy-mix spec (overrides the
        /// scenario's `strategies` field; see `StrategyMix::from_str`
        /// for the grammar).
        strategies: Option<String>,
        /// Run with the cross-cutting invariant checker enabled.
        check_invariants: bool,
        /// Optional path for a wall-clock metrics JSON dump
        /// (`--metrics-out`); enables the phase profiler.
        metrics_out: Option<String>,
        /// Print the per-phase wall-clock table (`--verbose`); enables
        /// the phase profiler.
        verbose: bool,
        /// Optional retry-cap override (`--retry-max`); any recovery flag
        /// enables transfer recovery if the scenario did not.
        retry_max: Option<u32>,
        /// Optional backoff-base override in seconds (`--backoff-base`).
        backoff_base: Option<f64>,
        /// Optional checkpoint-resume toggle (`--resume on|off`).
        resume: Option<bool>,
        /// Optional kernel shard-count override (`--threads N`); output is
        /// byte-identical at any value.
        threads: Option<usize>,
        /// Optional simulation-core override (`--kernel-mode
        /// event-driven|time-stepped`); both cores are byte-identical.
        kernel_mode: Option<dtn_sim::events::KernelMode>,
        /// Optional periodic-snapshot cadence in simulated seconds
        /// (`--snapshot-every`); requires `--snapshot-dir`.
        snapshot_every: Option<f64>,
        /// Optional directory for whole-world snapshots
        /// (`--snapshot-dir`); also receives the final snapshot a SIGINT
        /// flushes.
        snapshot_dir: Option<String>,
        /// Optional snapshot file to resume from (`--resume-from`); the
        /// run continues byte-identically to never having stopped.
        resume_from: Option<String>,
    },
    /// Run both arms and print the paired comparison.
    Compare {
        /// Path to the scenario JSON.
        path: String,
        /// How many seeds to average over (the quick set first, then the
        /// deterministic extension `404, 505, …`).
        seeds: usize,
        /// Optional path for a wall-clock metrics JSON dump
        /// (`--metrics-out`); enables the phase profiler.
        metrics_out: Option<String>,
        /// Print the per-phase wall-clock table (`--verbose`); enables
        /// the phase profiler.
        verbose: bool,
        /// Optional kernel shard-count override (`--threads N`); output is
        /// byte-identical at any value.
        threads: Option<usize>,
        /// Optional sweep-executor pool size (`--sweep-workers N`); both
        /// arms' seeds run through one work queue. Output is
        /// byte-identical at any value.
        sweep_workers: Option<usize>,
        /// Persist the executor's run cache under `results/.sweep-cache/`
        /// (`--sweep-cache`); repeat comparisons become cache hits.
        sweep_cache: bool,
        /// Optional routing backend (`--router <spec>`): the comparison
        /// becomes "incentive overlay on vs off" over that substrate.
        /// Overrides the scenario's `backend` field; defaults to chitchat
        /// (the paper's arms).
        router: Option<BackendKind>,
    },
    /// Print usage.
    Help,
}

/// Parses a command line (excluding `argv[0]`).
///
/// # Errors
///
/// Returns a usage-style message for unknown commands, missing arguments
/// or malformed flag values.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let cmd = match it.next().map(String::as_str) {
        None | Some("help" | "--help" | "-h") => return Ok(Command::Help),
        Some(c) => c,
    };
    match cmd {
        "template" => Ok(Command::Template),
        "validate" => {
            let path = it.next().ok_or("validate needs a scenario path")?.clone();
            Ok(Command::Validate { path })
        }
        "run" => {
            let path = it.next().ok_or("run needs a scenario path")?.clone();
            let mut arm = Arm::Incentive;
            let mut seed = QUICK_SEEDS[0];
            let mut json_out = None;
            let mut trace_out = None;
            let mut chaos = None;
            let mut strategies = None;
            let mut check_invariants = false;
            let mut metrics_out = None;
            let mut verbose = false;
            let mut retry_max = None;
            let mut backoff_base = None;
            let mut resume = None;
            let mut threads = None;
            let mut kernel_mode = None;
            let mut snapshot_every = None;
            let mut snapshot_dir = None;
            let mut resume_from = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--arm" => {
                        arm = match it.next().map(String::as_str) {
                            Some("incentive") => Arm::Incentive,
                            Some("chitchat") => Arm::ChitChat,
                            other => {
                                return Err(format!(
                                    "--arm must be 'incentive' or 'chitchat', got {other:?}"
                                ))
                            }
                        };
                    }
                    "--seed" => {
                        seed = it
                            .next()
                            .ok_or("--seed needs a value")?
                            .parse()
                            .map_err(|e| format!("bad --seed: {e}"))?;
                    }
                    "--json" => {
                        json_out = Some(it.next().ok_or("--json needs a path")?.clone());
                    }
                    "--trace" => {
                        trace_out = Some(it.next().ok_or("--trace needs a path")?.clone());
                    }
                    "--chaos" => {
                        let spec = it.next().ok_or("--chaos needs a fault spec")?.clone();
                        // Parse eagerly so a typo fails at the prompt, not
                        // minutes into a run.
                        spec.parse::<dtn_sim::faults::FaultPlan>()
                            .map_err(|e| format!("bad --chaos: {e}"))?;
                        chaos = Some(spec);
                    }
                    "--strategies" => {
                        let spec = it.next().ok_or("--strategies needs a mix spec")?.clone();
                        // Parse eagerly so a typo fails at the prompt, not
                        // minutes into a run.
                        spec.parse::<dtn_core::strategy::StrategyMix>()
                            .map_err(|e| format!("bad --strategies: {e}"))?;
                        strategies = Some(spec);
                    }
                    "--check-invariants" => check_invariants = true,
                    "--metrics-out" => {
                        metrics_out = Some(it.next().ok_or("--metrics-out needs a path")?.clone());
                    }
                    "--verbose" => verbose = true,
                    "--retry-max" => {
                        retry_max = Some(
                            it.next()
                                .ok_or("--retry-max needs a count")?
                                .parse()
                                .map_err(|e| format!("bad --retry-max: {e}"))?,
                        );
                    }
                    "--backoff-base" => {
                        let secs: f64 = it
                            .next()
                            .ok_or("--backoff-base needs seconds")?
                            .parse()
                            .map_err(|e| format!("bad --backoff-base: {e}"))?;
                        if !secs.is_finite() || secs < 0.0 {
                            return Err(format!(
                                "--backoff-base must be finite and non-negative, got {secs}"
                            ));
                        }
                        backoff_base = Some(secs);
                    }
                    "--resume" => {
                        resume = match it.next().map(String::as_str) {
                            Some("on") => Some(true),
                            Some("off") => Some(false),
                            other => {
                                return Err(format!(
                                    "--resume must be 'on' or 'off', got {other:?}"
                                ))
                            }
                        };
                    }
                    "--threads" => threads = Some(parse_threads(it.next())?),
                    "--kernel-mode" => {
                        let spec = it.next().ok_or("--kernel-mode needs a core name")?;
                        kernel_mode = Some(
                            spec.parse::<dtn_sim::events::KernelMode>()
                                .map_err(|e| format!("bad --kernel-mode: {e}"))?,
                        );
                    }
                    "--snapshot-every" => {
                        let secs: f64 = it
                            .next()
                            .ok_or("--snapshot-every needs simulated seconds")?
                            .parse()
                            .map_err(|e| format!("bad --snapshot-every: {e}"))?;
                        if !secs.is_finite() || secs <= 0.0 {
                            return Err(format!(
                                "--snapshot-every must be finite and positive, got {secs}"
                            ));
                        }
                        snapshot_every = Some(secs);
                    }
                    "--snapshot-dir" => {
                        snapshot_dir =
                            Some(it.next().ok_or("--snapshot-dir needs a path")?.clone());
                    }
                    "--resume-from" => {
                        resume_from = Some(
                            it.next()
                                .ok_or("--resume-from needs a snapshot path")?
                                .clone(),
                        );
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            if snapshot_every.is_some() && snapshot_dir.is_none() {
                return Err("--snapshot-every needs --snapshot-dir".to_owned());
            }
            Ok(Command::Run {
                path,
                arm,
                seed,
                json_out,
                trace_out,
                chaos,
                strategies,
                check_invariants,
                metrics_out,
                verbose,
                retry_max,
                backoff_base,
                resume,
                threads,
                kernel_mode,
                snapshot_every,
                snapshot_dir,
                resume_from,
            })
        }
        "compare" => {
            let path = it.next().ok_or("compare needs a scenario path")?.clone();
            let mut seeds = QUICK_SEEDS.len();
            let mut metrics_out = None;
            let mut verbose = false;
            let mut threads = None;
            let mut sweep_workers = None;
            let mut sweep_cache = false;
            let mut router = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--router" => {
                        let spec = it.next().ok_or("--router needs a router name")?;
                        router = Some(
                            BackendKind::parse(spec).map_err(|e| format!("bad --router: {e}"))?,
                        );
                    }
                    "--seeds" => {
                        seeds = it
                            .next()
                            .ok_or("--seeds needs a value")?
                            .parse()
                            .map_err(|e| format!("bad --seeds: {e}"))?;
                        if seeds == 0 {
                            return Err("--seeds must be at least 1".to_owned());
                        }
                    }
                    "--metrics-out" => {
                        metrics_out = Some(it.next().ok_or("--metrics-out needs a path")?.clone());
                    }
                    "--verbose" => verbose = true,
                    "--threads" => threads = Some(parse_threads(it.next())?),
                    "--sweep-workers" => {
                        let n: usize = it
                            .next()
                            .ok_or("--sweep-workers needs a count")?
                            .parse()
                            .map_err(|e| format!("bad --sweep-workers: {e}"))?;
                        if n == 0 {
                            return Err("--sweep-workers must be at least 1".to_owned());
                        }
                        sweep_workers = Some(n);
                    }
                    "--sweep-cache" => sweep_cache = true,
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            Ok(Command::Compare {
                path,
                seeds,
                metrics_out,
                verbose,
                threads,
                sweep_workers,
                sweep_cache,
                router,
            })
        }
        other => Err(format!("unknown command {other}; try 'dtn help'")),
    }
}

/// Parses a `--threads` value (a positive shard count).
fn parse_threads(value: Option<&String>) -> Result<usize, String> {
    let n: usize = value
        .ok_or("--threads needs a count")?
        .parse()
        .map_err(|e| format!("bad --threads: {e}"))?;
    if n == 0 {
        return Err("--threads must be at least 1".to_owned());
    }
    Ok(n)
}

/// The usage text.
#[must_use]
pub fn usage() -> &'static str {
    "dtn — delay-tolerant-network incentive-mechanism runner

USAGE:
    dtn template                         print a scenario template (JSON)
    dtn validate <scenario.json>         check a scenario file
    dtn run <scenario.json> [--arm incentive|chitchat] [--seed N]
                            [--json out.json] [--trace out.txt]
                            [--chaos <spec>] [--strategies <spec>]
                            [--check-invariants]
                            [--metrics-out m.json] [--verbose]
                            [--retry-max N] [--backoff-base SECS]
                            [--resume on|off] [--threads N]
                            [--kernel-mode event-driven|time-stepped]
                            [--snapshot-every SIMSECS] [--snapshot-dir DIR]
                            [--resume-from FILE]
    dtn compare <scenario.json> [--seeds N] [--metrics-out m.json] [--verbose]
                                [--threads N] [--sweep-workers N] [--sweep-cache]
                                [--router chitchat|epidemic|direct|spray[:N]|twohop|prophet]
    dtn help

METRICS:
    --metrics-out writes a wall-clock performance report (per-phase timings,
    events/sec throughput, sim-seconds-per-second speedup, peak buffer
    occupancy) as JSON; --verbose prints the phase table to the terminal.
    Either flag enables the kernel phase profiler, which never changes
    simulation results. compare --seeds N past the quick set extends the
    deterministic seed family (101, 202, 303, 404, …).

CHAOS:
    --chaos takes a comma-separated fault spec, e.g.
        --chaos 'crash=4,crashdown=120,wipe,cut=10,cutdown=30,loss=0.02'
    (crash/cut/spike are events per node-hour; loss/corrupt are per-transfer
    probabilities). Identical (scenario, seed, spec) runs replay exactly;
    an invariant-breach report prints the flags needed to reproduce it.
    --check-invariants audits token conservation, rating bounds, buffer
    accounting and energy sanity every 60 simulated steps.

STRATEGIES:
    --strategies assigns economically rational adversary strategies to a
    fraction of the population (overriding the scenario's `strategies`
    field), e.g.
        --strategies 'free=0.2,farm=0.1,white=0.05,minority=0.1,cost=0.05,churn=3600,defense'
    (free/farm/white/minority are population fractions; cost is the
    minority-game per-contact energy cost in tokens; churn is the
    whitewasher identity-churn interval in seconds; 'defense' arms the
    sequenced, reputation-weighted gossip and watchdog custody
    countermeasures). Identical (scenario, seed, spec) runs replay exactly.

RECOVERY:
    Aborted transfers are normally lost. --retry-max N redelivers each
    aborted transfer up to N times with deterministic jittered exponential
    backoff (--backoff-base sets the base delay in seconds); --resume on
    restarts retried transfers from their checkpointed byte offset instead
    of from zero. Any recovery flag enables the recovery layer with
    defaults for the rest; settlement stays exactly-once under redelivery.

SNAPSHOTS:
    --snapshot-dir DIR makes the run crash-resumable: --snapshot-every N
    writes a whole-world snapshot into DIR at every N simulated seconds
    (atomically: tmp-then-rename, checksummed), and SIGINT (Ctrl-C) flushes
    a final snapshot plus any --metrics-out report before exiting with
    status 130. --resume-from FILE rebuilds the interrupted run from a
    snapshot and continues byte-identically to never having stopped —
    traces, summaries and metrics all match the uninterrupted run. The
    resuming command line must name the same scenario, arm, seed and
    instrumentation flags as the interrupted one (the snapshot embeds them
    and the mismatch is a typed error). Profiling a resumed run reports
    wall-clock from the resume point only.

PARALLELISM:
    --threads N shards the kernel's data-parallel step phases (mobility
    stepping, contact detection) over N shards, overriding the
    scenario's `threads` field. Output is byte-identical at any value —
    traces, summaries and metrics match the serial run exactly; only
    wall-clock changes.

KERNEL MODE:
    --kernel-mode picks the simulation core, overriding the scenario's
    `kernel_mode` field: event-driven (the default) detects contacts with
    predicted cell-crossing events so idle geometry costs nothing;
    time-stepped sweeps the whole world every step. Both cores are
    byte-identical — traces, summaries and metrics match exactly. A
    snapshot records the core that wrote it and only resumes on that core.

SWEEPS:
    compare runs both arms' seeds through the sweep executor's worker
    pool. --sweep-workers N sets the pool size (default: CPU cores);
    results aggregate in plan order, so output is byte-identical at any
    value. --sweep-cache persists each (scenario, arm, seed) result under
    results/.sweep-cache/ keyed by content hash; repeating a comparison
    becomes a set of cache hits. Corrupt or stale entries are detected by
    hash and re-run.

ROUTERS:
    compare --router <spec> swaps the routing substrate under the incentive
    overlay: the comparison becomes overlay-on vs overlay-off over that
    router on the identical workload. chitchat (the default) is the paper's
    Incentive-vs-ChitChat arms. The flag overrides the scenario's optional
    `backend` field. Profiling flags apply to the chitchat path only.
"
}

/// Loads and validates a scenario file.
///
/// # Errors
///
/// Returns a message naming the file and the parse or validation failure.
pub fn load_scenario(path: &str) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let scenario: Scenario =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    scenario
        .validate()
        .map_err(|e| format!("{path} is invalid: {e}"))?;
    Ok(scenario)
}

/// The scenario template `dtn template` prints: the reduced-scale paper
/// configuration, pretty-printed.
///
/// # Panics
///
/// Never in practice (the default scenario always serializes).
#[must_use]
pub fn template_json() -> String {
    serde_json::to_string_pretty(&reduced_scenario()).expect("default scenario serializes")
}

/// Formats a run summary for terminal output.
#[must_use]
pub fn format_summary(title: &str, s: &RunSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "  messages created       {}", s.created);
    let _ = writeln!(out, "  expected (msg, dest)   {}", s.expected_pairs);
    let _ = writeln!(out, "  delivered pairs        {}", s.delivered_pairs);
    let _ = writeln!(out, "  delivery ratio         {:.4}", s.delivery_ratio);
    let _ = writeln!(out, "  bonus deliveries       {}", s.bonus_deliveries);
    let _ = writeln!(out, "  transfers completed    {}", s.relays_completed);
    let _ = writeln!(
        out,
        "  bytes moved            {:.1} MB",
        s.relay_bytes as f64 / 1e6
    );
    let _ = writeln!(out, "  mean latency           {:.1} s", s.mean_latency_secs);
    let _ = writeln!(out, "  transfers aborted      {}", s.transfers_aborted);
    let _ = writeln!(out, "  buffer evictions       {}", s.buffer_evictions);
    let _ = writeln!(out, "  ttl expiries           {}", s.ttl_expiries);
    for (level, label) in [(1u8, "high"), (2, "medium"), (3, "low")] {
        if let Some(r) = s.delivery_ratio_by_priority.get(&level) {
            let _ = writeln!(out, "  MDR ({label:<6} priority)  {r:.4}");
        }
    }
    out
}

/// What executing a command produced.
#[derive(Debug)]
pub struct ExecOutcome {
    /// Human-readable output for stdout.
    pub text: String,
    /// Whether a run stopped on the interrupt flag; the caller should
    /// exit with status 130 (128 + SIGINT) after printing.
    pub interrupted: bool,
}

/// Executes a parsed command, writing human output to the returned string.
///
/// # Errors
///
/// Returns the error text to print to stderr (exit code 1).
pub fn execute(command: Command) -> Result<String, String> {
    execute_with_interrupt(command, &|| false).map(|o| o.text)
}

/// [`execute`] with an interrupt flag, polled between simulation steps on
/// the `run` path (other commands ignore it). When the flag fires the run
/// flushes its `--metrics-out` report and — with `--snapshot-dir` — a
/// final whole-world snapshot before returning with `interrupted = true`.
///
/// # Errors
///
/// Returns the error text to print to stderr (exit code 1).
pub fn execute_with_interrupt(
    command: Command,
    interrupt: &dyn Fn() -> bool,
) -> Result<ExecOutcome, String> {
    let done = |text: String| ExecOutcome {
        text,
        interrupted: false,
    };
    match command {
        Command::Help => Ok(done(usage().to_owned())),
        Command::Template => Ok(done(template_json())),
        Command::Validate { path } => {
            let s = load_scenario(&path)?;
            Ok(done(format!(
                "{path} OK: '{}', {} nodes, {:.1} km², {:.1} h, {} messages expected\n",
                s.name,
                s.nodes,
                s.area_km2,
                s.duration_secs / 3600.0,
                s.expected_message_count()
            )))
        }
        Command::Run {
            path,
            arm,
            seed,
            json_out,
            trace_out,
            chaos,
            strategies,
            check_invariants,
            metrics_out,
            verbose,
            retry_max,
            backoff_base,
            resume,
            threads,
            kernel_mode,
            snapshot_every,
            snapshot_dir,
            resume_from,
        } => {
            let mut scenario = load_scenario(&path)?;
            if threads.is_some() {
                scenario.threads = threads;
            }
            if kernel_mode.is_some() {
                scenario.kernel_mode = kernel_mode;
            }
            if let Some(spec) = &chaos {
                let plan = spec
                    .parse::<dtn_sim::faults::FaultPlan>()
                    .map_err(|e| format!("bad --chaos: {e}"))?;
                scenario.chaos = Some(plan);
            }
            if let Some(spec) = &strategies {
                let mix = spec
                    .parse::<dtn_core::strategy::StrategyMix>()
                    .map_err(|e| format!("bad --strategies: {e}"))?;
                scenario.strategies = Some(mix);
            }
            // Recovery overrides: any flag enables recovery (from the
            // scenario's policy, or the defaults) and tweaks that field.
            if retry_max.is_some() || backoff_base.is_some() || resume.is_some() {
                let mut policy = scenario
                    .recovery
                    .unwrap_or_else(dtn_sim::transfer::RecoveryPolicy::default);
                if let Some(n) = retry_max {
                    policy.retry_max = n;
                }
                if let Some(secs) = backoff_base {
                    policy.backoff_base_secs = secs;
                }
                if let Some(on) = resume {
                    policy.resume = on;
                }
                policy
                    .validate()
                    .map_err(|e| format!("bad recovery flags: {e}"))?;
                scenario.recovery = Some(policy);
            }
            // Traced runs bound the log (1M events) so a runaway scenario
            // cannot exhaust memory.
            let capacity = trace_out.as_ref().map(|_| 1_000_000);
            // Audit every 60 simulated steps: the rating-bounds scan is
            // O(nodes²), so a per-step audit would dominate a 100-node run.
            let cadence = check_invariants.then_some(60);
            let profile = metrics_out.is_some() || verbose;
            // Run identity as the snapshot layer records it: the snapshot
            // embeds this and a resumed command line must rebuild it
            // exactly, or the dynamic state would be restored into a
            // different world.
            let meta = RunMeta {
                scenario: scenario.clone(),
                arm,
                seed,
                trace_capacity: capacity,
                check_every: cadence,
            };
            // Read (and reject) the resume document before paying for the
            // world build; restore after, into the identical configuration.
            let resume_doc = match &resume_from {
                Some(file) => {
                    let doc = read_snapshot(std::path::Path::new(file))
                        .map_err(|e| format!("cannot resume: {e}"))?;
                    if doc.meta != meta {
                        return Err(format!(
                            "cannot resume: {file} records '{}' · {} arm · seed {} \
                             (trace {}, audit {}), but this command line builds '{}' · \
                             {} arm · seed {} (trace {}, audit {}); rerun with the flags \
                             the interrupted run used",
                            doc.meta.scenario.name,
                            doc.meta.arm.label(),
                            doc.meta.seed,
                            doc.meta.trace_capacity.is_some(),
                            doc.meta.check_every.is_some(),
                            meta.scenario.name,
                            meta.arm.label(),
                            meta.seed,
                            meta.trace_capacity.is_some(),
                            meta.check_every.is_some(),
                        ));
                    }
                    Some(doc)
                }
                None => None,
            };
            let mut sim = dtn_workloads::runner::build_simulation_opts(
                &scenario,
                arm,
                seed,
                capacity.map(dtn_sim::trace::TraceLog::bounded),
                cadence,
                profile,
            );
            if let Some(doc) = &resume_doc {
                sim.restore(&doc.world)
                    .map_err(|e| format!("cannot resume: {e}"))?;
            }
            let policy = match &snapshot_dir {
                Some(dir) => {
                    std::fs::create_dir_all(dir)
                        .map_err(|e| format!("cannot create {dir}: {e}"))?;
                    Some(SnapshotPolicy {
                        // No cadence means "final flush only": the
                        // interrupt handler still lands a checkpoint, but
                        // no periodic ones are due.
                        every_secs: snapshot_every.unwrap_or(f64::INFINITY),
                        dir: std::path::PathBuf::from(dir),
                    })
                }
                None => None,
            };
            let t0 = std::time::Instant::now();
            let progress = run_with_snapshots(
                &mut sim,
                &meta,
                dtn_sim::time::SimTime::from_secs(scenario.duration_secs),
                policy.as_ref(),
                &|_| interrupt(),
            )
            .map_err(|e| format!("cannot write snapshot: {e}"))?;
            if let RunProgress::Interrupted { at, snapshot } = progress {
                if let Some(out_path) = &metrics_out {
                    let report = dtn_workloads::runner::PerfReport::capture(
                        &sim,
                        t0.elapsed().as_secs_f64(),
                    );
                    write_metrics(out_path, &report)?;
                }
                let mut text = format!(
                    "interrupted at t={:.0}s · {} · {} arm · seed {seed}\n",
                    at.as_secs(),
                    scenario.name,
                    arm.label()
                );
                match snapshot {
                    Some(p) => {
                        let _ = writeln!(
                            text,
                            "final snapshot: {} (continue with --resume-from)",
                            p.display()
                        );
                    }
                    None => {
                        let _ = writeln!(
                            text,
                            "no snapshot written; pass --snapshot-dir to make runs resumable"
                        );
                    }
                }
                return Ok(ExecOutcome {
                    text,
                    interrupted: true,
                });
            }
            let perf = profile.then(|| {
                dtn_workloads::runner::PerfReport::capture(&sim, t0.elapsed().as_secs_f64())
            });
            let trace_text = capacity.map(|_| sim.api().trace().render());
            let (router, summary) = sim.finish();
            if let (Some(out_path), Some(text)) = (&trace_out, &trace_text) {
                std::fs::write(out_path, text)
                    .map_err(|e| format!("cannot write {out_path}: {e}"))?;
            }
            if let Some(out_path) = json_out {
                let json = serde_json::to_string_pretty(&summary)
                    .map_err(|e| format!("cannot serialize results: {e}"))?;
                std::fs::write(&out_path, json)
                    .map_err(|e| format!("cannot write {out_path}: {e}"))?;
            }
            if let (Some(out_path), Some(report)) = (&metrics_out, &perf) {
                write_metrics(out_path, report)?;
            }
            let mut text = format_summary(
                &format!("{} · {} arm · seed {seed}", scenario.name, arm.label()),
                &summary,
            );
            if arm == Arm::Incentive {
                let stats = router.stats();
                let _ = writeln!(text, "  settlements            {}", stats.settlements);
                let _ = writeln!(text, "  tokens awarded         {:.1}", stats.tokens_awarded);
                let _ = writeln!(
                    text,
                    "  broke nodes            {}",
                    router.ledger().broke_nodes().len()
                );
            }
            if verbose {
                if let Some(report) = &perf {
                    text.push('\n');
                    text.push_str(&report.render());
                }
            }
            Ok(done(text))
        }
        Command::Compare {
            path,
            seeds,
            metrics_out,
            verbose,
            threads,
            sweep_workers,
            sweep_cache,
            router,
        } => {
            let mut scenario = load_scenario(&path)?;
            if threads.is_some() {
                scenario.threads = threads;
            }
            if let Some(n) = sweep_workers {
                dtn_workloads::sweep::set_workers(n);
            }
            if sweep_cache {
                dtn_workloads::sweep::set_cache_dir(Some(std::path::PathBuf::from(
                    "results/.sweep-cache",
                )));
            }
            // The flag overrides the scenario's own `backend` field;
            // chitchat is the paper's arms and takes the classic path.
            let backend = router.unwrap_or_else(|| scenario.effective_backend());
            let seed_values = seeds_for(seeds);
            if backend != BackendKind::ChitChat {
                if metrics_out.is_some() || verbose {
                    return Err(format!(
                        "--metrics-out/--verbose profiling covers the chitchat (arm) path \
                         only; rerun without them or without --router {}",
                        backend.tag()
                    ));
                }
                let cmp = compare_overlays(&scenario, backend, &seed_values);
                let mut text = format_summary(
                    &format!(
                        "{} · Incentive over {} (mean of {seeds} seeds)",
                        scenario.name,
                        backend.label()
                    ),
                    &cmp.incentive,
                );
                text.push('\n');
                text.push_str(&format_summary(
                    &format!(
                        "{} · Plain {} (mean of {seeds} seeds)",
                        scenario.name,
                        backend.label()
                    ),
                    &cmp.chitchat,
                ));
                let _ = writeln!(
                    text,
                    "\npaired: MDR gap {:+.4}, traffic reduction {:+.1}%",
                    cmp.mdr_gap(),
                    cmp.traffic_reduction_pct()
                );
                return Ok(done(text));
            }
            let profile = metrics_out.is_some() || verbose;
            let (cmp, perf) = if profile {
                let (cmp, perf) = dtn_workloads::runner::compare_arms_perf(&scenario, &seed_values);
                (cmp, Some(perf))
            } else {
                (compare_arms(&scenario, &seed_values), None)
            };
            if let (Some(out_path), Some(report)) = (&metrics_out, &perf) {
                write_metrics(out_path, report)?;
            }
            let mut text = format_summary(
                &format!("{} · Incentive (mean of {seeds} seeds)", scenario.name),
                &cmp.incentive,
            );
            text.push('\n');
            text.push_str(&format_summary(
                &format!("{} · ChitChat (mean of {seeds} seeds)", scenario.name),
                &cmp.chitchat,
            ));
            let _ = writeln!(
                text,
                "\npaired: MDR gap {:+.4}, traffic reduction {:+.1}%",
                cmp.mdr_gap(),
                cmp.traffic_reduction_pct()
            );
            if verbose {
                if let Some(report) = &perf {
                    text.push('\n');
                    text.push_str(&report.render());
                }
            }
            Ok(done(text))
        }
    }
}

/// The async-signal-safe SIGINT latch: the handler only stores a flag,
/// and the run loop polls it between simulation steps.
static SIGINT_FLAG: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn sigint_handler(_signum: i32) {
    SIGINT_FLAG.store(true, std::sync::atomic::Ordering::Relaxed);
}

/// Installs a SIGINT handler that latches [`struct@SIGINT_FLAG`] instead of
/// killing the process, so `dtn run` can flush its `--metrics-out` report
/// and a final snapshot before exiting with status 130. Returns the flag;
/// on non-Unix platforms this installs nothing and the flag stays false.
pub fn install_sigint_flag() -> &'static std::sync::atomic::AtomicBool {
    #[cfg(unix)]
    {
        // libc's `signal` without pulling in a crate: the handler only
        // touches an atomic, which is async-signal-safe.
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
        }
        const SIGINT: i32 = 2;
        unsafe {
            signal(SIGINT, sigint_handler);
        }
    }
    &SIGINT_FLAG
}

/// Serializes a [`PerfReport`] to `path` as pretty JSON.
fn write_metrics(path: &str, report: &dtn_workloads::runner::PerfReport) -> Result<(), String> {
    let json = serde_json::to_string_pretty(report)
        .map_err(|e| format!("cannot serialize metrics: {e}"))?;
    std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    /// One per-test scratch directory (pid + name keyed, created fresh).
    fn scratch_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dtn-cli-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn parses_all_commands() {
        assert_eq!(parse_args(&argv("")), Ok(Command::Help));
        assert_eq!(parse_args(&argv("help")), Ok(Command::Help));
        assert_eq!(parse_args(&argv("template")), Ok(Command::Template));
        assert_eq!(
            parse_args(&argv("validate s.json")),
            Ok(Command::Validate {
                path: "s.json".into()
            })
        );
        assert_eq!(
            parse_args(&argv(
                "run s.json --arm chitchat --seed 9 --json o.json --trace t.txt"
            )),
            Ok(Command::Run {
                path: "s.json".into(),
                arm: Arm::ChitChat,
                seed: 9,
                json_out: Some("o.json".into()),
                trace_out: Some("t.txt".into()),
                chaos: None,
                strategies: None,
                check_invariants: false,
                metrics_out: None,
                verbose: false,
                retry_max: None,
                backoff_base: None,
                resume: None,
                threads: None,
                kernel_mode: None,
                snapshot_every: None,
                snapshot_dir: None,
                resume_from: None,
            })
        );
        assert_eq!(
            parse_args(&argv(
                "run s.json --chaos crash=4,crashdown=120,wipe --check-invariants \
                 --metrics-out m.json --verbose"
            )),
            Ok(Command::Run {
                path: "s.json".into(),
                arm: Arm::Incentive,
                seed: QUICK_SEEDS[0],
                json_out: None,
                trace_out: None,
                chaos: Some("crash=4,crashdown=120,wipe".into()),
                strategies: None,
                check_invariants: true,
                metrics_out: Some("m.json".into()),
                verbose: true,
                retry_max: None,
                backoff_base: None,
                resume: None,
                threads: None,
                kernel_mode: None,
                snapshot_every: None,
                snapshot_dir: None,
                resume_from: None,
            })
        );
        assert_eq!(
            parse_args(&argv(
                "run s.json --retry-max 5 --backoff-base 2.5 --resume off"
            )),
            Ok(Command::Run {
                path: "s.json".into(),
                arm: Arm::Incentive,
                seed: QUICK_SEEDS[0],
                json_out: None,
                trace_out: None,
                chaos: None,
                strategies: None,
                check_invariants: false,
                metrics_out: None,
                verbose: false,
                retry_max: Some(5),
                backoff_base: Some(2.5),
                resume: Some(false),
                threads: None,
                kernel_mode: None,
                snapshot_every: None,
                snapshot_dir: None,
                resume_from: None,
            })
        );
        assert_eq!(
            parse_args(&argv("compare s.json --seeds 2")),
            Ok(Command::Compare {
                path: "s.json".into(),
                seeds: 2,
                metrics_out: None,
                verbose: false,
                threads: None,
                sweep_workers: None,
                sweep_cache: false,
                router: None,
            })
        );
        // Seed counts beyond the quick set extend the deterministic
        // family instead of erroring.
        assert_eq!(
            parse_args(&argv("compare s.json --seeds 8 --metrics-out m.json")),
            Ok(Command::Compare {
                path: "s.json".into(),
                seeds: 8,
                metrics_out: Some("m.json".into()),
                verbose: false,
                threads: None,
                sweep_workers: None,
                sweep_cache: false,
                router: None,
            })
        );
        // Every router spelling parses, including the ticketed spray form.
        for (spec, expected) in [
            ("chitchat", BackendKind::ChitChat),
            ("epidemic", BackendKind::Epidemic),
            ("direct", BackendKind::DirectDelivery),
            ("spray", BackendKind::SprayAndWait(8)),
            ("spray:4", BackendKind::SprayAndWait(4)),
            ("twohop", BackendKind::TwoHop),
            ("prophet", BackendKind::Prophet),
        ] {
            let Ok(Command::Compare { router, .. }) =
                parse_args(&argv(&format!("compare s.json --router {spec}")))
            else {
                panic!("--router {spec} parses");
            };
            assert_eq!(router, Some(expected), "spelling {spec}");
        }
        assert_eq!(seeds_for(3), QUICK_SEEDS.to_vec());
        assert_eq!(seeds_for(5)[3..], [404, 505]);
        let Ok(Command::Run { strategies, .. }) =
            parse_args(&argv("run s.json --strategies free=0.1,farm=0.1,defense"))
        else {
            panic!("--strategies parses on run");
        };
        assert_eq!(strategies, Some("free=0.1,farm=0.1,defense".into()));
        let Ok(Command::Run { threads, .. }) = parse_args(&argv("run s.json --threads 8")) else {
            panic!("--threads parses on run");
        };
        assert_eq!(threads, Some(8));
        let Ok(Command::Compare { threads, .. }) =
            parse_args(&argv("compare s.json --seeds 2 --threads 4"))
        else {
            panic!("--threads parses on compare");
        };
        assert_eq!(threads, Some(4));
        let Ok(Command::Compare {
            sweep_workers,
            sweep_cache,
            ..
        }) = parse_args(&argv("compare s.json --sweep-workers 3 --sweep-cache"))
        else {
            panic!("sweep flags parse on compare");
        };
        assert_eq!(sweep_workers, Some(3));
        assert!(sweep_cache);
        let Ok(Command::Run {
            snapshot_every,
            snapshot_dir,
            resume_from,
            ..
        }) = parse_args(&argv(
            "run s.json --snapshot-every 300 --snapshot-dir snaps \
             --resume-from snaps/snap-000000000600.dtnsnap",
        ))
        else {
            panic!("snapshot flags parse on run");
        };
        assert_eq!(snapshot_every, Some(300.0));
        assert_eq!(snapshot_dir, Some("snaps".into()));
        assert_eq!(resume_from, Some("snaps/snap-000000000600.dtnsnap".into()));
        // --snapshot-dir alone is valid: no periodic checkpoints, but the
        // SIGINT flush still has somewhere to land.
        let Ok(Command::Run {
            snapshot_every,
            snapshot_dir,
            ..
        }) = parse_args(&argv("run s.json --snapshot-dir snaps"))
        else {
            panic!("--snapshot-dir alone parses on run");
        };
        assert_eq!(snapshot_every, None);
        assert_eq!(snapshot_dir, Some("snaps".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_args(&argv("frobnicate")).is_err());
        assert!(parse_args(&argv("run")).is_err());
        assert!(parse_args(&argv("run s.json --arm epidemics")).is_err());
        assert!(parse_args(&argv("run s.json --seed banana")).is_err());
        assert!(parse_args(&argv("compare s.json --seeds 0")).is_err());
        assert!(parse_args(&argv("run s.json --metrics-out")).is_err());
        assert!(parse_args(&argv("run s.json --wat")).is_err());
        assert!(parse_args(&argv("run s.json --chaos")).is_err());
        assert!(parse_args(&argv("run s.json --chaos frobs=1")).is_err());
        assert!(parse_args(&argv("run s.json --chaos crash=-2")).is_err());
        assert!(parse_args(&argv("run s.json --strategies")).is_err());
        assert!(parse_args(&argv("run s.json --strategies frobs=1")).is_err());
        assert!(parse_args(&argv("run s.json --strategies free=2")).is_err());
        assert!(parse_args(&argv("run s.json --strategies free=0.6,farm=0.6")).is_err());
        assert!(parse_args(&argv("compare s.json --strategies free=0.1")).is_err());
        assert!(parse_args(&argv("run s.json --retry-max lots")).is_err());
        assert!(parse_args(&argv("run s.json --backoff-base -3")).is_err());
        assert!(parse_args(&argv("run s.json --backoff-base nan")).is_err());
        assert!(parse_args(&argv("run s.json --resume maybe")).is_err());
        assert!(parse_args(&argv("run s.json --resume")).is_err());
        assert!(parse_args(&argv("run s.json --threads 0")).is_err());
        assert!(parse_args(&argv("run s.json --threads many")).is_err());
        assert!(parse_args(&argv("compare s.json --threads")).is_err());
        assert!(parse_args(&argv("compare s.json --sweep-workers 0")).is_err());
        assert!(parse_args(&argv("compare s.json --sweep-workers")).is_err());
        assert!(parse_args(&argv("run s.json --sweep-cache")).is_err());
        assert!(parse_args(&argv("compare s.json --router")).is_err());
        assert!(parse_args(&argv("compare s.json --router flooding")).is_err());
        assert!(parse_args(&argv("compare s.json --router spray:0")).is_err());
        assert!(parse_args(&argv("run s.json --router epidemic")).is_err());
        assert!(parse_args(&argv("run s.json --snapshot-every")).is_err());
        assert!(parse_args(&argv("run s.json --snapshot-every soon --snapshot-dir d")).is_err());
        assert!(parse_args(&argv("run s.json --snapshot-every 0 --snapshot-dir d")).is_err());
        assert!(parse_args(&argv("run s.json --snapshot-every -60 --snapshot-dir d")).is_err());
        assert!(parse_args(&argv("run s.json --snapshot-every inf --snapshot-dir d")).is_err());
        assert!(parse_args(&argv("run s.json --snapshot-every 300")).is_err());
        assert!(parse_args(&argv("run s.json --snapshot-dir")).is_err());
        assert!(parse_args(&argv("run s.json --resume-from")).is_err());
        assert!(parse_args(&argv("compare s.json --snapshot-dir d")).is_err());
    }

    #[test]
    fn template_round_trips_through_load() {
        let dir = scratch_dir("test");
        let path = dir.join("scenario.json");
        std::fs::write(&path, template_json()).expect("write");
        let s = load_scenario(path.to_str().expect("utf8")).expect("loads");
        assert_eq!(s.nodes, 100);
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn load_reports_missing_and_invalid_files() {
        assert!(load_scenario("/nonexistent/x.json")
            .unwrap_err()
            .contains("cannot read"));
        let dir = scratch_dir("bad");
        let path = dir.join("bad.json");
        std::fs::write(&path, "{not json").expect("write");
        assert!(load_scenario(path.to_str().expect("utf8"))
            .unwrap_err()
            .contains("cannot parse"));
        // Valid JSON, invalid scenario.
        let mut s = reduced_scenario();
        s.nodes = 0;
        std::fs::write(&path, serde_json::to_string(&s).expect("json")).expect("write");
        assert!(load_scenario(path.to_str().expect("utf8"))
            .unwrap_err()
            .contains("invalid"));
    }

    #[test]
    fn validate_command_summarizes() {
        let dir = scratch_dir("val");
        let path = dir.join("scenario.json");
        std::fs::write(&path, template_json()).expect("write");
        let out = execute(Command::Validate {
            path: path.to_str().expect("utf8").to_owned(),
        })
        .expect("valid");
        assert!(out.contains("OK"));
        assert!(out.contains("100 nodes"));
    }

    #[test]
    fn run_command_executes_a_tiny_scenario() {
        let mut s = reduced_scenario();
        s.nodes = 12;
        s.area_km2 = 0.12;
        s.duration_secs = 600.0;
        s.message_interval_secs = 30.0;
        s.message_ttl_secs = 500.0;
        let dir = scratch_dir("run");
        let path = dir.join("tiny.json");
        std::fs::write(&path, serde_json::to_string(&s).expect("json")).expect("write");
        let json_out = dir.join("out.json");
        let trace_out = dir.join("trace.txt");
        let text = execute(Command::Run {
            path: path.to_str().expect("utf8").to_owned(),
            arm: Arm::Incentive,
            seed: 1,
            json_out: Some(json_out.to_str().expect("utf8").to_owned()),
            trace_out: Some(trace_out.to_str().expect("utf8").to_owned()),
            chaos: Some("crash=2,crashdown=60,cut=5,cutdown=20,loss=0.01".into()),
            strategies: Some("free=0.2,defense".into()),
            check_invariants: true,
            metrics_out: None,
            verbose: false,
            retry_max: Some(3),
            backoff_base: Some(5.0),
            resume: Some(true),
            threads: None,
            kernel_mode: None,
            snapshot_every: None,
            snapshot_dir: None,
            resume_from: None,
        })
        .expect("runs");
        let trace_text = std::fs::read_to_string(&trace_out).expect("trace written");
        assert!(
            trace_text.contains("created m0"),
            "trace names events: {}",
            trace_text.lines().next().unwrap_or("")
        );
        assert!(text.contains("delivery ratio"));
        assert!(text.contains("settlements"));
        let dumped: RunSummary =
            serde_json::from_str(&std::fs::read_to_string(&json_out).expect("json written"))
                .expect("valid result JSON");
        assert!(dumped.created > 0);
    }

    #[test]
    fn metrics_out_writes_a_valid_perf_report() {
        let mut s = reduced_scenario();
        s.nodes = 12;
        s.area_km2 = 0.12;
        s.duration_secs = 600.0;
        s.message_interval_secs = 30.0;
        s.message_ttl_secs = 500.0;
        let dir = scratch_dir("metrics");
        let path = dir.join("tiny.json");
        std::fs::write(&path, serde_json::to_string(&s).expect("json")).expect("write");
        let metrics_out = dir.join("m.json");
        let text = execute(Command::Run {
            path: path.to_str().expect("utf8").to_owned(),
            arm: Arm::Incentive,
            seed: 1,
            json_out: None,
            trace_out: None,
            chaos: None,
            strategies: None,
            check_invariants: false,
            metrics_out: Some(metrics_out.to_str().expect("utf8").to_owned()),
            verbose: true,
            retry_max: None,
            backoff_base: None,
            resume: None,
            threads: Some(2),
            kernel_mode: None,
            snapshot_every: None,
            snapshot_dir: None,
            resume_from: None,
        })
        .expect("runs");
        assert!(
            text.contains("phase"),
            "verbose output has phase table: {text}"
        );
        let report: dtn_workloads::runner::PerfReport =
            serde_json::from_str(&std::fs::read_to_string(&metrics_out).expect("written"))
                .expect("valid PerfReport JSON");
        assert!(!report.phases.is_empty(), "per-phase wall-clock present");
        assert!(report.phases.iter().any(|p| p.secs > 0.0));
        assert!(report.events_per_sec > 0.0);
        assert!(report.wall_secs > 0.0);
    }

    #[test]
    fn compare_metrics_out_covers_both_arms() {
        let mut s = reduced_scenario();
        s.nodes = 10;
        s.area_km2 = 0.1;
        s.duration_secs = 400.0;
        s.message_interval_secs = 40.0;
        s.message_ttl_secs = 300.0;
        let dir = scratch_dir("cmp-metrics");
        let path = dir.join("tiny.json");
        std::fs::write(&path, serde_json::to_string(&s).expect("json")).expect("write");
        let metrics_out = dir.join("m.json");
        let text = execute(Command::Compare {
            path: path.to_str().expect("utf8").to_owned(),
            seeds: 1,
            metrics_out: Some(metrics_out.to_str().expect("utf8").to_owned()),
            verbose: false,
            threads: None,
            sweep_workers: None,
            sweep_cache: false,
            router: None,
        })
        .expect("runs");
        assert!(text.contains("Incentive") && text.contains("ChitChat"));
        let report: dtn_workloads::runner::PerfReport =
            serde_json::from_str(&std::fs::read_to_string(&metrics_out).expect("written"))
                .expect("valid PerfReport JSON");
        assert_eq!(report.runs, 2, "one run per arm");
        assert!(report.events_per_sec > 0.0);
        assert!(!report.phases.is_empty());
    }

    #[test]
    fn compare_with_a_router_runs_the_overlay_grid() {
        let mut s = reduced_scenario();
        s.nodes = 10;
        s.area_km2 = 0.1;
        s.duration_secs = 400.0;
        s.message_interval_secs = 40.0;
        s.message_ttl_secs = 300.0;
        let dir = scratch_dir("cmp-router");
        let path = dir.join("tiny.json");
        std::fs::write(&path, serde_json::to_string(&s).expect("json")).expect("write");
        let text = execute(Command::Compare {
            path: path.to_str().expect("utf8").to_owned(),
            seeds: 1,
            metrics_out: None,
            verbose: false,
            threads: None,
            sweep_workers: None,
            sweep_cache: false,
            router: Some(BackendKind::Epidemic),
        })
        .expect("runs");
        assert!(
            text.contains("Incentive over Epidemic") && text.contains("Plain Epidemic"),
            "labels name the substrate: {text}"
        );
        assert!(text.contains("MDR gap"));
        // Profiling only covers the arm path; the refusal is explicit.
        let err = execute(Command::Compare {
            path: path.to_str().expect("utf8").to_owned(),
            seeds: 1,
            metrics_out: None,
            verbose: true,
            threads: None,
            sweep_workers: None,
            sweep_cache: false,
            router: Some(BackendKind::Epidemic),
        })
        .expect_err("profiling with a non-chitchat router is refused");
        assert!(err.contains("chitchat"), "error explains the limit: {err}");
    }

    /// A tiny chaos+strategies scenario on disk, for the resume tests.
    fn resumable_scenario(dir: &std::path::Path) -> String {
        let mut s = reduced_scenario();
        s.nodes = 12;
        s.area_km2 = 0.12;
        s.duration_secs = 600.0;
        s.message_interval_secs = 30.0;
        s.message_ttl_secs = 500.0;
        s.chaos = Some(
            "crash=2,crashdown=60,cut=5,cutdown=20,loss=0.01"
                .parse()
                .expect("valid chaos"),
        );
        s.strategies = Some("free=0.2,defense".parse().expect("valid mix"));
        let path = dir.join("tiny.json");
        std::fs::write(&path, serde_json::to_string(&s).expect("json")).expect("write");
        path.to_str().expect("utf8").to_owned()
    }

    /// The `run` command for that scenario, with every snapshot knob open.
    fn run_command(
        path: &str,
        dir: &std::path::Path,
        tag: &str,
        seed: u64,
        metrics_out: Option<String>,
        snapshot_dir: Option<String>,
        resume_from: Option<String>,
    ) -> Command {
        Command::Run {
            path: path.to_owned(),
            arm: Arm::Incentive,
            seed,
            json_out: Some(dir.join(format!("{tag}.json")).to_str().unwrap().to_owned()),
            trace_out: Some(dir.join(format!("{tag}.txt")).to_str().unwrap().to_owned()),
            chaos: None,
            strategies: None,
            check_invariants: false,
            metrics_out,
            verbose: false,
            retry_max: None,
            backoff_base: None,
            resume: None,
            threads: None,
            kernel_mode: None,
            snapshot_every: Some(100.0),
            snapshot_dir,
            resume_from,
        }
    }

    #[test]
    fn interrupt_flushes_metrics_and_a_final_snapshot() {
        let dir = scratch_dir("interrupt");
        let snaps = dir.join("snaps");
        let path = resumable_scenario(&dir);
        let metrics_out = dir.join("m.json");
        let polls = std::sync::atomic::AtomicUsize::new(0);
        let outcome = execute_with_interrupt(
            run_command(
                &path,
                &dir,
                "cut-short",
                1,
                Some(metrics_out.to_str().unwrap().to_owned()),
                Some(snaps.to_str().unwrap().to_owned()),
                None,
            ),
            // Trip the flag mid-run, the way a SIGINT latch would.
            &|| polls.fetch_add(1, std::sync::atomic::Ordering::Relaxed) > 500,
        )
        .expect("an interrupted run is not an error");
        assert!(outcome.interrupted, "the flag must stop the run");
        assert!(
            outcome.text.contains("--resume-from"),
            "the output points at the snapshot: {}",
            outcome.text
        );
        let report: dtn_workloads::runner::PerfReport =
            serde_json::from_str(&std::fs::read_to_string(&metrics_out).expect("metrics flushed"))
                .expect("valid PerfReport JSON");
        assert!(report.wall_secs > 0.0);
        let last = dtn_workloads::resume::latest_snapshot(&snaps)
            .expect("readable dir")
            .expect("a final snapshot was flushed");
        assert!(dtn_workloads::resume::read_snapshot(&last).is_ok());
    }

    #[test]
    fn resumed_run_matches_the_uninterrupted_run() {
        let dir = scratch_dir("resume");
        let snaps = dir.join("snaps");
        let path = resumable_scenario(&dir);

        let golden =
            execute(run_command(&path, &dir, "golden", 1, None, None, None)).expect("runs");

        let polls = std::sync::atomic::AtomicUsize::new(0);
        let outcome = execute_with_interrupt(
            run_command(
                &path,
                &dir,
                "victim",
                1,
                None,
                Some(snaps.to_str().unwrap().to_owned()),
                None,
            ),
            &|| polls.fetch_add(1, std::sync::atomic::Ordering::Relaxed) > 500,
        )
        .expect("interruption is clean");
        assert!(outcome.interrupted);
        let last = dtn_workloads::resume::latest_snapshot(&snaps)
            .expect("readable dir")
            .expect("a snapshot to resume from");

        let resumed = execute(run_command(
            &path,
            &dir,
            "resumed",
            1,
            None,
            None,
            Some(last.to_str().unwrap().to_owned()),
        ))
        .expect("resumes");
        assert_eq!(resumed, golden, "printed summary diverged");
        for ext in ["json", "txt"] {
            let a = std::fs::read_to_string(dir.join(format!("golden.{ext}"))).expect("golden");
            let b = std::fs::read_to_string(dir.join(format!("resumed.{ext}"))).expect("resumed");
            assert_eq!(a, b, "{ext} artifact diverged after resume");
        }

        // The same snapshot under a different command line is refused with
        // an identity mismatch, not silently restored.
        let err = execute(run_command(
            &path,
            &dir,
            "wrong",
            2,
            None,
            None,
            Some(last.to_str().unwrap().to_owned()),
        ))
        .expect_err("a different seed is a different run");
        assert!(err.contains("cannot resume"), "typed refusal: {err}");
    }

    #[test]
    fn format_summary_is_complete() {
        let mut c = dtn_sim::stats::StatsCollector::new();
        c.record_created(
            dtn_sim::message::MessageId(1),
            dtn_sim::message::Priority::High,
            [dtn_sim::world::NodeId(1)],
        );
        let text = format_summary("t", &c.summarize());
        for needle in ["messages created", "delivery ratio", "MDR (high"] {
            assert!(text.contains(needle), "missing {needle}: {text}");
        }
    }
}
