//! Property-based tests over the distributed reputation model.

use proptest::prelude::*;

use dtn_reputation::rating::{
    relay_message_rating, source_message_rating, MessageJudgement, RatingParams,
};
use dtn_reputation::table::{GossipDigest, ReputationTable};
use dtn_sim::world::NodeId;

fn arb_judgement() -> impl Strategy<Value = MessageJudgement> {
    (0.0f64..10.0, -1.0f64..2.0, 0.0f64..10.0).prop_map(|(t, c, q)| MessageJudgement {
        tag_rating: t,
        confidence: c,
        quality_rating: q,
    })
}

proptest! {
    /// Message ratings always land on the rating scale, even under hostile
    /// out-of-range inputs.
    #[test]
    fn message_ratings_stay_on_scale(j in arb_judgement()) {
        let p = RatingParams::paper_default();
        for r in [source_message_rating(&j, &p), relay_message_rating(&j, &p)] {
            prop_assert!(r >= 0.0);
            prop_assert!(r <= p.max_rating);
        }
    }

    /// Confidence discounts monotonically: more confidence never lowers a
    /// tag-driven rating.
    #[test]
    fn confidence_monotone(tag in 0.0f64..5.0, c1 in 0.0f64..1.0, c2 in 0.0f64..1.0) {
        let p = RatingParams::paper_default();
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        let j_lo = MessageJudgement { tag_rating: tag, confidence: lo, quality_rating: 0.0 };
        let j_hi = MessageJudgement { tag_rating: tag, confidence: hi, quality_rating: 0.0 };
        prop_assert!(relay_message_rating(&j_hi, &p) >= relay_message_rating(&j_lo, &p));
    }

    /// Device ratings remain on the scale under arbitrary interleavings of
    /// first-hand ratings and gossip merges.
    #[test]
    fn table_ratings_bounded(
        ops in prop::collection::vec((1u32..10, -5.0f64..15.0, prop::bool::ANY), 0..200)
    ) {
        let p = RatingParams::paper_default();
        let mut t = ReputationTable::new(NodeId(0), p);
        for (subject, value, firsthand) in ops {
            let subject = NodeId(subject);
            let r = if firsthand {
                t.record_message_rating(subject, value)
            } else {
                t.merge_reported_rating(subject, value)
            };
            prop_assert!(r.is_finite());
            prop_assert!(r >= 0.0 && r <= p.max_rating);
            prop_assert!(t.rating_of(subject).is_finite());
            prop_assert!(t.rating_of(subject) >= 0.0);
            prop_assert!(t.rating_of(subject) <= p.max_rating);
        }
    }

    /// Device ratings remain on the scale under arbitrary interleavings of
    /// first-hand ratings, gossip merges *and fading*. This is the property
    /// that catches the historical fade bug: `fade` used to scale the
    /// first-hand sum but floor the integer count, so a post-fade
    /// `record_message_rating` could recompute a mean above `max_rating`.
    #[test]
    fn table_ratings_bounded_under_fade(
        ops in prop::collection::vec((1u32..10, -5.0f64..15.0, 0u8..8), 0..200)
    ) {
        let p = RatingParams::paper_default();
        let mut t = ReputationTable::new(NodeId(0), p);
        for (subject, value, op) in ops {
            let subject = NodeId(subject);
            match op {
                0..=3 => {
                    t.record_message_rating(subject, value);
                }
                4..=6 => {
                    t.merge_reported_rating(subject, value);
                }
                _ => t.fade((value / 15.0).clamp(0.0, 1.0)),
            }
            for n in 1..10u32 {
                let r = t.rating_of(NodeId(n));
                prop_assert!(r.is_finite());
                prop_assert!(r >= 0.0 && r <= p.max_rating);
            }
        }
    }

    /// Case-1 is exactly the mean of the clamped first-hand ratings.
    #[test]
    fn case1_is_exact_mean(ratings in prop::collection::vec(0.0f64..5.0, 1..40)) {
        let p = RatingParams::paper_default();
        let mut t = ReputationTable::new(NodeId(0), p);
        for &r in &ratings {
            t.record_message_rating(NodeId(1), r);
        }
        let mean = ratings.iter().sum::<f64>() / ratings.len() as f64;
        prop_assert!((t.rating_of(NodeId(1)) - mean).abs() < 1e-9);
        prop_assert_eq!(t.firsthand_count(NodeId(1)), ratings.len() as u32);
    }

    /// A case-2 merge always lands strictly between (or on) the prior and
    /// the report, and moves at most (1-α) of the gap.
    #[test]
    fn case2_merge_is_a_contraction(prior in 0.0f64..5.0, report in 0.0f64..5.0) {
        let p = RatingParams::paper_default();
        let mut t = ReputationTable::new(NodeId(0), p);
        t.record_message_rating(NodeId(1), prior);
        let merged = t.merge_reported_rating(NodeId(1), report);
        let (lo, hi) = if prior <= report { (prior, report) } else { (report, prior) };
        prop_assert!(merged >= lo - 1e-9 && merged <= hi + 1e-9);
        prop_assert!((merged - prior).abs() <= (1.0 - p.merge_alpha) * (report - prior).abs() + 1e-9);
    }

    /// Gossip digests round-trip: absorbing your own digest into a fresh
    /// table never produces out-of-scale ratings, and never creates an
    /// opinion about the reporter or the owner.
    #[test]
    fn digest_absorption_safe(
        entries in prop::collection::vec((0u32..10, -2.0f64..8.0), 0..30),
        reporter in 0u32..10
    ) {
        let p = RatingParams::paper_default();
        let digest = GossipDigest {
            ratings: entries.into_iter().map(|(n, r)| (NodeId(n), r)).collect(),
            sequence: 0,
        };
        let owner = NodeId(99);
        let mut t = ReputationTable::new(owner, p);
        t.absorb_digest(NodeId(reporter), &digest);
        prop_assert!(!t.knows(owner));
        prop_assert!(!t.knows(NodeId(reporter)));
        for n in 0..10u32 {
            let r = t.rating_of(NodeId(n));
            prop_assert!(r >= 0.0 && r <= p.max_rating);
        }
    }

    /// Weighted absorption keeps ratings on scale for any weight, and a
    /// sequenced digest is accepted exactly once per issuer while an
    /// unsequenced one always merges.
    #[test]
    fn weighted_absorption_safe(
        entries in prop::collection::vec((0u32..10, -2.0f64..8.0), 0..30),
        weight in -1.0f64..2.0,
        sequence in 0u64..5
    ) {
        let p = RatingParams::paper_default();
        let digest = GossipDigest {
            ratings: entries.into_iter().map(|(n, r)| (NodeId(n), r)).collect(),
            sequence,
        };
        let mut t = ReputationTable::new(NodeId(99), p);
        prop_assert!(t.absorb_digest_weighted(NodeId(50), &digest, weight));
        let again = t.absorb_digest_weighted(NodeId(50), &digest, weight);
        prop_assert_eq!(again, sequence == 0);
        for n in 0..10u32 {
            let r = t.rating_of(NodeId(n));
            prop_assert!(r.is_finite());
            prop_assert!(r >= 0.0 && r <= p.max_rating);
        }
    }

    /// Repeated identical gossip converges toward the reported value but
    /// never crosses it (geometric approach).
    #[test]
    fn repeated_gossip_converges(prior in 0.0f64..5.0, report in 0.0f64..5.0, n in 1usize..50) {
        let p = RatingParams::paper_default();
        let mut t = ReputationTable::new(NodeId(0), p);
        t.record_message_rating(NodeId(1), prior);
        let mut last = prior;
        for _ in 0..n {
            let merged = t.merge_reported_rating(NodeId(1), report);
            // Distance to the report shrinks monotonically.
            prop_assert!((merged - report).abs() <= (last - report).abs() + 1e-9);
            last = merged;
        }
        // After 50 merges with α = 0.6, the gap shrinks by 0.6^n.
        let expected_gap = (prior - report).abs() * p.merge_alpha.powi(n as i32);
        prop_assert!(((last - report).abs() - expected_gap).abs() < 1e-6);
    }
}
