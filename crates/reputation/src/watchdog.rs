//! A forwarding watchdog (extension module).
//!
//! The thesis' DRM rates *content* (tag truthfulness, message quality).
//! The related work it builds on also monitors *forwarding behavior*: Li &
//! Das' trust framework (Ad Hoc Networks 2013, thesis ref \[26\]) has each
//! node watch whether its next-hop forwarders actually deliver, counting
//! positive-feedback messages (PFMs) for and against each forwarder and
//! scoring them with a Beta-distribution expectation. This module provides
//! that watchdog as a composable extension: protocols can feed its score
//! into [`crate::table::ReputationTable::merge_reported_rating`] or use it
//! stand-alone to detect silent droppers — a misbehavior class the
//! content-based DRM cannot see (a dropper never delivers a message to be
//! rated).
//!
//! Scoring: after `h` hand-offs to a forwarder and `p ≤ h` confirmations,
//! the Beta-expectation trust is `(p + 1) / (h + 2)` — the Laplace-
//! smoothed success rate, starting at the neutral 0.5 with no evidence.

use std::collections::{BTreeSet, HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use dtn_sim::message::MessageId;
use dtn_sim::world::NodeId;

/// Default bound on outstanding unconfirmed hand-offs. When the pending
/// set reaches this size the oldest hand-offs are expired first — they
/// remain counted as hand-offs (the custody transfer was real), but a
/// later PFM for them carries no evidence.
pub const DEFAULT_PENDING_CAPACITY: usize = 4096;

/// Evidence about one forwarder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForwarderRecord {
    /// Messages handed to this forwarder.
    pub handoffs: u32,
    /// Hand-offs later confirmed delivered (PFM received).
    pub confirmed: u32,
}

impl ForwarderRecord {
    /// The Beta-expectation trust score in `(0, 1)`.
    #[must_use]
    pub fn trust(&self) -> f64 {
        f64::from(self.confirmed + 1) / f64::from(self.handoffs + 2)
    }
}

/// One node's forwarding watchdog.
///
/// The pending set is bounded ([`DEFAULT_PENDING_CAPACITY`], overridable
/// via [`Watchdog::with_pending_capacity`]) and expires deterministically
/// oldest-first: membership lives in an ordered `BTreeSet` and insertion
/// order in a queue, so identical call sequences always expire identical
/// hand-offs regardless of hasher state.
#[derive(Debug, Clone)]
pub struct Watchdog {
    records: HashMap<NodeId, ForwarderRecord>,
    /// Outstanding hand-offs awaiting confirmation.
    pending: BTreeSet<(NodeId, MessageId)>,
    /// Insertion order of `pending` entries; confirmed entries linger as
    /// tombstones (skipped on expiry) and are compacted periodically.
    order: VecDeque<(NodeId, MessageId)>,
    capacity: usize,
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog {
            records: HashMap::new(),
            pending: BTreeSet::new(),
            order: VecDeque::new(),
            capacity: DEFAULT_PENDING_CAPACITY,
        }
    }
}

impl Watchdog {
    /// Creates an empty watchdog with the default pending capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty watchdog bounding the pending set at `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_pending_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "pending capacity must be at least 1");
        Watchdog {
            capacity,
            ..Self::default()
        }
    }

    /// The bound on outstanding unconfirmed hand-offs.
    #[must_use]
    pub fn pending_capacity(&self) -> usize {
        self.capacity
    }

    /// Records handing `message` to `forwarder`.
    ///
    /// Duplicate hand-offs of the same message to the same forwarder are
    /// counted once (retransmissions are not independent evidence). At
    /// capacity, the oldest outstanding hand-off is expired: it stays
    /// counted as a hand-off, but stops awaiting confirmation.
    pub fn record_handoff(&mut self, forwarder: NodeId, message: MessageId) {
        if self.pending.insert((forwarder, message)) {
            self.order.push_back((forwarder, message));
            self.records.entry(forwarder).or_default().handoffs += 1;
            while self.pending.len() > self.capacity {
                match self.order.pop_front() {
                    // Tombstones (already confirmed) shrink nothing and
                    // the loop pops again.
                    Some(oldest) => {
                        self.pending.remove(&oldest);
                    }
                    None => break,
                }
            }
            // Bound the order queue too: drop accumulated tombstones.
            if self.order.len() > self.capacity.saturating_mul(2) {
                let pending = &self.pending;
                self.order.retain(|key| pending.contains(key));
            }
        }
    }

    /// Records a delivery confirmation (PFM) for `message` via
    /// `forwarder`. Returns `false` when no matching hand-off was pending
    /// (spurious or duplicate PFMs — or PFMs for expired hand-offs —
    /// carry no evidence).
    pub fn record_confirmation(&mut self, forwarder: NodeId, message: MessageId) -> bool {
        if self.pending.remove(&(forwarder, message)) {
            self.records.entry(forwarder).or_default().confirmed += 1;
            true
        } else {
            false
        }
    }

    /// Erases all evidence about `forwarder` (its record and any pending
    /// hand-offs) — the watchdog's view of an identity that left the
    /// network.
    pub fn forget(&mut self, forwarder: NodeId) {
        self.records.remove(&forwarder);
        self.pending.retain(|&(f, _)| f != forwarder);
        let pending = &self.pending;
        self.order.retain(|key| pending.contains(key));
    }

    /// The trust score for `forwarder` (0.5 with no evidence).
    #[must_use]
    pub fn trust(&self, forwarder: NodeId) -> f64 {
        self.records
            .get(&forwarder)
            .copied()
            .unwrap_or_default()
            .trust()
    }

    /// The raw evidence about `forwarder`.
    #[must_use]
    pub fn record(&self, forwarder: NodeId) -> ForwarderRecord {
        self.records.get(&forwarder).copied().unwrap_or_default()
    }

    /// Whether `forwarder` looks like a silent dropper: at least
    /// `min_evidence` hand-offs and a trust score below `threshold`.
    #[must_use]
    pub fn is_suspicious(&self, forwarder: NodeId, threshold: f64, min_evidence: u32) -> bool {
        let r = self.record(forwarder);
        r.handoffs >= min_evidence && r.trust() < threshold
    }

    /// The trust score mapped onto a rating scale (`[0, max_rating]`),
    /// ready to merge into a [`crate::table::ReputationTable`] as
    /// second-hand evidence.
    #[must_use]
    pub fn as_rating(&self, forwarder: NodeId, max_rating: f64) -> f64 {
        self.trust(forwarder) * max_rating
    }

    /// Number of forwarders with any evidence.
    #[must_use]
    pub fn observed_count(&self) -> usize {
        self.records.len()
    }

    /// Outstanding unconfirmed hand-offs (diagnostic).
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Captures the watchdog's evidence for a whole-world snapshot.
    ///
    /// The pending capacity is configuration, not state, and is not
    /// captured — a restored watchdog keeps the capacity it was built
    /// with.
    #[must_use]
    pub fn export_state(&self) -> WatchdogState {
        let mut records: Vec<(NodeId, ForwarderRecord)> =
            self.records.iter().map(|(&n, &r)| (n, r)).collect();
        records.sort_unstable_by_key(|&(n, _)| n);
        WatchdogState {
            records,
            pending: self.pending.iter().copied().collect(),
            order: self.order.iter().copied().collect(),
        }
    }

    /// Overwrites the watchdog's evidence from a snapshot.
    pub fn import_state(&mut self, state: &WatchdogState) {
        self.records = state.records.iter().copied().collect();
        self.pending = state.pending.iter().copied().collect();
        self.order = state.order.iter().copied().collect();
    }
}

/// Serialized form of a [`Watchdog`]: evidence records (forwarder-sorted),
/// the outstanding pending set (in `BTreeSet` order) and the insertion-
/// order queue, tombstones included.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WatchdogState {
    records: Vec<(NodeId, ForwarderRecord)>,
    pending: Vec<(NodeId, MessageId)>,
    order: Vec<(NodeId, MessageId)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_evidence_means_neutral_half() {
        let w = Watchdog::new();
        assert_eq!(w.trust(NodeId(1)), 0.5);
        assert!(!w.is_suspicious(NodeId(1), 0.4, 1));
        assert_eq!(w.observed_count(), 0);
    }

    #[test]
    fn beta_expectation_hand_computed() {
        let mut w = Watchdog::new();
        // 3 hand-offs, 2 confirmed: (2+1)/(3+2) = 0.6.
        for m in 0..3u64 {
            w.record_handoff(NodeId(1), MessageId(m));
        }
        assert!(w.record_confirmation(NodeId(1), MessageId(0)));
        assert!(w.record_confirmation(NodeId(1), MessageId(1)));
        assert!((w.trust(NodeId(1)) - 0.6).abs() < 1e-12);
        assert_eq!(
            w.record(NodeId(1)),
            ForwarderRecord {
                handoffs: 3,
                confirmed: 2
            }
        );
        assert_eq!(w.pending_count(), 1);
    }

    #[test]
    fn silent_dropper_becomes_suspicious() {
        let mut w = Watchdog::new();
        for m in 0..8u64 {
            w.record_handoff(NodeId(2), MessageId(m));
        }
        // (0+1)/(8+2) = 0.1 < 0.3 with ample evidence.
        assert!(w.is_suspicious(NodeId(2), 0.3, 5));
        assert!(!w.is_suspicious(NodeId(2), 0.05, 5), "threshold respected");
        assert!(
            !w.is_suspicious(NodeId(2), 0.3, 20),
            "insufficient evidence gate respected"
        );
    }

    #[test]
    fn reliable_forwarder_scores_high() {
        let mut w = Watchdog::new();
        for m in 0..10u64 {
            w.record_handoff(NodeId(3), MessageId(m));
            assert!(w.record_confirmation(NodeId(3), MessageId(m)));
        }
        assert!((w.trust(NodeId(3)) - 11.0 / 12.0).abs() < 1e-12);
        assert!(!w.is_suspicious(NodeId(3), 0.5, 5));
        assert_eq!(w.pending_count(), 0);
    }

    #[test]
    fn duplicate_handoffs_and_spurious_pfms_ignored() {
        let mut w = Watchdog::new();
        w.record_handoff(NodeId(1), MessageId(7));
        w.record_handoff(NodeId(1), MessageId(7)); // retransmission
        assert_eq!(w.record(NodeId(1)).handoffs, 1);
        assert!(
            !w.record_confirmation(NodeId(1), MessageId(99)),
            "no such hand-off"
        );
        assert!(w.record_confirmation(NodeId(1), MessageId(7)));
        assert!(
            !w.record_confirmation(NodeId(1), MessageId(7)),
            "double PFM"
        );
        assert_eq!(w.record(NodeId(1)).confirmed, 1);
    }

    #[test]
    fn pending_set_is_bounded_and_expires_oldest_first() {
        let mut w = Watchdog::with_pending_capacity(2);
        assert_eq!(w.pending_capacity(), 2);
        w.record_handoff(NodeId(1), MessageId(0));
        w.record_handoff(NodeId(1), MessageId(1));
        w.record_handoff(NodeId(1), MessageId(2)); // expires (1, m0)
        assert_eq!(w.pending_count(), 2);
        assert_eq!(w.record(NodeId(1)).handoffs, 3, "expiry keeps the count");
        assert!(
            !w.record_confirmation(NodeId(1), MessageId(0)),
            "PFM for an expired hand-off carries no evidence"
        );
        assert!(w.record_confirmation(NodeId(1), MessageId(1)));
        assert!(w.record_confirmation(NodeId(1), MessageId(2)));
        assert_eq!(w.pending_count(), 0);
        // Confirmed tombstones do not count against the capacity: two
        // fresh hand-offs fit without expiring each other.
        w.record_handoff(NodeId(2), MessageId(3));
        w.record_handoff(NodeId(2), MessageId(4));
        assert_eq!(w.pending_count(), 2);
        assert!(w.record_confirmation(NodeId(2), MessageId(3)));
    }

    #[test]
    fn long_runs_never_exceed_capacity() {
        let mut w = Watchdog::with_pending_capacity(8);
        for m in 0..1000u64 {
            w.record_handoff(NodeId(m as u32 % 5), MessageId(m));
            if m % 3 == 0 {
                w.record_confirmation(NodeId(m as u32 % 5), MessageId(m));
            }
            assert!(w.pending_count() <= 8);
        }
    }

    #[test]
    fn forget_erases_records_and_pending() {
        let mut w = Watchdog::new();
        w.record_handoff(NodeId(1), MessageId(0));
        w.record_handoff(NodeId(2), MessageId(1));
        w.forget(NodeId(1));
        assert_eq!(w.record(NodeId(1)), ForwarderRecord::default());
        assert_eq!(w.trust(NodeId(1)), 0.5, "back to neutral");
        assert_eq!(w.pending_count(), 1, "other forwarders unaffected");
        assert!(!w.record_confirmation(NodeId(1), MessageId(0)));
        assert!(w.record_confirmation(NodeId(2), MessageId(1)));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Watchdog::with_pending_capacity(0);
    }

    #[test]
    fn rating_projection_spans_the_scale() {
        let mut w = Watchdog::new();
        assert_eq!(w.as_rating(NodeId(1), 5.0), 2.5, "neutral maps to midscale");
        for m in 0..18u64 {
            w.record_handoff(NodeId(1), MessageId(m));
        }
        let low = w.as_rating(NodeId(1), 5.0);
        assert!(low < 0.5, "a pure dropper projects near 0: {low}");
    }
}
