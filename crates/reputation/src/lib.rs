//! # dtn-reputation
//!
//! The distributed reputation model (DRM) of the reproduced paper — the
//! defense against nodes that add irrelevant tags or generate junk content
//! to farm incentive tokens:
//!
//! * [`rating`] — how a recipient turns its (confidence-weighted) judgement
//!   of a message into a rating of the source and of each enriching relay;
//! * [`table`] — each node's view of everyone else's reputation: first-hand
//!   running means (case 1), second-hand α-merges (case 2), and the gossip
//!   digests exchanged on contact that spread a malicious node's reputation
//!   network-wide (Fig. 5.4).
//!
//! * [`watchdog`] — an extension: the forwarding-behavior watchdog of the
//!   related work (Li & Das, thesis ref \[26\]) with Beta-expectation trust,
//!   catching silent droppers the content-based DRM cannot see.
//!
//! No centralized authority exists anywhere in this crate — every table is
//! local to its owner, exactly as the paper requires.
//!
//! ## Example
//!
//! ```
//! use dtn_reputation::prelude::*;
//! use dtn_sim::world::NodeId;
//!
//! let params = RatingParams::paper_default();
//! let mut alice = ReputationTable::new(NodeId(0), params);
//! // Alice received a badly-tagged message from node 2 and rates it 0.5.
//! alice.record_message_rating(NodeId(2), 0.5);
//! // Bob learns of it through gossip on the next contact.
//! let mut bob = ReputationTable::new(NodeId(1), params);
//! bob.absorb_digest(NodeId(0), &alice.digest());
//! assert!(bob.rating_of(NodeId(2)) < params.neutral_rating);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod rating;
pub mod table;
pub mod watchdog;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::rating::{
        relay_message_rating, source_message_rating, MessageJudgement, RatingParams,
    };
    pub use crate::table::{average_rating_of, GossipDigest, ReputationTable};
    pub use crate::watchdog::{ForwarderRecord, Watchdog};
}
