//! Per-observer reputation tables and contact-time gossip.
//!
//! Every node keeps its own view of every other node's reputation. Two
//! update rules (Paper I, §3.3, "Rating of a node and incentive award"):
//!
//! * **Case 1** (first-hand): after rating messages from node `v`, the
//!   observer recomputes `r_{v,u} = Σ r_{m_v} / N` — the mean of all message
//!   ratings it has assigned to `v`'s contributions.
//! * **Case 2** (second-hand): receiving node `z`'s rating of `v`, the
//!   observer merges `r_{v,u} = (1−α)·r_{v,z} + α·r_{v,u}` with `α > 0.5`,
//!   so gossip nudges but never overrides first-hand experience.
//!
//! On contact, nodes exchange [`GossipDigest`]s of their current device
//! ratings; this is how a malicious node's bad reputation propagates
//! network-wide (Fig. 5.4 measures exactly this propagation speed).

use serde::{Deserialize, Serialize};

use dtn_sim::world::NodeId;

use crate::rating::RatingParams;

/// One observer's opinion record about one subject.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
struct Opinion {
    /// Sum of first-hand message ratings given to the subject.
    firsthand_sum: f64,
    /// Effective first-hand evidence weight. Each rating adds 1.0;
    /// [`ReputationTable::fade`] scales it by the fading factor together
    /// with `firsthand_sum`, so the running mean `sum / weight` stays
    /// within the rating scale no matter how sum and weight have decayed.
    /// (The old integer count was floored on fade while the sum was
    /// scaled, which let the recomputed mean exceed `max_rating`.)
    firsthand_weight: f64,
    /// The current device rating (case 1 and case 2 applied in arrival
    /// order).
    rating: f64,
    /// Whether `rating` holds any information (first- or second-hand).
    informed: bool,
}

/// A compact snapshot of an observer's device ratings, exchanged on contact.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GossipDigest {
    /// `(subject, rating)` pairs, sorted by subject for determinism.
    pub ratings: Vec<(NodeId, f64)>,
    /// Issuer-monotonic sequence number; `0` marks an unsequenced
    /// (legacy) digest that bypasses replay detection. Stamped by
    /// [`ReputationTable::issue_digest`] and checked by
    /// [`ReputationTable::absorb_digest_weighted`].
    #[serde(default)]
    pub sequence: u64,
}

/// One node's view of every other node's reputation.
///
/// Opinions live in a `Vec` sorted by subject: the gossip ritual
/// (digest and absorb, four table walks per exchange) then reads
/// subjects in order without a per-digest sort, and the lookup paths
/// stay cache-resident.
#[derive(Debug, Clone)]
pub struct ReputationTable {
    owner: NodeId,
    params: RatingParams,
    opinions: Vec<(NodeId, Opinion)>,
    /// Digests issued so far; the next [`Self::issue_digest`] stamps
    /// `issued + 1`.
    issued: u64,
    /// Highest digest sequence seen per reporter, sorted by reporter.
    last_seen_seq: Vec<(NodeId, u64)>,
}

thread_local! {
    /// Shared merge buffer for [`ReputationTable::absorb_digest_weighted`]
    /// — the old and new opinion vectors ping-pong through it so the
    /// per-absorb allocation disappears. One buffer per thread instead of
    /// one per table: a retained per-node scratch held the previous
    /// opinions vector alive, doubling the reputation footprint at
    /// 250k+ nodes. Scratch content never reaches an output (cleared
    /// before every use), so sharing cannot change behavior.
    static ABSORB_SCRATCH: std::cell::RefCell<Vec<(NodeId, Opinion)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl ReputationTable {
    /// Creates the table owned by `owner`.
    #[must_use]
    pub fn new(owner: NodeId, params: RatingParams) -> Self {
        ReputationTable {
            owner,
            params,
            opinions: Vec::new(),
            issued: 0,
            last_seen_seq: Vec::new(),
        }
    }

    /// The observing node.
    #[must_use]
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Bytes of memory this table holds (struct plus heap capacity) —
    /// the per-node reputation footprint, exported as a metrics gauge.
    #[must_use]
    pub fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.opinions.capacity() * std::mem::size_of::<(NodeId, Opinion)>()
            + self.last_seen_seq.capacity() * std::mem::size_of::<(NodeId, u64)>()
    }

    /// Index of `subject` in the sorted opinions, or its insertion point.
    fn position(&self, subject: NodeId) -> Result<usize, usize> {
        self.opinions.binary_search_by_key(&subject, |&(n, _)| n)
    }

    /// The opinion about `subject`, creating a default entry if absent.
    fn opinion_mut(&mut self, subject: NodeId) -> &mut Opinion {
        let i = match self.position(subject) {
            Ok(i) => i,
            Err(i) => {
                self.opinions.insert(i, (subject, Opinion::default()));
                i
            }
        };
        &mut self.opinions[i].1
    }

    /// The observer's current device rating of `subject` (the neutral prior
    /// when it knows nothing about the subject).
    #[must_use]
    pub fn rating_of(&self, subject: NodeId) -> f64 {
        self.position(subject)
            .ok()
            .map(|i| &self.opinions[i].1)
            .filter(|o| o.informed)
            .map_or(self.params.neutral_rating, |o| o.rating)
    }

    /// Whether the observer holds any information about `subject`.
    #[must_use]
    pub fn knows(&self, subject: NodeId) -> bool {
        self.position(subject)
            .is_ok_and(|i| self.opinions[i].1.informed)
    }

    /// Number of first-hand message ratings recorded for `subject`
    /// (rounded effective evidence weight once fading has been applied).
    #[must_use]
    pub fn firsthand_count(&self, subject: NodeId) -> u32 {
        self.position(subject)
            .map_or(0.0, |i| self.opinions[i].1.firsthand_weight)
            .round() as u32
    }

    /// Case 1 — records a first-hand message rating for `subject` and
    /// recomputes the device rating as the (evidence-weighted) running
    /// mean of all first-hand message ratings, clamped to the rating
    /// scale. Returns the updated device rating.
    ///
    /// # Panics
    ///
    /// Panics if `subject` is the owner (nodes do not rate themselves).
    pub fn record_message_rating(&mut self, subject: NodeId, message_rating: f64) -> f64 {
        assert!(subject != self.owner, "a node does not rate itself");
        let max = self.params.max_rating;
        let r = message_rating.clamp(0.0, max);
        let o = self.opinion_mut(subject);
        o.firsthand_sum += r;
        o.firsthand_weight += 1.0;
        o.rating = (o.firsthand_sum / o.firsthand_weight).clamp(0.0, max);
        o.informed = true;
        o.rating
    }

    /// Case 2 — merges a second-hand rating of `subject` reported by
    /// another node: `r_{v,u} ← (1−α)·r_{v,z} + α·r_{v,u}`.
    ///
    /// When the observer has no prior information the neutral prior stands
    /// in for `r_{v,u}`. Self-reports (`subject == owner`) are ignored —
    /// reputations of oneself are not actionable. Returns the updated
    /// rating.
    pub fn merge_reported_rating(&mut self, subject: NodeId, reported: f64) -> f64 {
        self.merge_reported_rating_weighted(subject, reported, 1.0)
    }

    /// Case 2 with a credibility weight `w ∈ [0, 1]` on the reporter:
    /// `r_{v,u} ← r_{v,u} + w·(1−α)·(r_{v,z} − r_{v,u})`. At `w = 1` this
    /// is exactly [`Self::merge_reported_rating`]; at `w = 0` the report
    /// is discarded (EigenTrust-style discounting of low-reputation
    /// reporters, SNIPPETS.md ADR-0008). Returns the (possibly unchanged)
    /// rating of `subject`.
    pub fn merge_reported_rating_weighted(
        &mut self,
        subject: NodeId,
        reported: f64,
        weight: f64,
    ) -> f64 {
        if subject == self.owner {
            return self.params.neutral_rating;
        }
        let w = if weight.is_finite() {
            weight.clamp(0.0, 1.0)
        } else {
            0.0
        };
        let prior = self.rating_of(subject);
        if w <= 0.0 {
            return prior;
        }
        let reported = reported.clamp(0.0, self.params.max_rating);
        let alpha = self.params.merge_alpha;
        let merged = prior + w * (1.0 - alpha) * (reported - prior);
        let o = self.opinion_mut(subject);
        o.rating = merged;
        o.informed = true;
        merged
    }

    /// Builds the digest this observer shares on contact (unsequenced:
    /// `sequence = 0`, the legacy wire format).
    #[must_use]
    pub fn digest(&self) -> GossipDigest {
        let mut out = GossipDigest::default();
        self.digest_into(&mut out);
        out
    }

    /// [`Self::digest`] into a caller-owned scratch digest — the gossip
    /// hot path builds two ~`n`-entry digests per exchange, and reusing
    /// the allocation across exchanges keeps the settlement tick off the
    /// allocator.
    pub fn digest_into(&self, out: &mut GossipDigest) {
        out.ratings.clear();
        out.ratings.extend(
            self.opinions
                .iter()
                .filter(|(_, o)| o.informed)
                .map(|&(n, ref o)| (n, o.rating)),
        );
        out.sequence = 0;
    }

    /// Builds a *sequenced* digest: like [`Self::digest`] but stamped with
    /// the next issuer-monotonic sequence number, so receivers can reject
    /// replayed or re-forged copies via
    /// [`Self::absorb_digest_weighted`].
    pub fn issue_digest(&mut self) -> GossipDigest {
        let mut out = GossipDigest::default();
        self.issue_digest_into(&mut out);
        out
    }

    /// [`Self::issue_digest`] into a caller-owned scratch digest.
    pub fn issue_digest_into(&mut self, out: &mut GossipDigest) {
        self.issued += 1;
        self.digest_into(out);
        out.sequence = self.issued;
    }

    /// Absorbs a peer's digest via case-2 merges (skipping entries about
    /// the observer itself and about the reporting peer — a peer's opinion
    /// of itself is not credible testimony).
    pub fn absorb_digest(&mut self, reporter: NodeId, digest: &GossipDigest) {
        let _ = self.absorb_digest_weighted(reporter, digest, 1.0);
    }

    /// Runs *both* directions of the unsequenced gossip exchange in place
    /// — bit-identical to `a.absorb_digest(b, b.digest())` followed by
    /// `b.absorb_digest(a, a.digest())` (digests taken before either
    /// absorb), but with no digest materialized at all: one two-pointer
    /// pass over the two opinion vectors reads both sides' pre-merge
    /// ratings into locals and writes both updates. A subject one side
    /// is informed about and the other has no row for is inserted with
    /// the same neutral-prior arithmetic as the rebuilding merge of
    /// [`Self::absorb_digest_weighted`]; the per-subject update mirrors
    /// that function's sorted fast path at weight 1 (`1.0 * (1.0 - α)`
    /// equals `1.0 - α` exactly).
    pub fn absorb_mutual(a: &mut ReputationTable, b: &mut ReputationTable) {
        let scale_a = 1.0 - a.params.merge_alpha;
        let scale_b = 1.0 - b.params.merge_alpha;
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.opinions.len() || j < b.opinions.len() {
            let sa = a.opinions.get(i).map(|&(s, _)| s);
            let sb = b.opinions.get(j).map(|&(s, _)| s);
            match (sa, sb) {
                (Some(sa), Some(sb)) if sa == sb => {
                    if sa != a.owner && sa != b.owner {
                        let (a_informed, a_rating) = {
                            let o = &a.opinions[i].1;
                            (o.informed, o.rating)
                        };
                        let (b_informed, b_rating) = {
                            let o = &b.opinions[j].1;
                            (o.informed, o.rating)
                        };
                        // Long-lived pairs converge: once both ratings
                        // agree, the merge reproduces the prior bit for
                        // bit (`prior + scale * 0`), so skipping the
                        // store keeps the cache line clean without
                        // changing a single output bit.
                        if b_informed {
                            let reported = b_rating.clamp(0.0, a.params.max_rating);
                            let prior = if a_informed {
                                a_rating
                            } else {
                                a.params.neutral_rating
                            };
                            let merged = prior + scale_a * (reported - prior);
                            if !a_informed || merged != a_rating {
                                let o = &mut a.opinions[i].1;
                                o.rating = merged;
                                o.informed = true;
                            }
                        }
                        if a_informed {
                            let reported = a_rating.clamp(0.0, b.params.max_rating);
                            let prior = if b_informed {
                                b_rating
                            } else {
                                b.params.neutral_rating
                            };
                            let merged = prior + scale_b * (reported - prior);
                            if !b_informed || merged != b_rating {
                                let o = &mut b.opinions[j].1;
                                o.rating = merged;
                                o.informed = true;
                            }
                        }
                    }
                    i += 1;
                    j += 1;
                }
                (Some(sa), sb) if sb.is_none() || sa < sb.expect("some") => {
                    // `a` alone holds a row: `b` acquires the subject at
                    // the neutral prior iff `a` is actually informed
                    // (uninformed rows never enter a digest).
                    let o = a.opinions[i].1;
                    if o.informed && sa != a.owner && sa != b.owner {
                        let reported = o.rating.clamp(0.0, b.params.max_rating);
                        let neutral = b.params.neutral_rating;
                        b.opinions.insert(
                            j,
                            (
                                sa,
                                Opinion {
                                    firsthand_sum: 0.0,
                                    firsthand_weight: 0.0,
                                    rating: neutral + scale_b * (reported - neutral),
                                    informed: true,
                                },
                            ),
                        );
                        j += 1;
                    }
                    i += 1;
                }
                _ => {
                    let (s, o) = b.opinions[j];
                    if o.informed && s != a.owner && s != b.owner {
                        let reported = o.rating.clamp(0.0, a.params.max_rating);
                        let neutral = a.params.neutral_rating;
                        a.opinions.insert(
                            i,
                            (
                                s,
                                Opinion {
                                    firsthand_sum: 0.0,
                                    firsthand_weight: 0.0,
                                    rating: neutral + scale_a * (reported - neutral),
                                    informed: true,
                                },
                            ),
                        );
                        i += 1;
                    }
                    j += 1;
                }
            }
        }
    }

    /// Absorbs a peer's digest with replay protection and credibility
    /// weighting. A sequenced digest (`sequence > 0`) is rejected — and
    /// `false` returned — unless its sequence strictly exceeds the highest
    /// sequence previously accepted from `reporter`; accepted entries are
    /// merged through [`Self::merge_reported_rating_weighted`] with
    /// `weight` (the observer's normalized trust in the reporter).
    /// Unsequenced digests always merge.
    pub fn absorb_digest_weighted(
        &mut self,
        reporter: NodeId,
        digest: &GossipDigest,
        weight: f64,
    ) -> bool {
        if digest.sequence != 0 {
            match self
                .last_seen_seq
                .binary_search_by_key(&reporter, |&(n, _)| n)
            {
                Ok(i) => {
                    if digest.sequence <= self.last_seen_seq[i].1 {
                        return false;
                    }
                    self.last_seen_seq[i].1 = digest.sequence;
                }
                Err(i) => self.last_seen_seq.insert(i, (reporter, digest.sequence)),
            }
        }
        let w = if weight.is_finite() {
            weight.clamp(0.0, 1.0)
        } else {
            0.0
        };
        if w <= 0.0 {
            // Per-entry merges at zero weight leave every opinion (and the
            // opinion vector itself) untouched.
            return true;
        }
        // Digests we build are subject-sorted, which admits a linear merge
        // walk over the (also sorted) opinion vector instead of a binary
        // search + mid-vector insert per entry — that pair of calls was
        // the third-hottest site in the 1k-node settlement profile. The
        // per-subject merge arithmetic matches
        // [`Self::merge_reported_rating_weighted`] exactly (same
        // expression, same evaluation order), so ratings stay
        // bit-identical. A hand-built unsorted digest falls back to the
        // per-entry path.
        let sorted = digest.ratings.windows(2).all(|p| p[0].0 < p[1].0);
        if !sorted {
            for &(subject, rating) in &digest.ratings {
                if subject == self.owner || subject == reporter {
                    continue;
                }
                self.merge_reported_rating_weighted(subject, rating, weight);
            }
            return true;
        }
        let max = self.params.max_rating;
        let neutral = self.params.neutral_rating;
        let scale = w * (1.0 - self.params.merge_alpha);
        // Fast path: once the network has warmed up every observer holds
        // an opinion row for every digest subject, so the merge can
        // update in place — no vector rebuild at all. One read-only
        // two-pointer pass decides; any missing subject falls through to
        // the rebuilding merge below.
        let mut i = 0;
        let mut all_present = true;
        for &(subject, _) in &digest.ratings {
            if subject == self.owner || subject == reporter {
                continue;
            }
            while i < self.opinions.len() && self.opinions[i].0 < subject {
                i += 1;
            }
            if i < self.opinions.len() && self.opinions[i].0 == subject {
                i += 1;
            } else {
                all_present = false;
                break;
            }
        }
        if all_present {
            let mut i = 0;
            for &(subject, reported) in &digest.ratings {
                if subject == self.owner || subject == reporter {
                    continue;
                }
                while self.opinions[i].0 < subject {
                    i += 1;
                }
                let o = &mut self.opinions[i].1;
                i += 1;
                let reported = reported.clamp(0.0, max);
                let prior = if o.informed { o.rating } else { neutral };
                o.rating = prior + scale * (reported - prior);
                o.informed = true;
            }
            return true;
        }
        let mut merged = ABSORB_SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()));
        merged.clear();
        merged.reserve(self.opinions.len() + digest.ratings.len());
        let mut i = 0;
        for &(subject, reported) in &digest.ratings {
            if subject == self.owner || subject == reporter {
                continue;
            }
            while i < self.opinions.len() && self.opinions[i].0 < subject {
                merged.push(self.opinions[i]);
                i += 1;
            }
            let reported = reported.clamp(0.0, max);
            if i < self.opinions.len() && self.opinions[i].0 == subject {
                let mut o = self.opinions[i].1;
                i += 1;
                let prior = if o.informed { o.rating } else { neutral };
                o.rating = prior + scale * (reported - prior);
                o.informed = true;
                merged.push((subject, o));
            } else {
                merged.push((
                    subject,
                    Opinion {
                        firsthand_sum: 0.0,
                        firsthand_weight: 0.0,
                        rating: neutral + scale * (reported - neutral),
                        informed: true,
                    },
                ));
            }
        }
        merged.extend_from_slice(&self.opinions[i..]);
        let old = std::mem::replace(&mut self.opinions, merged);
        ABSORB_SCRATCH.with(|s| *s.borrow_mut() = old);
        true
    }

    /// Erases everything known about `subject`: its opinion entry and its
    /// replay-protection watermark. Models the observer's view of an
    /// identity that has left the network — a whitewashing node re-joining
    /// under a fresh identity starts from the neutral prior (and from
    /// sequence zero).
    pub fn forget(&mut self, subject: NodeId) {
        if let Ok(i) = self.position(subject) {
            self.opinions.remove(i);
        }
        if let Ok(i) = self
            .last_seen_seq
            .binary_search_by_key(&subject, |&(n, _)| n)
        {
            self.last_seen_seq.remove(i);
        }
    }

    /// Number of subjects with information.
    #[must_use]
    pub fn known_count(&self) -> usize {
        self.opinions.iter().filter(|(_, o)| o.informed).count()
    }

    /// Ages every opinion toward the neutral prior by `factor ∈ [0, 1]`
    /// (the *fading parameter* of the related-work iterative trust scheme,
    /// thesis ref \[27\]): `r ← neutral + factor·(r − neutral)`, and the
    /// first-hand evidence weight shrinks alongside so stale history stops
    /// dominating fresh observations. `factor = 1` is a no-op; `0` forgets
    /// everything. Opinions that reach the prior with no residual evidence
    /// are dropped.
    ///
    /// The paper's own DRM never fades (its 24-hour runs don't need to);
    /// long-lived deployments call this periodically so a reformed node can
    /// eventually rejoin.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is outside `[0, 1]`.
    pub fn fade(&mut self, factor: f64) {
        assert!(
            (0.0..=1.0).contains(&factor),
            "fading factor must lie in [0, 1]"
        );
        let neutral = self.params.neutral_rating;
        self.opinions.retain_mut(|&mut (_, ref mut o)| {
            o.rating = neutral + factor * (o.rating - neutral);
            // Sum and weight fade by the same factor, so the running mean
            // they define is invariant under fading and stays in scale.
            o.firsthand_sum *= factor;
            o.firsthand_weight *= factor;
            if o.firsthand_weight <= 1e-9 {
                o.firsthand_weight = 0.0;
                o.firsthand_sum = 0.0;
            }
            // Drop fully-faded opinions: indistinguishable from ignorance.
            let informative = (o.rating - neutral).abs() > 1e-9 || o.firsthand_weight > 0.0;
            o.informed = informative;
            informative
        });
    }

    /// Captures the table's dynamic state for a whole-world snapshot
    /// (owner and rating parameters are build configuration).
    #[must_use]
    pub fn export_state(&self) -> ReputationTableState {
        ReputationTableState {
            opinions: self.opinions.clone(),
            issued: self.issued,
            last_seen_seq: self.last_seen_seq.clone(),
        }
    }

    /// Overwrites the table's dynamic state from a snapshot.
    pub fn import_state(&mut self, state: &ReputationTableState) {
        self.opinions.clone_from(&state.opinions);
        self.issued = state.issued;
        self.last_seen_seq.clone_from(&state.last_seen_seq);
    }
}

/// Serialized form of a [`ReputationTable`]'s dynamic state: the opinion
/// vector (already subject-sorted), the digest-issuance counter, and the
/// per-reporter replay watermarks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReputationTableState {
    opinions: Vec<(NodeId, Opinion)>,
    issued: u64,
    last_seen_seq: Vec<(NodeId, u64)>,
}

/// The network-wide average rating of each node in `subjects` as seen by
/// `observers` — the quantity Fig. 5.4 plots over time for malicious nodes.
///
/// Observers are resolved by [`ReputationTable::owner`], not by indexing
/// `tables[obs.index()]` — observer ids need not be dense table indices
/// (indexing used to panic on sparse observer sets). Observers without a
/// table contribute nothing.
#[must_use]
pub fn average_rating_of(
    tables: &[ReputationTable],
    observers: &[NodeId],
    subjects: &[NodeId],
) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for &obs in observers {
        // Fast path: tables laid out with owner == index (the runner's
        // layout); fall back to an owner scan for sparse observer sets.
        let table = match tables.get(obs.index()).filter(|t| t.owner() == obs) {
            Some(t) => t,
            None => match tables.iter().find(|t| t.owner() == obs) {
                Some(t) => t,
                None => continue,
            },
        };
        for &subj in subjects {
            if subj == obs {
                continue;
            }
            sum += table.rating_of(subj);
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(owner: u32) -> ReputationTable {
        ReputationTable::new(NodeId(owner), RatingParams::paper_default())
    }

    #[test]
    fn unknown_subjects_get_neutral_prior() {
        let t = table(0);
        assert_eq!(t.rating_of(NodeId(5)), 2.5);
        assert!(!t.knows(NodeId(5)));
        assert_eq!(t.known_count(), 0);
    }

    #[test]
    fn case1_is_running_mean() {
        let mut t = table(0);
        assert_eq!(t.record_message_rating(NodeId(1), 4.0), 4.0);
        assert_eq!(t.record_message_rating(NodeId(1), 2.0), 3.0);
        assert_eq!(t.record_message_rating(NodeId(1), 0.0), 2.0);
        assert_eq!(t.firsthand_count(NodeId(1)), 3);
        assert!(t.knows(NodeId(1)));
    }

    #[test]
    fn case2_merge_hand_computed() {
        // α = 0.6; prior 4.0; reported 1.0 → 0.4·1 + 0.6·4 = 2.8.
        let mut t = table(0);
        t.record_message_rating(NodeId(1), 4.0);
        let merged = t.merge_reported_rating(NodeId(1), 1.0);
        assert!((merged - 2.8).abs() < 1e-12);
    }

    #[test]
    fn case2_with_no_prior_uses_neutral() {
        // 0.4·1.0 + 0.6·2.5 = 1.9.
        let mut t = table(0);
        let merged = t.merge_reported_rating(NodeId(1), 1.0);
        assert!((merged - 1.9).abs() < 1e-12);
        assert!(t.knows(NodeId(1)));
    }

    #[test]
    fn own_opinion_dominates_gossip() {
        let mut t = table(0);
        t.record_message_rating(NodeId(1), 5.0);
        // A smear campaign of ten zero-ratings.
        for _ in 0..10 {
            t.merge_reported_rating(NodeId(1), 0.0);
        }
        // Rating decays geometrically by α per report: 5·0.6^10 ≈ 0.03,
        // strictly positive and reached only after *ten* reports.
        assert!(t.rating_of(NodeId(1)) > 0.0);
        let mut fresh = table(2);
        fresh.merge_reported_rating(NodeId(1), 0.0);
        assert!(
            t.rating_of(NodeId(1)) < fresh.rating_of(NodeId(1)) + 5.0,
            "sanity"
        );
    }

    #[test]
    fn self_reports_ignored() {
        let mut t = table(0);
        t.merge_reported_rating(NodeId(0), 5.0);
        assert!(!t.knows(NodeId(0)));

        let mut reporter_digest = GossipDigest::default();
        reporter_digest.ratings.push((NodeId(7), 5.0)); // peer praising itself
        reporter_digest.ratings.push((NodeId(1), 1.0));
        t.absorb_digest(NodeId(7), &reporter_digest);
        assert!(!t.knows(NodeId(7)), "peer's self-praise dropped");
        assert!(t.knows(NodeId(1)));
    }

    #[test]
    fn digest_round_trip_propagates_opinions() {
        let mut a = table(0);
        a.record_message_rating(NodeId(2), 0.5); // a caught 2 misbehaving
        let mut b = table(1);
        b.absorb_digest(NodeId(0), &a.digest());
        // b's view of 2 moved from neutral 2.5 toward 0.5: 0.4·0.5+0.6·2.5 = 1.7.
        assert!((b.rating_of(NodeId(2)) - 1.7).abs() < 1e-12);
    }

    #[test]
    fn digest_is_sorted_and_filtered() {
        let mut t = table(0);
        t.record_message_rating(NodeId(9), 1.0);
        t.record_message_rating(NodeId(3), 2.0);
        let d = t.digest();
        assert_eq!(d.ratings.len(), 2);
        assert!(d.ratings[0].0 < d.ratings[1].0);
    }

    #[test]
    fn ratings_clamped_to_scale() {
        let mut t = table(0);
        t.record_message_rating(NodeId(1), 99.0);
        assert_eq!(t.rating_of(NodeId(1)), 5.0);
        t.merge_reported_rating(NodeId(2), -3.0);
        assert!(t.rating_of(NodeId(2)) >= 0.0);
    }

    #[test]
    fn average_rating_over_observers() {
        let params = RatingParams::paper_default();
        let mut tables: Vec<ReputationTable> = (0..3)
            .map(|i| ReputationTable::new(NodeId(i), params))
            .collect();
        tables[0].record_message_rating(NodeId(2), 1.0);
        tables[1].record_message_rating(NodeId(2), 3.0);
        let avg = average_rating_of(&tables, &[NodeId(0), NodeId(1)], &[NodeId(2)]);
        assert_eq!(avg, 2.0);
        // Subject == observer pairs are skipped.
        let avg = average_rating_of(&tables, &[NodeId(2)], &[NodeId(2)]);
        assert_eq!(avg, 0.0);
    }

    #[test]
    #[should_panic(expected = "does not rate itself")]
    fn rating_self_firsthand_panics() {
        table(0).record_message_rating(NodeId(0), 3.0);
    }

    #[test]
    fn fading_pulls_ratings_toward_neutral() {
        let mut t = table(0);
        t.record_message_rating(NodeId(1), 0.0); // caught liar, rating 0
        t.record_message_rating(NodeId(2), 5.0); // trusted peer
        t.fade(0.5);
        // 2.5 + 0.5·(0 − 2.5) = 1.25; 2.5 + 0.5·(5 − 2.5) = 3.75.
        assert!((t.rating_of(NodeId(1)) - 1.25).abs() < 1e-9);
        assert!((t.rating_of(NodeId(2)) - 3.75).abs() < 1e-9);
        assert!(t.knows(NodeId(1)) && t.knows(NodeId(2)));
    }

    #[test]
    fn full_fade_forgets_everything() {
        let mut t = table(0);
        t.record_message_rating(NodeId(1), 0.0);
        t.merge_reported_rating(NodeId(2), 4.0);
        t.fade(0.0);
        assert_eq!(t.known_count(), 0);
        assert_eq!(t.rating_of(NodeId(1)), 2.5, "back to the prior");
        assert_eq!(t.firsthand_count(NodeId(1)), 0);
    }

    #[test]
    fn no_op_fade_changes_nothing() {
        let mut t = table(0);
        t.record_message_rating(NodeId(1), 4.0);
        t.record_message_rating(NodeId(1), 2.0);
        t.fade(1.0);
        assert_eq!(t.rating_of(NodeId(1)), 3.0);
        assert_eq!(t.firsthand_count(NodeId(1)), 2);
    }

    #[test]
    fn faded_evidence_lets_fresh_observations_dominate() {
        let mut t = table(0);
        for _ in 0..10 {
            t.record_message_rating(NodeId(1), 0.0);
        }
        // Years pass (repeated fading); the node reforms.
        for _ in 0..6 {
            t.fade(0.5);
        }
        let before = t.rating_of(NodeId(1));
        t.record_message_rating(NodeId(1), 5.0);
        assert!(
            t.rating_of(NodeId(1)) > 4.0,
            "fresh good behavior outweighs faded history: {} → {}",
            before,
            t.rating_of(NodeId(1))
        );
    }

    #[test]
    #[should_panic(expected = "fading factor")]
    fn fade_rejects_out_of_range() {
        table(0).fade(1.5);
    }

    /// Regression for the fade inconsistency: three 5.0 ratings then
    /// `fade(0.4)` left sum = 6.0 but floored the count to 1, so the next
    /// 5.0 recomputed the mean as (6.0 + 5.0)/2 = 5.5 > max_rating. With
    /// the fractional weight the mean is (6.0 + 5.0)/2.2 = 5.0 exactly.
    #[test]
    fn fade_then_record_stays_within_scale() {
        let mut t = table(0);
        for _ in 0..3 {
            t.record_message_rating(NodeId(1), 5.0);
        }
        t.fade(0.4);
        let r = t.record_message_rating(NodeId(1), 5.0);
        assert!(r <= 5.0, "mean exceeded max_rating after fade: {r}");
        assert!((r - 5.0).abs() < 1e-12, "all-5.0 evidence means 5.0: {r}");
        assert!(t.rating_of(NodeId(1)) <= 5.0);
    }

    #[test]
    fn average_rating_handles_sparse_observers() {
        let params = RatingParams::paper_default();
        // Tables owned by 5 and 9: observer ids far beyond the slice's
        // index range (the old index-based lookup panicked here).
        let mut tables = vec![
            ReputationTable::new(NodeId(5), params),
            ReputationTable::new(NodeId(9), params),
        ];
        tables[0].record_message_rating(NodeId(2), 1.0);
        tables[1].record_message_rating(NodeId(2), 3.0);
        let avg = average_rating_of(&tables, &[NodeId(5), NodeId(9)], &[NodeId(2)]);
        assert_eq!(avg, 2.0);
        // Observers without a table are skipped, not a panic.
        let avg = average_rating_of(&tables, &[NodeId(42)], &[NodeId(2)]);
        assert_eq!(avg, 0.0);
    }

    #[test]
    fn sequenced_digests_reject_replay_and_stale_copies() {
        let mut reporter = table(1);
        reporter.record_message_rating(NodeId(2), 0.5);
        let d1 = reporter.issue_digest();
        let d2 = reporter.issue_digest();
        assert_eq!((d1.sequence, d2.sequence), (1, 2));

        let mut t = table(0);
        assert!(t.absorb_digest_weighted(NodeId(1), &d1, 1.0));
        assert!(!t.absorb_digest_weighted(NodeId(1), &d1, 1.0), "replay");
        let after_first = t.rating_of(NodeId(2));
        assert!(t.absorb_digest_weighted(NodeId(1), &d2, 1.0));
        assert!(
            !t.absorb_digest_weighted(NodeId(1), &d1, 1.0),
            "stale out-of-order copy rejected"
        );
        assert!(t.rating_of(NodeId(2)) < after_first, "d2 merged once");
        // Sequences are per-issuer: another reporter's seq-1 still lands.
        assert!(t.absorb_digest_weighted(NodeId(3), &d1, 1.0));
        // Unsequenced digests bypass replay detection entirely.
        let legacy = reporter.digest();
        assert_eq!(legacy.sequence, 0);
        assert!(t.absorb_digest_weighted(NodeId(1), &legacy, 1.0));
    }

    #[test]
    fn weighted_merge_discounts_low_credibility_reporters() {
        // Full-weight merge ≡ the classic case-2 rule.
        let mut full = table(0);
        full.record_message_rating(NodeId(1), 4.0);
        let mut classic = full.clone();
        full.merge_reported_rating_weighted(NodeId(1), 1.0, 1.0);
        classic.merge_reported_rating(NodeId(1), 1.0);
        assert_eq!(full.rating_of(NodeId(1)), classic.rating_of(NodeId(1)));

        // Half weight moves half as far; zero weight not at all.
        let mut half = table(0);
        half.record_message_rating(NodeId(1), 4.0);
        half.merge_reported_rating_weighted(NodeId(1), 1.0, 0.5);
        let moved_full = 4.0 - full.rating_of(NodeId(1));
        let moved_half = 4.0 - half.rating_of(NodeId(1));
        assert!((moved_half - moved_full / 2.0).abs() < 1e-12);
        let mut zero = table(0);
        zero.record_message_rating(NodeId(1), 4.0);
        zero.merge_reported_rating_weighted(NodeId(1), 1.0, 0.0);
        assert_eq!(zero.rating_of(NodeId(1)), 4.0);
        assert_eq!(
            zero.merge_reported_rating_weighted(NodeId(1), 1.0, f64::NAN),
            4.0
        );
    }

    #[test]
    fn forget_erases_opinion_and_replay_watermark() {
        let mut t = table(0);
        t.record_message_rating(NodeId(1), 0.0);
        let mut reporter = table(1);
        reporter.record_message_rating(NodeId(2), 1.0);
        let d = reporter.issue_digest();
        assert!(t.absorb_digest_weighted(NodeId(1), &d, 1.0));
        t.forget(NodeId(1));
        assert!(!t.knows(NodeId(1)), "opinion gone");
        assert_eq!(t.rating_of(NodeId(1)), 2.5, "back to the prior");
        // The fresh identity restarts its sequence space.
        assert!(t.absorb_digest_weighted(NodeId(1), &d, 1.0), "seq reset");
    }
}
