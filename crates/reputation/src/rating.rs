//! Message-rating formulas (Paper I, §3.3, "Rating of a message").
//!
//! After receiving a message a user rates the nodes on its path. The
//! *source* is rated for message quality and the truthfulness of its tags;
//! an *intermediate* node is rated only for the tags it added while
//! enriching. Because a human may be unsure about a tag judgement ("is that
//! really Adam in the photo?"), the tag rating carries a confidence value
//! `C ∈ [0, C_m]` that discounts it.

use serde::{Deserialize, Serialize};

/// Constants of the rating model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatingParams {
    /// `r_m`: the maximum rating (Fig. 5.4: 5).
    pub max_rating: f64,
    /// `C_m`: the maximum confidence value.
    pub max_confidence: f64,
    /// α in the case-2 merge `r_{v,u} = (1−α)·r_{v,z} + α·r_{v,u}` — own
    /// opinion dominates gossip (α > 0.5).
    pub merge_alpha: f64,
    /// The rating assumed for nodes never interacted with (neutral prior).
    pub neutral_rating: f64,
}

impl RatingParams {
    /// Paper-faithful defaults: 0–5 scale, α = 0.6, neutral prior at the
    /// midpoint.
    #[must_use]
    pub fn paper_default() -> Self {
        RatingParams {
            max_rating: 5.0,
            max_confidence: 1.0,
            merge_alpha: 0.6,
            neutral_rating: 2.5,
        }
    }

    /// Validates parameter invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_rating <= 0.0 {
            return Err("max_rating must be positive".into());
        }
        if self.max_confidence <= 0.0 {
            return Err("max_confidence must be positive".into());
        }
        if !(self.merge_alpha > 0.5 && self.merge_alpha <= 1.0) {
            return Err("merge_alpha must lie in (0.5, 1]".into());
        }
        if !(0.0..=self.max_rating).contains(&self.neutral_rating) {
            return Err("neutral_rating must lie within the rating scale".into());
        }
        Ok(())
    }
}

impl Default for RatingParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One user's judgement of a received message.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MessageJudgement {
    /// `R_t`: rating for the relevance of the judged node's tags,
    /// on `[0, r_m]`.
    pub tag_rating: f64,
    /// `C`: the user's confidence in the tag rating, on `[0, C_m]`.
    pub confidence: f64,
    /// `R_q`: rating for the message quality, on `[0, r_m]` — only
    /// meaningful when rating the source.
    pub quality_rating: f64,
}

/// `R_i` for the message **source**: `½·(R_t·C/C_m) + ½·R_q`.
#[must_use]
pub fn source_message_rating(j: &MessageJudgement, params: &RatingParams) -> f64 {
    let tag = discounted_tag_rating(j, params);
    let quality = j.quality_rating.clamp(0.0, params.max_rating);
    0.5 * tag + 0.5 * quality
}

/// `R_i` for an **intermediate** node: `R_t·C/C_m` (tags only — a relay is
/// not responsible for content quality).
#[must_use]
pub fn relay_message_rating(j: &MessageJudgement, params: &RatingParams) -> f64 {
    discounted_tag_rating(j, params)
}

fn discounted_tag_rating(j: &MessageJudgement, params: &RatingParams) -> f64 {
    let c = (j.confidence / params.max_confidence).clamp(0.0, 1.0);
    (j.tag_rating * c).clamp(0.0, params.max_rating)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> RatingParams {
        RatingParams::paper_default()
    }

    #[test]
    fn defaults_validate() {
        assert_eq!(params().validate(), Ok(()));
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = params();
        p.merge_alpha = 0.4;
        assert!(p.validate().is_err());
        let mut p = params();
        p.neutral_rating = 7.0;
        assert!(p.validate().is_err());
        let mut p = params();
        p.max_confidence = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn source_rating_hand_computed() {
        // R_t = 4, C = 0.5 (C_m = 1), R_q = 3 → ½·(4·0.5) + ½·3 = 2.5.
        let j = MessageJudgement {
            tag_rating: 4.0,
            confidence: 0.5,
            quality_rating: 3.0,
        };
        assert!((source_message_rating(&j, &params()) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn relay_rating_ignores_quality() {
        let j = MessageJudgement {
            tag_rating: 4.0,
            confidence: 1.0,
            quality_rating: 0.0,
        };
        assert_eq!(relay_message_rating(&j, &params()), 4.0);
        let j2 = MessageJudgement {
            quality_rating: 5.0,
            ..j
        };
        assert_eq!(relay_message_rating(&j2, &params()), 4.0);
    }

    #[test]
    fn zero_confidence_nullifies_tag_rating() {
        let j = MessageJudgement {
            tag_rating: 5.0,
            confidence: 0.0,
            quality_rating: 4.0,
        };
        assert_eq!(
            source_message_rating(&j, &params()),
            2.0,
            "only the quality half"
        );
        assert_eq!(relay_message_rating(&j, &params()), 0.0);
    }

    #[test]
    fn ratings_bounded_by_scale() {
        let j = MessageJudgement {
            tag_rating: 100.0,
            confidence: 100.0,
            quality_rating: 100.0,
        };
        let p = params();
        assert!(source_message_rating(&j, &p) <= p.max_rating);
        assert!(relay_message_rating(&j, &p) <= p.max_rating);
    }
}
