//! Half-of-Table-5.1 spot check: 250 nodes / 2.5 km² / 12 h / 200 tokens —
//! the paper's density and token economics at half its extent, bridging
//! the reduced scale and the full `--full` configuration.
fn main() {
    use dtn_workloads::prelude::*;
    let t0 = std::time::Instant::now();
    for pct in [0u32, 40] {
        let mut s = table51_scenario();
        s.nodes = 250;
        s.area_km2 = 2.5;
        s.duration_secs = 12.0 * 3600.0;
        s.selfish_fraction = f64::from(pct) / 100.0;
        let s = s.named(format!("half-table51-selfish-{pct}"));
        let inc = run_once(&s, Arm::Incentive, 101);
        let cc = run_once(&s, Arm::ChitChat, 101);
        let red = 100.0
            * (cc.summary.relays_completed as f64 - inc.summary.relays_completed as f64)
            / cc.summary.relays_completed.max(1) as f64;
        println!(
            "HALF selfish {pct}%: MDR inc {:.3} cc {:.3} | relays inc {} cc {} | reduction {:+.1}% | broke {} | elapsed {:?}",
            inc.summary.delivery_ratio,
            cc.summary.delivery_ratio,
            inc.summary.relays_completed,
            cc.summary.relays_completed,
            red,
            inc.broke_nodes,
            t0.elapsed()
        );
    }
}
