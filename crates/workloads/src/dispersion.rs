//! Across-seed dispersion statistics.
//!
//! The paper reports "the average of five simulation runs" without error
//! bars; a credible reproduction should expose the spread behind its
//! means. [`SeedStats`] aggregates the headline metrics of a seed set into
//! mean ± sample standard deviation, and [`Dispersion`] carries per-metric
//! values the figure binaries can print alongside the means.

use serde::{Deserialize, Serialize};

use dtn_sim::stats::RunSummary;

/// Mean and sample standard deviation of one metric across seeds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dispersion {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single seed).
    pub std_dev: f64,
}

impl Dispersion {
    /// Computes mean ± sd of `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "dispersion of zero values is undefined");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let std_dev = if values.len() < 2 {
            0.0
        } else {
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
            var.sqrt()
        };
        Dispersion { mean, std_dev }
    }

    /// Renders as `mean ± sd` with the given precision.
    #[must_use]
    pub fn display(&self, decimals: usize) -> String {
        format!("{:.*} ± {:.*}", decimals, self.mean, decimals, self.std_dev)
    }

    /// Whether `other`'s mean lies within one combined standard deviation
    /// of this mean — the coarse "statistically indistinguishable" test
    /// the shape assertions use to avoid over-reading seed noise.
    #[must_use]
    pub fn overlaps(&self, other: &Dispersion) -> bool {
        (self.mean - other.mean).abs() <= self.std_dev + other.std_dev
    }
}

/// Headline metrics of a seed set, each with dispersion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeedStats {
    /// Number of seeds aggregated.
    pub seeds: usize,
    /// Pair-level delivery ratio.
    pub delivery_ratio: Dispersion,
    /// Completed transfers.
    pub relays_completed: Dispersion,
    /// Mean first-delivery latency, seconds.
    pub mean_latency_secs: Dispersion,
    /// Deliveries to enrichment-created (unexpected) destinations.
    pub bonus_deliveries: Dispersion,
}

impl SeedStats {
    /// Aggregates per-seed summaries.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is empty.
    #[must_use]
    pub fn of(runs: &[RunSummary]) -> Self {
        assert!(!runs.is_empty(), "need at least one run");
        let pull = |f: fn(&RunSummary) -> f64| -> Dispersion {
            let values: Vec<f64> = runs.iter().map(f).collect();
            Dispersion::of(&values)
        };
        SeedStats {
            seeds: runs.len(),
            delivery_ratio: pull(|r| r.delivery_ratio),
            relays_completed: pull(|r| r.relays_completed as f64),
            mean_latency_secs: pull(|r| r.mean_latency_secs),
            bonus_deliveries: pull(|r| r.bonus_deliveries as f64),
        }
    }
}

/// Runs one arm over `seeds` and returns the per-seed summaries plus their
/// aggregate — the long form of [`crate::runner::run_seeds`] for reports
/// that want error bars. Seeds execute (and memoize) on the
/// [`crate::sweep`] executor, like every other multi-seed entry point.
#[must_use]
pub fn run_seeds_detailed(
    scenario: &crate::scenario::Scenario,
    arm: crate::scenario::Arm,
    seeds: &[u64],
) -> (Vec<RunSummary>, SeedStats) {
    let runs = crate::sweep::run_arm_seeds(scenario, arm, seeds);
    let stats = SeedStats::of(&runs);
    (runs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::reduced_scenario;
    use crate::scenario::Arm;

    #[test]
    fn dispersion_hand_computed() {
        let d = Dispersion::of(&[2.0, 4.0, 6.0]);
        assert_eq!(d.mean, 4.0);
        assert!((d.std_dev - 2.0).abs() < 1e-12, "sample sd of 2,4,6 is 2");
        assert_eq!(d.display(1), "4.0 ± 2.0");
    }

    #[test]
    fn single_value_has_zero_spread() {
        let d = Dispersion::of(&[7.5]);
        assert_eq!(d.mean, 7.5);
        assert_eq!(d.std_dev, 0.0);
    }

    #[test]
    fn overlap_test_is_symmetric() {
        let a = Dispersion {
            mean: 10.0,
            std_dev: 1.0,
        };
        let b = Dispersion {
            mean: 11.5,
            std_dev: 1.0,
        };
        let c = Dispersion {
            mean: 20.0,
            std_dev: 1.0,
        };
        assert!(a.overlaps(&b) && b.overlaps(&a));
        assert!(!a.overlaps(&c) && !c.overlaps(&a));
    }

    #[test]
    #[should_panic(expected = "zero values")]
    fn empty_dispersion_panics() {
        let _ = Dispersion::of(&[]);
    }

    #[test]
    fn seed_stats_from_real_runs() {
        let mut s = reduced_scenario();
        s.nodes = 15;
        s.area_km2 = 0.15;
        s.duration_secs = 900.0;
        s.message_ttl_secs = 600.0;
        let s = s.named("dispersion");
        let (runs, stats) = run_seeds_detailed(&s, Arm::ChitChat, &[1, 2, 3]);
        assert_eq!(runs.len(), 3);
        assert_eq!(stats.seeds, 3);
        assert!((0.0..=1.0).contains(&stats.delivery_ratio.mean));
        assert!(stats.delivery_ratio.std_dev >= 0.0);
        // The mean must equal the plain mean_of aggregate's ratio field.
        let plain = RunSummary::mean_of(&runs);
        assert!((plain.delivery_ratio - stats.delivery_ratio.mean).abs() < 1e-12);
    }
}
