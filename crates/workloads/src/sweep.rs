//! Work-stealing sweep executor with a memoized run cache.
//!
//! The paper's evaluation is a grid of independent simulation cells —
//! `(scenario, arm-or-router, seed)` triples. This module executes such a
//! grid on a fixed worker pool pulling from one shared injector queue (no
//! chunk barriers: a finished worker immediately steals the next pending
//! cell) and aggregates results **in plan order**, so the output is
//! byte-identical regardless of worker count or completion order.
//!
//! On top of the executor sits a memoized run cache: each cell is keyed by
//! a content hash of its canonicalized scenario, its arm/router tag, its
//! seed, and the crate version. Within a process the cache lives in
//! memory; with [`set_cache_dir`] it is additionally persisted as one JSON
//! file per cell under `results/.sweep-cache/`, each entry carrying an
//! integrity hash so corrupted or truncated files are detected and re-run
//! rather than trusted. Cache hits return the exact `CellResult` the
//! original run produced (bit-identical summaries; golden-checked in the
//! test suite).
//!
//! ## Queue design
//!
//! The classic work-stealing layout (per-worker deques plus a global
//! injector) earns its complexity when tasks are microseconds long and
//! queue contention is measurable. Here every task is a full simulation —
//! milliseconds at miniature scale, seconds to minutes at paper scale —
//! so the queue is popped a few hundred times per sweep at most. A single
//! contended `Mutex<VecDeque>` injector benches indistinguishably from a
//! deque-per-worker layout at that task granularity (the lock is held for
//! nanoseconds per multi-second task; see DESIGN.md §11 for the
//! measurement), so the simple shared injector is the implementation.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::sync::OnceLock;

use dtn_sim::metrics::MetricsRegistry;
use dtn_sim::stats::RunSummary;
use dtn_sim::time::SimTime;
use serde::{Deserialize, Serialize};

use dtn_routing::backend::{BackendKind, Overlay};

use crate::runner::{self, seed_parallelism};
use crate::scenario::{Arm, Scenario};

/// A third-party router arm for baseline-comparison cells, mirroring the
/// routers `dtn-routing` ships. Carried by value (not by closure) so a
/// cell is hashable data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterKind {
    /// Flood every contact (MDR ceiling, traffic worst case).
    Epidemic,
    /// Source-only delivery (traffic floor).
    DirectDelivery,
    /// Binary spray-and-wait with the given initial copy budget.
    SprayAndWait(u32),
    /// Source hands one copy to relays; relays deliver only.
    TwoHop,
    /// PRoPHET with default parameters.
    Prophet,
    /// CEDO, pull-based: expected pairs become keyword requests at
    /// creation time.
    Cedo,
}

impl RouterKind {
    /// Stable tag used in cache keys and labels.
    #[must_use]
    pub fn tag(&self) -> String {
        match self {
            RouterKind::Epidemic => "epidemic".into(),
            RouterKind::DirectDelivery => "direct".into(),
            RouterKind::SprayAndWait(copies) => format!("spray{copies}"),
            RouterKind::TwoHop => "twohop".into(),
            RouterKind::Prophet => "prophet".into(),
            RouterKind::Cedo => "cedo".into(),
        }
    }
}

/// What mechanism a cell runs: one of the paper's two arms, a (backend ×
/// overlay) grid point, or a third-party router on the identical workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellKind {
    /// The mechanism (or the ChitChat baseline) via [`runner::run_once`].
    Arm(Arm),
    /// The incentive overlay over an arbitrary routing backend via
    /// [`runner::run_backend`]. ChitChat-backend cells are canonicalized
    /// to [`CellKind::Arm`] by [`Cell::backend`], never constructed here.
    Backend {
        /// The routing substrate.
        backend: BackendKind,
        /// Whether the mechanism wraps it.
        overlay: Overlay,
    },
    /// A third-party router via [`runner::build_with_protocol`] (legacy
    /// standalone baselines: no behavior models, drop-oldest buffers).
    Router(RouterKind),
}

impl CellKind {
    /// Stable tag used in cache keys.
    #[must_use]
    pub fn tag(&self) -> String {
        match self {
            CellKind::Arm(Arm::Incentive) => "arm:incentive".into(),
            CellKind::Arm(Arm::ChitChat) => "arm:chitchat".into(),
            CellKind::Backend { backend, overlay } => {
                format!("backend:{}+overlay:{}", backend.tag(), overlay.tag())
            }
            CellKind::Router(kind) => format!("router:{}", kind.tag()),
        }
    }
}

/// One unit of sweep work: a scenario under one mechanism and one seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// The experimental condition.
    pub scenario: Scenario,
    /// Which mechanism runs it.
    pub kind: CellKind,
    /// The RNG seed.
    pub seed: u64,
}

impl Cell {
    /// A mechanism-arm cell.
    #[must_use]
    pub fn arm(scenario: Scenario, arm: Arm, seed: u64) -> Self {
        Cell {
            scenario,
            kind: CellKind::Arm(arm),
            seed,
        }
    }

    /// A (backend × overlay) grid cell.
    ///
    /// ChitChat-backend cells canonicalize to the corresponding paper arm —
    /// the grid's "Incentive over ChitChat" and "Plain ChitChat" rows *are*
    /// the paper's two arms, so they share cache entries (and goldens) with
    /// every pre-grid sweep instead of re-running under a new tag.
    #[must_use]
    pub fn backend(scenario: Scenario, backend: BackendKind, overlay: Overlay, seed: u64) -> Self {
        let kind = match (backend, overlay) {
            (BackendKind::ChitChat, Overlay::On) => CellKind::Arm(Arm::Incentive),
            (BackendKind::ChitChat, Overlay::Off) => CellKind::Arm(Arm::ChitChat),
            _ => CellKind::Backend { backend, overlay },
        };
        Cell {
            scenario,
            kind,
            seed,
        }
    }

    /// A third-party-router cell.
    #[must_use]
    pub fn router(scenario: Scenario, kind: RouterKind, seed: u64) -> Self {
        Cell {
            scenario,
            kind: CellKind::Router(kind),
            seed,
        }
    }

    /// The cell's content-hash cache key.
    ///
    /// The scenario is canonicalized by clearing its cosmetic `name`
    /// before hashing: two sweeps that build the *same condition* under
    /// different labels (e.g. Fig. 5.3's ×1.0-endowment column and
    /// Fig. 5.1's incentive curve) share cache entries. Everything that
    /// changes the simulation — every Table 5.1 knob, chaos plan,
    /// recovery policy, the arm/router tag, the seed — feeds the hash, as
    /// does the crate version so stale caches die on upgrade. Serde
    /// serializes struct fields in declaration order, so the JSON byte
    /// stream is deterministic.
    ///
    /// The scenario's own `backend`/`overlay` plumbing fields are removed
    /// before hashing: the cell's `kind` tag is the authoritative grid
    /// coordinate (the runner ignores the scenario fields once a cell is
    /// built), and their absence keeps every pre-grid cache entry
    /// byte-compatible. Optional fields added later (`strategies`,
    /// `audit_every`, `selfish_duty_cycle`, `kernel_mode`) are stripped
    /// only while unset:
    /// a scenario that leaves them at their defaults hashes to the key it
    /// always had, while configuring any of them forks the key (they all
    /// change the simulation).
    ///
    /// # Panics
    ///
    /// Panics if the scenario cannot be serialized (non-finite floats).
    #[must_use]
    pub fn cache_key(&self) -> u128 {
        let mut canonical = self.scenario.clone();
        canonical.name = String::new();
        let mut value = Serialize::to_value(&canonical);
        if let serde_json::Value::Map(entries) = &mut value {
            entries.retain(|(key, value)| {
                if key == "backend" || key == "overlay" {
                    return false;
                }
                let null_when_unset = matches!(
                    key.as_str(),
                    "strategies" | "audit_every" | "selfish_duty_cycle" | "kernel_mode"
                );
                !(null_when_unset && matches!(value, serde_json::Value::Null))
            });
            // Optional knobs *inside* the recovery policy follow the same
            // rule: unset (`null`) strips, so a policy predating the knob
            // hashes to the key it always had.
            for (key, value) in entries.iter_mut() {
                if key == "recovery" {
                    if let serde_json::Value::Map(policy) = value {
                        policy.retain(|(k, v)| {
                            !(k == "adaptive_backoff" && matches!(v, serde_json::Value::Null))
                        });
                    }
                }
            }
        }
        let scenario_json =
            serde_json::to_string(&RawJson(value)).expect("scenario serializes to JSON");
        let mut hash = Fnv128::new();
        hash.update(scenario_json.as_bytes());
        hash.update(b"\x00");
        hash.update(self.kind.tag().as_bytes());
        hash.update(b"\x00");
        hash.update(&self.seed.to_le_bytes());
        hash.update(b"\x00");
        hash.update(env!("CARGO_PKG_VERSION").as_bytes());
        hash.finish()
    }
}

/// The memoized outcome of one cell — the kernel summary plus the scalar
/// protocol counters the figure binaries consume (`ProtocolStats` itself
/// is not serializable; these are the fields the harness actually plots).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// Kernel-level statistics.
    pub summary: RunSummary,
    /// Settled first deliveries (0 for router/ChitChat cells).
    pub settlements: u64,
    /// Tokens paid out in settlements (0.0 for router/ChitChat cells).
    pub tokens_awarded: f64,
    /// Nodes that ended the run with zero tokens.
    pub broke_nodes: u64,
    /// Tokens held by strategy-playing nodes at the end of the run (0.0
    /// for strategy-free and router cells). `serde(default)` so cache
    /// entries written before the adversary suite still deserialize.
    #[serde(default)]
    pub attacker_tokens: f64,
}

/// Carries a pre-built JSON value through the serde facade so the
/// canonicalized scenario (plumbing fields stripped) can be stringified.
struct RawJson(serde_json::Value);

impl Serialize for RawJson {
    fn to_value(&self) -> serde_json::Value {
        self.0.clone()
    }
}

/// 128-bit FNV-1a: stable across platforms and runs (unlike `DefaultHasher`,
/// which randomizes per process), with enough width that the figure grid
/// (hundreds of cells) cannot realistically collide.
struct Fnv128 {
    state: u128,
}

impl Fnv128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

    fn new() -> Self {
        Fnv128 {
            state: Self::OFFSET,
        }
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    fn finish(&self) -> u128 {
        self.state
    }
}

/// Hex digest of arbitrary bytes, used as the on-disk integrity hash.
fn fnv128_hex(bytes: &[u8]) -> String {
    let mut h = Fnv128::new();
    h.update(bytes);
    format!("{:032x}", h.finish())
}

// ---------------------------------------------------------------------------
// Process-global executor configuration and cache state.
// ---------------------------------------------------------------------------

/// Worker override; 0 means "use [`seed_parallelism`]".
static WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Cumulative executor counters (process lifetime; [`reset_metrics`] for
/// per-phase measurement).
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static CELLS_RUN: AtomicU64 = AtomicU64::new(0);
static DISK_HITS: AtomicU64 = AtomicU64::new(0);
static DISK_REJECTED: AtomicU64 = AtomicU64::new(0);

fn memo() -> &'static Mutex<HashMap<u128, CellResult>> {
    static MEMO: OnceLock<Mutex<HashMap<u128, CellResult>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

fn cache_dir_slot() -> &'static Mutex<Option<PathBuf>> {
    static DIR: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    DIR.get_or_init(|| Mutex::new(None))
}

/// Sets the worker-pool size for subsequent [`run_cells`] calls; `0`
/// restores the default ([`seed_parallelism`], the machine's cores).
pub fn set_workers(n: usize) {
    WORKERS.store(n, Ordering::SeqCst);
}

/// The effective worker-pool size.
#[must_use]
pub fn workers() -> usize {
    match WORKERS.load(Ordering::SeqCst) {
        0 => seed_parallelism(),
        n => n,
    }
}

/// Enables (`Some(dir)`) or disables (`None`) on-disk cache persistence.
/// The conventional location is `results/.sweep-cache/`; default off.
pub fn set_cache_dir(dir: Option<PathBuf>) {
    *cache_dir_slot().lock().expect("cache dir lock") = dir;
}

/// The configured on-disk cache directory, if any.
#[must_use]
pub fn cache_dir() -> Option<PathBuf> {
    cache_dir_slot().lock().expect("cache dir lock").clone()
}

/// Drops every in-memory cache entry (on-disk entries survive). Used by
/// cold-cache benchmarks and the cache-correctness tests.
pub fn clear_memo() {
    memo().lock().expect("memo lock").clear();
}

/// A point-in-time snapshot of the executor's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepMetrics {
    /// Cells answered from the in-memory or on-disk cache.
    pub cache_hits: u64,
    /// Cells that had to be simulated.
    pub cache_misses: u64,
    /// Cells actually executed (deduplicated misses; a plan that lists
    /// the same cell twice runs it once).
    pub cells_run: u64,
    /// Cache hits served from disk (subset of `cache_hits`).
    pub disk_hits: u64,
    /// On-disk entries rejected as corrupt/truncated and re-run.
    pub disk_rejected: u64,
}

/// Reads the cumulative executor counters.
#[must_use]
pub fn metrics() -> SweepMetrics {
    SweepMetrics {
        cache_hits: CACHE_HITS.load(Ordering::SeqCst),
        cache_misses: CACHE_MISSES.load(Ordering::SeqCst),
        cells_run: CELLS_RUN.load(Ordering::SeqCst),
        disk_hits: DISK_HITS.load(Ordering::SeqCst),
        disk_rejected: DISK_REJECTED.load(Ordering::SeqCst),
    }
}

/// Zeroes the executor counters (e.g. between a cold and a warm phase of
/// a benchmark).
pub fn reset_metrics() {
    CACHE_HITS.store(0, Ordering::SeqCst);
    CACHE_MISSES.store(0, Ordering::SeqCst);
    CELLS_RUN.store(0, Ordering::SeqCst);
    DISK_HITS.store(0, Ordering::SeqCst);
    DISK_REJECTED.store(0, Ordering::SeqCst);
}

/// Exports the executor configuration and counters into a metrics
/// registry (the `kernel.sweep_workers` gauge plus `sweep.*` counters).
pub fn export_metrics(registry: &mut MetricsRegistry) {
    let m = metrics();
    registry.set_gauge("kernel.sweep_workers", workers() as f64);
    registry.add("sweep.cache_hits", m.cache_hits);
    registry.add("sweep.cache_misses", m.cache_misses);
    registry.add("sweep.cells_run", m.cells_run);
    registry.add("sweep.disk_hits", m.disk_hits);
    registry.add("sweep.disk_rejected", m.disk_rejected);
}

// ---------------------------------------------------------------------------
// Disk persistence.
// ---------------------------------------------------------------------------

/// On-disk cache entry: the payload is stored as an *encoded string* so
/// the integrity hash is computed over exactly the bytes that will be
/// re-parsed — any flipped or missing byte changes the digest.
#[derive(Debug, Serialize, Deserialize)]
struct DiskEntry {
    /// The cell's cache key, hex — a moved/renamed file is rejected.
    key: String,
    /// FNV-128 hex digest of `payload`.
    payload_hash: String,
    /// JSON-encoded [`CellResult`].
    payload: String,
}

fn disk_path(dir: &Path, key: u128) -> PathBuf {
    dir.join(format!("{key:032x}.json"))
}

/// Loads a cell result from disk, verifying the integrity hash. Corrupted,
/// truncated, or mismatched entries are discarded (and counted) — the
/// cell re-runs instead of trusting the bytes.
fn disk_load(dir: &Path, key: u128) -> Option<CellResult> {
    let path = disk_path(dir, key);
    let raw = std::fs::read_to_string(&path).ok()?;
    let parsed: Result<DiskEntry, _> = serde_json::from_str(&raw);
    let rejected = |why: &str| {
        DISK_REJECTED.fetch_add(1, Ordering::SeqCst);
        eprintln!(
            "sweep-cache: discarding {} ({why}); the cell will re-run",
            path.display()
        );
        None
    };
    let entry = match parsed {
        Ok(e) => e,
        Err(_) => return rejected("unparseable or truncated"),
    };
    if entry.key != format!("{key:032x}") {
        return rejected("key mismatch");
    }
    if fnv128_hex(entry.payload.as_bytes()) != entry.payload_hash {
        return rejected("payload hash mismatch");
    }
    match serde_json::from_str::<CellResult>(&entry.payload) {
        Ok(result) => Some(result),
        Err(_) => rejected("payload undecodable"),
    }
}

/// Persists a cell result; failures are warnings, never errors (the cache
/// is an accelerator, not a dependency).
fn disk_store(dir: &Path, key: u128, result: &CellResult) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("sweep-cache: cannot create {}: {e}", dir.display());
        return;
    }
    let payload = match serde_json::to_string(result) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("sweep-cache: cannot encode cell result: {e}");
            return;
        }
    };
    let entry = DiskEntry {
        key: format!("{key:032x}"),
        payload_hash: fnv128_hex(payload.as_bytes()),
        payload,
    };
    let encoded = serde_json::to_string(&entry).expect("disk entry serializes");
    let path = disk_path(dir, key);
    // Write-then-rename so a crash mid-write leaves no truncated entry
    // under the final name (and a truncated temp file fails the hash
    // check anyway).
    let tmp = path.with_extension("tmp");
    if std::fs::write(&tmp, encoded)
        .and_then(|()| std::fs::rename(&tmp, &path))
        .is_err()
    {
        eprintln!("sweep-cache: cannot write {}", path.display());
    }
}

// ---------------------------------------------------------------------------
// Cell execution.
// ---------------------------------------------------------------------------

/// Simulates one cell from scratch (no cache involvement).
#[must_use]
pub fn run_cell_uncached(cell: &Cell) -> CellResult {
    match cell.kind {
        CellKind::Arm(arm) => {
            let run = runner::run_once(&cell.scenario, arm, cell.seed);
            CellResult {
                summary: run.summary,
                settlements: run.protocol.settlements,
                tokens_awarded: run.protocol.tokens_awarded,
                broke_nodes: run.broke_nodes as u64,
                attacker_tokens: run.attacker_tokens,
            }
        }
        CellKind::Backend { backend, overlay } => {
            let run = runner::run_backend(&cell.scenario, backend, overlay, cell.seed);
            CellResult {
                summary: run.summary,
                settlements: run.protocol.settlements,
                tokens_awarded: run.protocol.tokens_awarded,
                broke_nodes: run.broke_nodes as u64,
                attacker_tokens: run.attacker_tokens,
            }
        }
        CellKind::Router(kind) => {
            let summary = run_router_cell(&cell.scenario, kind, cell.seed);
            CellResult {
                summary,
                settlements: 0,
                tokens_awarded: 0.0,
                broke_nodes: 0,
                attacker_tokens: 0.0,
            }
        }
    }
}

fn run_router_cell(scenario: &Scenario, kind: RouterKind, seed: u64) -> RunSummary {
    use dtn_routing::prelude::*;
    fn finish<P: dtn_sim::protocol::Protocol>(
        mut sim: dtn_sim::kernel::Simulation<P>,
        duration_secs: f64,
    ) -> RunSummary {
        sim.run_until(SimTime::from_secs(duration_secs))
    }
    let duration = scenario.duration_secs;
    match kind {
        RouterKind::Epidemic => finish(
            runner::build_with_protocol(scenario, seed, |pop, _| {
                EpidemicRouter::new(pop.interest_directory())
            }),
            duration,
        ),
        RouterKind::DirectDelivery => finish(
            runner::build_with_protocol(scenario, seed, |pop, _| {
                DirectDeliveryRouter::new(pop.interest_directory())
            }),
            duration,
        ),
        RouterKind::SprayAndWait(copies) => finish(
            runner::build_with_protocol(scenario, seed, |pop, _| {
                SprayAndWaitRouter::new(pop.interest_directory(), copies)
            }),
            duration,
        ),
        RouterKind::TwoHop => finish(
            runner::build_with_protocol(scenario, seed, |pop, _| {
                TwoHopRelayRouter::new(pop.interest_directory())
            }),
            duration,
        ),
        RouterKind::Prophet => finish(
            runner::build_with_protocol(scenario, seed, |pop, _| {
                ProphetRouter::new(pop.interest_directory(), ProphetParams::default())
            }),
            duration,
        ),
        RouterKind::Cedo => finish(
            runner::build_with_protocol(scenario, seed, |pop, schedule| {
                // CEDO is pull-based: each expected (message, destination)
                // pair becomes a keyword request issued at creation time.
                let mut router = CedoRouter::new(pop.interests.len());
                for m in schedule {
                    for &dest in &m.expected_destinations {
                        for &kw in &m.source_tags {
                            if pop.interests[dest.index()].contains(&kw) {
                                router.schedule_request(m.at, dest, kw, m.ttl_secs);
                            }
                        }
                    }
                }
                router
            }),
            duration,
        ),
    }
}

/// Executes a plan of cells and returns their results **in plan order**.
///
/// Cached cells (in-memory, then on-disk if persistence is enabled) are
/// answered without simulating. The remaining distinct cells are pushed
/// onto one shared injector queue and drained by a pool of
/// [`workers`] threads — no chunk barriers, so a finished worker
/// immediately picks up the next pending cell and the pool stays
/// saturated until the queue is empty. Duplicate cells within one plan
/// run once.
///
/// Determinism: each cell's simulation is deterministic and shares no
/// state with its neighbours; results land in per-cell slots and are read
/// back in plan order, so the returned vector (and everything aggregated
/// from it) is byte-identical at any worker count.
///
/// # Panics
///
/// Panics if a worker thread panics (a simulation invariant breach).
#[must_use]
pub fn run_cells(cells: &[Cell]) -> Vec<CellResult> {
    let keys: Vec<u128> = cells.iter().map(Cell::cache_key).collect();
    let dir = cache_dir();

    // Resolve what is already known. `pending` maps each distinct missing
    // key to the index of the first cell that needs it.
    let mut resolved: HashMap<u128, CellResult> = HashMap::new();
    let mut pending: Vec<(u128, usize)> = Vec::new();
    {
        let mut memo = memo().lock().expect("memo lock");
        for (i, &key) in keys.iter().enumerate() {
            if resolved.contains_key(&key) || pending.iter().any(|&(k, _)| k == key) {
                continue;
            }
            if let Some(hit) = memo.get(&key) {
                CACHE_HITS.fetch_add(1, Ordering::SeqCst);
                resolved.insert(key, hit.clone());
            } else if let Some(hit) = dir.as_deref().and_then(|d| disk_load(d, key)) {
                CACHE_HITS.fetch_add(1, Ordering::SeqCst);
                DISK_HITS.fetch_add(1, Ordering::SeqCst);
                // Promote to the memo so later plans in this process pay
                // the parse-and-verify cost once, not per figure.
                memo.insert(key, hit.clone());
                resolved.insert(key, hit);
            } else {
                CACHE_MISSES.fetch_add(1, Ordering::SeqCst);
                pending.push((key, i));
            }
        }
    }

    // Drain the misses through the worker pool.
    if !pending.is_empty() {
        CELLS_RUN.fetch_add(pending.len() as u64, Ordering::SeqCst);
        let injector: Mutex<VecDeque<usize>> = Mutex::new((0..pending.len()).collect());
        let slots: Vec<Mutex<Option<CellResult>>> =
            (0..pending.len()).map(|_| Mutex::new(None)).collect();
        let pool = workers().min(pending.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..pool {
                scope.spawn(|| loop {
                    let next = injector.lock().expect("injector lock").pop_front();
                    let Some(slot) = next else { break };
                    let (_, cell_idx) = pending[slot];
                    let result = run_cell_uncached(&cells[cell_idx]);
                    *slots[slot].lock().expect("slot lock") = Some(result);
                });
            }
        });
        let mut memo = memo().lock().expect("memo lock");
        for (slot, &(key, _)) in pending.iter().enumerate() {
            let result = slots[slot]
                .lock()
                .expect("slot lock")
                .take()
                .expect("worker filled the slot");
            if let Some(d) = dir.as_deref() {
                disk_store(d, key, &result);
            }
            memo.insert(key, result.clone());
            resolved.insert(key, result);
        }
    }

    // Plan-order aggregation.
    keys.iter()
        .map(|key| resolved.get(key).expect("every key resolved").clone())
        .collect()
}

/// Runs one arm over several seeds through the executor, returning the
/// per-seed summaries in `seeds` order.
///
/// # Panics
///
/// Panics if `seeds` is empty.
#[must_use]
pub fn run_arm_seeds(scenario: &Scenario, arm: Arm, seeds: &[u64]) -> Vec<RunSummary> {
    assert!(!seeds.is_empty(), "need at least one seed");
    let cells: Vec<Cell> = seeds
        .iter()
        .map(|&seed| Cell::arm(scenario.clone(), arm, seed))
        .collect();
    run_cells(&cells).into_iter().map(|r| r.summary).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    fn tiny(name: &str) -> Scenario {
        let mut s = paper::reduced_scenario();
        s.nodes = 16;
        s.area_km2 = 0.2;
        s.duration_secs = 600.0;
        s.message_interval_secs = 30.0;
        s.message_ttl_secs = 500.0;
        s.named(name)
    }

    #[test]
    fn cache_key_ignores_name_but_nothing_else() {
        let a = Cell::arm(tiny("alpha"), Arm::Incentive, 7);
        let b = Cell::arm(tiny("beta"), Arm::Incentive, 7);
        assert_eq!(a.cache_key(), b.cache_key(), "names are cosmetic");

        let other_seed = Cell::arm(tiny("alpha"), Arm::Incentive, 8);
        assert_ne!(a.cache_key(), other_seed.cache_key());
        let other_arm = Cell::arm(tiny("alpha"), Arm::ChitChat, 7);
        assert_ne!(a.cache_key(), other_arm.cache_key());
        let mut tweaked = tiny("alpha");
        tweaked.selfish_fraction = 0.35;
        assert_ne!(
            a.cache_key(),
            Cell::arm(tweaked, Arm::Incentive, 7).cache_key()
        );
        let router = Cell::router(tiny("alpha"), RouterKind::Epidemic, 7);
        assert_ne!(a.cache_key(), router.cache_key());
        assert_ne!(
            Cell::router(tiny("x"), RouterKind::SprayAndWait(4), 7).cache_key(),
            Cell::router(tiny("x"), RouterKind::SprayAndWait(8), 7).cache_key()
        );
    }

    #[test]
    fn executor_matches_direct_runs_at_any_worker_count() {
        let s = tiny("exec");
        let cells: Vec<Cell> = [
            (Arm::Incentive, 1u64),
            (Arm::ChitChat, 1),
            (Arm::Incentive, 2),
        ]
        .iter()
        .map(|&(arm, seed)| Cell::arm(s.clone(), arm, seed))
        .collect();
        let direct: Vec<CellResult> = cells.iter().map(run_cell_uncached).collect();

        let prior = workers();
        for n in [1usize, 4] {
            set_workers(n);
            clear_memo();
            let pooled = run_cells(&cells);
            assert_eq!(pooled, direct, "worker count {n} must not change results");
        }
        set_workers(prior);
    }

    #[test]
    fn duplicate_cells_run_once_and_agree() {
        let s = tiny("dup");
        clear_memo();
        let before = metrics();
        let cells = vec![
            Cell::arm(s.clone(), Arm::ChitChat, 3),
            Cell::arm(s.clone(), Arm::ChitChat, 3),
            Cell::arm(s.named("renamed"), Arm::ChitChat, 3),
        ];
        let results = run_cells(&cells);
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2], "rename dedups via canonical key");
        let after = metrics();
        assert_eq!(after.cells_run - before.cells_run, 1, "one simulation");
    }

    #[test]
    fn memo_serves_second_call_without_running() {
        let s = tiny("memo");
        clear_memo();
        let cells = vec![Cell::arm(s, Arm::ChitChat, 5)];
        let cold = run_cells(&cells);
        let before = metrics();
        let warm = run_cells(&cells);
        let after = metrics();
        assert_eq!(cold, warm, "cache hit is bit-identical");
        assert_eq!(after.cells_run, before.cells_run, "nothing re-ran");
        assert_eq!(after.cache_hits, before.cache_hits + 1);
    }

    #[test]
    fn chitchat_backend_cells_canonicalize_to_the_paper_arms() {
        // The grid's ChitChat rows ARE the paper arms: same kind, same key,
        // so they share cache entries with every pre-grid sweep.
        let on = Cell::backend(tiny("grid"), BackendKind::ChitChat, Overlay::On, 7);
        assert_eq!(on.kind, CellKind::Arm(Arm::Incentive));
        assert_eq!(
            on.cache_key(),
            Cell::arm(tiny("grid"), Arm::Incentive, 7).cache_key()
        );
        let off = Cell::backend(tiny("grid"), BackendKind::ChitChat, Overlay::Off, 7);
        assert_eq!(off.kind, CellKind::Arm(Arm::ChitChat));

        // Non-ChitChat grid points get their own tag space, distinct from
        // both the arms and the legacy standalone-router cells.
        let grid = Cell::backend(tiny("grid"), BackendKind::Epidemic, Overlay::On, 7);
        assert_eq!(
            grid.kind,
            CellKind::Backend {
                backend: BackendKind::Epidemic,
                overlay: Overlay::On,
            }
        );
        assert_ne!(grid.cache_key(), on.cache_key());
        assert_ne!(
            grid.cache_key(),
            Cell::router(tiny("grid"), RouterKind::Epidemic, 7).cache_key()
        );
        assert_ne!(
            grid.cache_key(),
            Cell::backend(tiny("grid"), BackendKind::Epidemic, Overlay::Off, 7).cache_key()
        );
    }

    #[test]
    fn scenario_plumbing_fields_do_not_fork_the_cache_key() {
        // `Scenario::backend`/`overlay` are defaults consumed when the plan
        // is built; the cell's kind is authoritative, so setting them must
        // not split the cache (and their absence from the hash keeps
        // pre-grid disk entries valid).
        let bare = Cell::arm(tiny("plumb"), Arm::Incentive, 9);
        let mut annotated_scenario = tiny("plumb");
        annotated_scenario.backend = Some(BackendKind::Prophet);
        annotated_scenario.overlay = Some(Overlay::Off);
        let annotated = Cell::arm(annotated_scenario, Arm::Incentive, 9);
        assert_eq!(bare.cache_key(), annotated.cache_key());
    }

    #[test]
    fn unset_strategy_fields_keep_pre_existing_cache_keys() {
        // Leaving the adversary-suite fields at their defaults must hash to
        // the same key the scenario had before the fields existed (so no
        // disk cache is invalidated); configuring any of them forks it.
        let bare = Cell::arm(tiny("strat"), Arm::Incentive, 9);
        let defaulted = {
            let mut s = tiny("strat");
            s.strategies = None;
            s.audit_every = None;
            s.selfish_duty_cycle = None;
            Cell::arm(s, Arm::Incentive, 9)
        };
        assert_eq!(bare.cache_key(), defaulted.cache_key());

        let mut with_mix = tiny("strat");
        with_mix.strategies = Some("free=0.2".parse().unwrap());
        assert_ne!(
            bare.cache_key(),
            Cell::arm(with_mix.clone(), Arm::Incentive, 9).cache_key()
        );
        let mut defended = with_mix.clone();
        defended.strategies = Some("free=0.2,defense".parse().unwrap());
        assert_ne!(
            Cell::arm(with_mix, Arm::Incentive, 9).cache_key(),
            Cell::arm(defended, Arm::Incentive, 9).cache_key(),
            "the defense flag is part of the condition"
        );
        let mut audited = tiny("strat");
        audited.audit_every = Some(60);
        assert_ne!(
            bare.cache_key(),
            Cell::arm(audited, Arm::Incentive, 9).cache_key()
        );
        let mut duty = tiny("strat");
        duty.selfish_duty_cycle = Some(0.2);
        assert_ne!(
            bare.cache_key(),
            Cell::arm(duty, Arm::Incentive, 9).cache_key()
        );
    }

    #[test]
    fn unset_kernel_mode_keeps_pre_existing_cache_keys() {
        // A scenario that leaves the kernel-mode knob unset must hash to
        // the key it had before the knob existed (no disk cache dies on
        // the event-core release); pinning either core forks the key, and
        // the two cores fork to *different* keys — byte-identical output
        // is a theorem the conformance suite checks, not something the
        // cache layer is allowed to assume.
        let bare = Cell::arm(tiny("mode"), Arm::Incentive, 9);
        let defaulted = {
            let mut s = tiny("mode");
            s.kernel_mode = None;
            Cell::arm(s, Arm::Incentive, 9)
        };
        assert_eq!(bare.cache_key(), defaulted.cache_key());
        let json = {
            let mut canonical = tiny("mode");
            canonical.name = String::new();
            serde_json::to_string(&Serialize::to_value(&canonical)).unwrap()
        };
        assert!(
            json.contains("\"kernel_mode\":null"),
            "the raw serialization carries the unset knob: {json}"
        );

        let mut event = tiny("mode");
        event.kernel_mode = Some(dtn_sim::events::KernelMode::EventDriven);
        let mut stepped = tiny("mode");
        stepped.kernel_mode = Some(dtn_sim::events::KernelMode::TimeStepped);
        let event_key = Cell::arm(event, Arm::Incentive, 9).cache_key();
        let stepped_key = Cell::arm(stepped, Arm::Incentive, 9).cache_key();
        assert_ne!(bare.cache_key(), event_key);
        assert_ne!(bare.cache_key(), stepped_key);
        assert_ne!(event_key, stepped_key);
    }

    #[test]
    fn unset_adaptive_backoff_keeps_pre_existing_recovery_cache_keys() {
        // A recovery policy predating the adaptive-backoff knob must hash
        // to the key it always had; arming the knob forks it.
        let mut with_recovery = tiny("recov");
        with_recovery.recovery = Some(dtn_sim::transfer::RecoveryPolicy::default());
        let bare = Cell::arm(with_recovery.clone(), Arm::Incentive, 9);
        let json = {
            let mut canonical = with_recovery.clone();
            canonical.name = String::new();
            serde_json::to_string(&Serialize::to_value(&canonical)).unwrap()
        };
        assert!(
            json.contains("\"adaptive_backoff\":null"),
            "the raw serialization carries the unset knob: {json}"
        );

        let mut adaptive = with_recovery.clone();
        adaptive.recovery = Some(dtn_sim::transfer::RecoveryPolicy {
            adaptive_backoff: Some(true),
            ..dtn_sim::transfer::RecoveryPolicy::default()
        });
        assert_ne!(
            bare.cache_key(),
            Cell::arm(adaptive, Arm::Incentive, 9).cache_key(),
            "arming adaptive backoff changes the condition"
        );
        let mut disabled = with_recovery;
        disabled.recovery = Some(dtn_sim::transfer::RecoveryPolicy {
            adaptive_backoff: Some(false),
            ..dtn_sim::transfer::RecoveryPolicy::default()
        });
        assert_ne!(
            bare.cache_key(),
            Cell::arm(disabled, Arm::Incentive, 9).cache_key(),
            "an explicit `false` is a different document than unset"
        );
    }

    #[test]
    fn backend_cells_execute_through_the_pool() {
        let s = tiny("backend-pool");
        clear_memo();
        let cells = vec![
            Cell::backend(s.clone(), BackendKind::Epidemic, Overlay::On, 2),
            Cell::backend(s.clone(), BackendKind::DirectDelivery, Overlay::On, 2),
        ];
        let results = run_cells(&cells);
        for r in &results {
            let ratio = r.summary.delivery_ratio;
            assert!((0.0..=1.0).contains(&ratio), "ratio {ratio} out of range");
        }
        assert!(
            results[0].summary.relays_completed > results[1].summary.relays_completed,
            "epidemic floods more than direct delivery under the overlay too"
        );
    }

    #[test]
    fn router_cells_execute_through_the_pool() {
        let s = tiny("routers");
        clear_memo();
        let cells = vec![
            Cell::router(s.clone(), RouterKind::Epidemic, 2),
            Cell::router(s.clone(), RouterKind::DirectDelivery, 2),
        ];
        let results = run_cells(&cells);
        assert!(
            results[0].summary.relays_completed > results[1].summary.relays_completed,
            "epidemic floods more than direct delivery"
        );
        assert_eq!(results[0].settlements, 0, "routers have no economy");
    }
}
