//! Population synthesis: interests, behaviors, roles and source classes.

use std::collections::HashSet;

use dtn_core::behavior::NodeBehavior;
use dtn_core::strategy::StrategyKind;
use dtn_incentive::params::Role;
use dtn_routing::directory::InterestDirectory;
use dtn_sim::message::{Keyword, Priority};
use dtn_sim::rng::SimRng;
use dtn_sim::world::NodeId;

use crate::scenario::Scenario;

/// A node's quality/priority class (Fig. 5.6's 50/30/20 source mix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceClass {
    /// High quality, high priority, larger messages.
    High,
    /// Medium quality and priority.
    Medium,
    /// Low quality and priority, smaller messages.
    Low,
}

impl SourceClass {
    /// The priority this class assigns to its messages.
    #[must_use]
    pub fn priority(self) -> Priority {
        match self {
            SourceClass::High => Priority::High,
            SourceClass::Medium => Priority::Medium,
            SourceClass::Low => Priority::Low,
        }
    }

    /// The quality range this class draws from.
    #[must_use]
    pub fn quality_range(self) -> (f64, f64) {
        match self {
            SourceClass::High => (0.8, 1.0),
            SourceClass::Medium => (0.5, 0.8),
            SourceClass::Low => (0.2, 0.5),
        }
    }

    /// Size multiplier over the scenario's base message size ("the higher
    /// quality message has a larger size also", Fig. 5.6 discussion).
    #[must_use]
    pub fn size_multiplier(self) -> f64 {
        match self {
            SourceClass::High => 1.5,
            SourceClass::Medium => 1.0,
            SourceClass::Low => 0.7,
        }
    }
}

/// The synthesized population for one run.
#[derive(Debug, Clone)]
pub struct Population {
    /// Per-node direct-interest sets.
    pub interests: Vec<HashSet<Keyword>>,
    /// Per-node behavior.
    pub behaviors: Vec<NodeBehavior>,
    /// Per-node role.
    pub roles: Vec<Role>,
    /// Per-node source class.
    pub classes: Vec<SourceClass>,
    /// Per-node economic strategy (`None` everywhere unless the scenario
    /// configures a strategy mix).
    pub strategies: Vec<Option<StrategyKind>>,
}

impl Population {
    /// Synthesizes the population for `scenario` from the given RNG stream.
    ///
    /// Selfish and malicious nodes are disjoint subsets drawn uniformly;
    /// interests are `interests_per_node` distinct keywords per node;
    /// classes follow the scenario's 50/30/20 mix; a small fraction of
    /// nodes (one in ten) gets the top role, the rest the default.
    #[must_use]
    pub fn synthesize(scenario: &Scenario, rng: &SimRng) -> Self {
        let n = scenario.nodes;
        let mut interest_rng = rng.stream(1);
        let interests: Vec<HashSet<Keyword>> = (0..n)
            .map(|_| {
                interest_rng
                    .choose_indices(scenario.keyword_pool as usize, scenario.interests_per_node)
                    .into_iter()
                    .map(|i| Keyword(i as u32))
                    .collect()
            })
            .collect();

        let mut behavior_rng = rng.stream(2);
        let selfish_count = (scenario.selfish_fraction * n as f64).round() as usize;
        let malicious_count = (scenario.malicious_fraction * n as f64).round() as usize;
        let special = behavior_rng.choose_indices(n, (selfish_count + malicious_count).min(n));
        let mut behaviors = vec![NodeBehavior::Honest; n];
        let selfish = NodeBehavior::Selfish {
            duty_cycle: scenario.effective_selfish_duty_cycle(),
        };
        for (rank, &idx) in special.iter().enumerate() {
            behaviors[idx] = if rank < selfish_count {
                selfish
            } else {
                NodeBehavior::Malicious
            };
        }

        let mut class_rng = rng.stream(3);
        let classes: Vec<SourceClass> = (0..n)
            .map(|_| {
                let x: f64 = class_rng.uniform(0.0, 1.0);
                if x < scenario.class_mix.high {
                    SourceClass::High
                } else if x < scenario.class_mix.high + scenario.class_mix.medium {
                    SourceClass::Medium
                } else {
                    SourceClass::Low
                }
            })
            .collect();

        let mut role_rng = rng.stream(4);
        let roles: Vec<Role> = (0..n)
            .map(|_| {
                if role_rng.chance(0.1) {
                    Role::TOP
                } else {
                    Role::default()
                }
            })
            .collect();

        // Strategy assignment draws from its own stream, and *only* when
        // the scenario configures attackers: a strategy-free scenario must
        // consume exactly the draws it always consumed, so every existing
        // run (and golden) is byte-identical.
        let mut strategies = vec![None; n];
        if let Some(mix) = &scenario.strategies {
            let counts = mix.counts(n);
            let attackers: usize = counts.iter().sum();
            if attackers > 0 {
                let mut strategy_rng = rng.stream(5);
                let chosen = strategy_rng.choose_indices(n, attackers);
                for (rank, &idx) in chosen.iter().enumerate() {
                    strategies[idx] = mix.kind_for_rank(rank, counts);
                }
            }
        }

        Population {
            interests,
            behaviors,
            roles,
            classes,
            strategies,
        }
    }

    /// Count of strategy-playing (attacker) nodes.
    #[must_use]
    pub fn attacker_count(&self) -> usize {
        self.strategies.iter().filter(|s| s.is_some()).count()
    }

    /// Each node's direct interests, sorted — the canonical subscription
    /// order used everywhere a router is seeded from this population
    /// (deterministic across HashSet iteration orders).
    #[must_use]
    pub fn sorted_interests(&self, node: NodeId) -> Vec<Keyword> {
        let mut sorted: Vec<Keyword> = self.interests[node.index()].iter().copied().collect();
        sorted.sort_unstable();
        sorted
    }

    /// The population's direct interests as an [`InterestDirectory`] — the
    /// registry the node-centric baselines and the delivery-expectation
    /// computation share, so every consumer resolves destinations with the
    /// same code.
    #[must_use]
    pub fn interest_directory(&self) -> InterestDirectory {
        let mut dir = InterestDirectory::new(self.interests.len());
        for i in 0..self.interests.len() {
            let node = NodeId(i as u32);
            dir.subscribe(node, self.sorted_interests(node));
        }
        dir
    }

    /// Nodes holding a direct interest in any of `keywords`, excluding
    /// `except` (delegates to the [`InterestDirectory`] semantics without
    /// materializing one).
    #[must_use]
    pub fn destinations_for(&self, keywords: &[Keyword], except: NodeId) -> Vec<NodeId> {
        self.interests
            .iter()
            .enumerate()
            .filter(|(i, set)| {
                NodeId(*i as u32) != except && keywords.iter().any(|k| set.contains(k))
            })
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Count of selfish nodes.
    #[must_use]
    pub fn selfish_count(&self) -> usize {
        self.behaviors.iter().filter(|b| b.is_selfish()).count()
    }

    /// Count of malicious nodes.
    #[must_use]
    pub fn malicious_count(&self) -> usize {
        self.behaviors.iter().filter(|b| b.is_malicious()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    fn pop(selfish: f64, malicious: f64) -> Population {
        let mut s = paper::reduced_scenario();
        s.selfish_fraction = selfish;
        s.malicious_fraction = malicious;
        Population::synthesize(&s, &SimRng::new(9))
    }

    #[test]
    fn interest_sets_have_requested_size() {
        let s = paper::reduced_scenario();
        let p = Population::synthesize(&s, &SimRng::new(1));
        assert_eq!(p.interests.len(), s.nodes);
        for set in &p.interests {
            assert_eq!(set.len(), s.interests_per_node);
            assert!(set.iter().all(|k| k.0 < s.keyword_pool));
        }
    }

    #[test]
    fn behavior_counts_match_fractions() {
        let p = pop(0.3, 0.1);
        let n = p.behaviors.len();
        assert_eq!(p.selfish_count(), (0.3 * n as f64).round() as usize);
        assert_eq!(p.malicious_count(), (0.1 * n as f64).round() as usize);
    }

    #[test]
    fn selfish_and_malicious_are_disjoint_by_construction() {
        let p = pop(0.5, 0.5);
        assert_eq!(p.selfish_count() + p.malicious_count(), p.behaviors.len());
    }

    #[test]
    fn class_mix_roughly_matches() {
        let mut s = paper::reduced_scenario();
        s.nodes = 1000;
        let p = Population::synthesize(&s, &SimRng::new(2));
        let high = p
            .classes
            .iter()
            .filter(|c| **c == SourceClass::High)
            .count();
        assert!((400..600).contains(&high), "≈50% high, got {high}");
    }

    #[test]
    fn destinations_respect_interests_and_exclusion() {
        let p = pop(0.0, 0.0);
        let kw: Keyword = *p.interests[3].iter().next().expect("nonempty");
        let dests = p.destinations_for(&[kw], NodeId(3));
        assert!(!dests.contains(&NodeId(3)), "source excluded");
        assert!(!dests.is_empty() || p.interests.iter().filter(|s| s.contains(&kw)).count() <= 1);
        for d in dests {
            assert!(p.interests[d.index()].contains(&kw));
        }
    }

    #[test]
    fn interest_directory_agrees_with_destinations_for() {
        let s = paper::reduced_scenario();
        let p = Population::synthesize(&s, &SimRng::new(3));
        let dir = p.interest_directory();
        let kw: Keyword = *p.interests[0].iter().next().expect("nonempty");
        assert_eq!(
            p.destinations_for(&[kw], NodeId(0)),
            dir.destinations_for(&[kw], NodeId(0)),
            "one destination-resolution semantics"
        );
        assert_eq!(dir.node_count(), s.nodes);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let s = paper::reduced_scenario();
        let a = Population::synthesize(&s, &SimRng::new(5));
        let b = Population::synthesize(&s, &SimRng::new(5));
        assert_eq!(a.interests, b.interests);
        assert_eq!(a.behaviors, b.behaviors);
        assert_eq!(a.classes, b.classes);
    }

    #[test]
    fn strategies_follow_the_mix_and_leave_other_streams_untouched() {
        let mut s = paper::reduced_scenario();
        s.strategies = Some("free=0.2,minority=0.1,farm=0.1,white=0.05".parse().unwrap());
        let p = Population::synthesize(&s, &SimRng::new(7));
        let mix = s.strategies.unwrap();
        assert_eq!(p.attacker_count(), mix.counts(s.nodes).iter().sum());
        let free = p
            .strategies
            .iter()
            .filter(|k| **k == Some(StrategyKind::FreeRider))
            .count();
        assert_eq!(free, 20);
        // The strategy stream is separate: interests/behaviors/classes/
        // roles are identical with and without strategies configured.
        let plain = Population::synthesize(&paper::reduced_scenario(), &SimRng::new(7));
        assert_eq!(p.interests, plain.interests);
        assert_eq!(p.behaviors, plain.behaviors);
        assert_eq!(p.classes, plain.classes);
        assert_eq!(p.roles, plain.roles);
        assert!(plain.strategies.iter().all(Option::is_none));
        // A defense-only mix assigns nobody and draws nothing.
        let mut d = paper::reduced_scenario();
        d.strategies = Some("defense".parse().unwrap());
        let defended = Population::synthesize(&d, &SimRng::new(7));
        assert_eq!(defended.attacker_count(), 0);
    }

    #[test]
    fn selfish_duty_cycle_override_reaches_behaviors() {
        let mut s = paper::reduced_scenario();
        s.selfish_fraction = 0.3;
        s.selfish_duty_cycle = Some(0.25);
        let p = Population::synthesize(&s, &SimRng::new(11));
        assert!(p
            .behaviors
            .iter()
            .filter(|b| b.is_selfish())
            .all(|b| *b == NodeBehavior::Selfish { duty_cycle: 0.25 }));
    }

    #[test]
    fn class_properties_are_ordered() {
        assert!(SourceClass::High.quality_range().0 > SourceClass::Medium.quality_range().0);
        assert!(SourceClass::Medium.quality_range().0 > SourceClass::Low.quality_range().0);
        assert!(SourceClass::High.size_multiplier() > SourceClass::Low.size_multiplier());
        assert_eq!(SourceClass::High.priority(), Priority::High);
        assert_eq!(SourceClass::Low.priority(), Priority::Low);
    }
}
