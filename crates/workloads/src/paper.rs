//! The paper's scenarios (Table 5.1) and per-figure sweeps.
//!
//! Every figure binary in `dtn-bench` builds its conditions from these
//! constructors. Two scales exist:
//!
//! * [`table51_scenario`] — the paper's exact configuration: 500 nodes,
//!   5 km², 24 simulated hours. Minutes of wall-clock per (arm, seed).
//! * [`reduced_scenario`] — the same node *density* (100 nodes on 1 km²)
//!   over 3 simulated hours: seconds per run, same qualitative shapes.
//!   EXPERIMENTS.md records results at this scale (and spot-checks at
//!   full scale).

use dtn_core::params::ProtocolParams;
use dtn_sim::radio::RadioConfig;

use crate::scenario::{Scenario, SourceClassMix};

/// The paper's default seeds: "results shown are average of five
/// simulation runs".
pub const PAPER_SEEDS: [u64; 5] = [101, 202, 303, 404, 505];

/// Reduced-scale seeds for quick runs (three seeds keep noise tolerable).
pub const QUICK_SEEDS: [u64; 3] = [101, 202, 303];

/// The first `n` seeds of the deterministic family behind
/// [`QUICK_SEEDS`] and [`PAPER_SEEDS`] (`101, 202, 303, …`): requesting
/// more seeds than the quick set extends the sequence instead of failing,
/// so `--seeds 8` means "average over eight seeds", not an error.
#[must_use]
pub fn seeds_for(n: usize) -> Vec<u64> {
    (1..=n as u64).map(|i| i * 101).collect()
}

/// The exact Table 5.1 configuration.
#[must_use]
pub fn table51_scenario() -> Scenario {
    Scenario {
        name: "table-5.1".into(),
        nodes: 500,
        area_km2: 5.0,
        duration_secs: 24.0 * 3600.0,
        keyword_pool: 200,
        interests_per_node: 20,
        radio: RadioConfig::paper_default(),
        buffer_bytes: 250_000_000,
        message_size: 1_000_000,
        message_ttl_secs: 5.0 * 3600.0,
        message_interval_secs: 30.0,
        ground_truth_keywords: 5,
        source_tag_fraction: 0.6,
        selfish_fraction: 0.0,
        malicious_fraction: 0.0,
        class_mix: SourceClassMix::paper_default(),
        battery_joules: None,
        mobility: crate::scenario::Mobility::RandomWaypoint,
        protocol: ProtocolParams::paper_default(),
        chaos: None,
        recovery: None,
        threads: None,
        backend: None,
        overlay: None,
        strategies: None,
        audit_every: None,
        selfish_duty_cycle: None,
        kernel_mode: None,
    }
}

/// The reduced-scale configuration: identical node density, 100 nodes /
/// 1 km² / 3 h.
///
/// Two knobs are scaled along with the load so the reduced runs sit in the
/// same *economic regime* as the paper's 24-hour runs:
///
/// * message interval 15 s (720 messages): per-node expected receptions ≈
///   195 vs the paper's ≈ 780 — same order of demand pressure;
/// * the token endowment is scaled demand-proportionally to 75 (the paper's
///   200 tokens fund ≈ 0.26 tokens per expected reception; 75 keeps that
///   ratio at the reduced demand). Without this, tokens never exhaust in a
///   3-hour run and the starvation dynamic Fig. 5.2 measures cannot engage.
#[must_use]
pub fn reduced_scenario() -> Scenario {
    let mut s = Scenario {
        name: "reduced".into(),
        nodes: 100,
        area_km2: 1.0,
        duration_secs: 3.0 * 3600.0,
        message_ttl_secs: 3600.0,
        message_interval_secs: 15.0,
        ..table51_scenario()
    };
    s.protocol.incentive.initial_tokens = 75.0;
    s
}

/// Scale selector used by the figure binaries (`--full` flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper scale (Table 5.1).
    Full,
    /// Density-preserving reduced scale.
    Reduced,
}

impl Scale {
    /// The base scenario at this scale.
    #[must_use]
    pub fn base_scenario(self) -> Scenario {
        match self {
            Scale::Full => table51_scenario(),
            Scale::Reduced => reduced_scenario(),
        }
    }

    /// The seed set customary at this scale.
    #[must_use]
    pub fn seeds(self) -> &'static [u64] {
        match self {
            Scale::Full => &PAPER_SEEDS,
            Scale::Reduced => &QUICK_SEEDS,
        }
    }
}

/// Fig. 5.1 / 5.2 sweep: selfish percentage 0–100 in steps of 10.
#[must_use]
pub fn selfish_sweep(scale: Scale) -> Vec<Scenario> {
    (0..=10)
        .map(|step| {
            let pct = step * 10;
            let mut s = scale.base_scenario();
            s.selfish_fraction = f64::from(pct) / 100.0;
            s.named(format!("selfish-{pct}pct"))
        })
        .collect()
}

/// Fig. 5.3 sweep: initial token endowments × selfish percentages.
///
/// The paper varies the Table 5.1 endowment of 200; we sweep ×0.5 / ×1 /
/// ×2 of the scale's base endowment (100/200/400 at full scale, 37.5/75/
/// 150 at reduced scale), which keeps the sweep meaningful in both
/// economic regimes.
#[must_use]
pub fn token_sweep(scale: Scale) -> Vec<(f64, Vec<Scenario>)> {
    let base_tokens = scale.base_scenario().protocol.incentive.initial_tokens;
    [0.5, 1.0, 2.0]
        .into_iter()
        .map(|mult| {
            let tokens = base_tokens * mult;
            let scenarios = [0, 20, 40, 60, 80]
                .into_iter()
                .map(|pct| {
                    let mut s = scale.base_scenario();
                    s.selfish_fraction = f64::from(pct) / 100.0;
                    s.protocol.incentive.initial_tokens = tokens;
                    s.named(format!("tokens-{tokens}-selfish-{pct}pct"))
                })
                .collect();
            (tokens, scenarios)
        })
        .collect()
}

/// Fig. 5.4 sweep: malicious percentage 10–40 in steps of 10.
#[must_use]
pub fn malicious_sweep(scale: Scale) -> Vec<Scenario> {
    (1..=4)
        .map(|step| {
            let pct = step * 10;
            let mut s = scale.base_scenario();
            s.malicious_fraction = f64::from(pct) / 100.0;
            s.named(format!("malicious-{pct}pct"))
        })
        .collect()
}

/// Fig. 5.5 sweep: user counts on the paper's fixed 5 km² area.
///
/// At full scale this is the paper's exact 500/1000/1500. The reduced
/// sweep keeps the *same 5 km² area* (not the reduced scenario's 1 km²)
/// with 100/200/300 nodes: density 20–60 nodes/km², the sparse regime
/// where extra carriers genuinely raise MDR. On the reduced 1 km² world
/// even a third of the base population saturates delivery, so sweeping
/// there would show a flat ceiling instead of the paper's rising curve.
#[must_use]
pub fn user_count_sweep(scale: Scale) -> Vec<Scenario> {
    let mut base = scale.base_scenario();
    if scale == Scale::Reduced {
        base.area_km2 = table51_scenario().area_km2;
    }
    let counts: Vec<usize> = vec![base.nodes, base.nodes * 2, base.nodes * 3];
    counts
        .into_iter()
        .map(|n| {
            let mut s = base.clone();
            s.nodes = n;
            let name = format!("users-{n}");
            s.named(name)
        })
        .collect()
}

/// Fig. 5.6 conditions: the 50/30/20 class mix at 20% and 40% selfish.
///
/// Priority-aware forwarding and eviction only matter under buffer
/// contention. At paper scale the 250 MB buffer holds ≈ 9% of the run's
/// total message volume; the reduced scenario's lighter load would leave
/// buffers one-third empty, so the reduced conditions shrink the buffer
/// to 50 MB to restore the paper's buffer-to-traffic ratio.
#[must_use]
pub fn priority_sweep(scale: Scale) -> Vec<Scenario> {
    [20, 40]
        .into_iter()
        .map(|pct| {
            let mut s = scale.base_scenario();
            s.selfish_fraction = f64::from(pct) / 100.0;
            if scale == Scale::Reduced {
                s.buffer_bytes = 50_000_000;
            }
            s.named(format!("priority-selfish-{pct}pct"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table51_matches_the_paper() {
        let s = table51_scenario();
        assert_eq!(s.nodes, 500);
        assert_eq!(s.keyword_pool, 200);
        assert_eq!(s.interests_per_node, 20);
        assert_eq!(s.radio.link_speed_bps, 250_000.0);
        assert_eq!(s.radio.range_m, 100.0);
        assert_eq!(s.buffer_bytes, 250_000_000);
        assert_eq!(s.message_size, 1_000_000);
        assert_eq!(s.area_km2, 5.0);
        assert_eq!(s.duration_secs, 86_400.0);
        assert_eq!(s.protocol.incentive.relay_threshold, 0.8);
        assert_eq!(s.protocol.incentive.initial_tokens, 200.0);
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn reduced_preserves_density() {
        let full = table51_scenario();
        let red = reduced_scenario();
        let d_full = full.nodes as f64 / full.area_km2;
        let d_red = red.nodes as f64 / red.area_km2;
        assert_eq!(d_full, d_red, "node density preserved");
        assert_eq!(red.validate(), Ok(()));
    }

    #[test]
    fn sweeps_have_the_paper_shapes() {
        assert_eq!(selfish_sweep(Scale::Reduced).len(), 11);
        assert_eq!(selfish_sweep(Scale::Reduced)[3].selfish_fraction, 0.3);
        let tokens = token_sweep(Scale::Reduced);
        assert_eq!(tokens.len(), 3);
        assert_eq!(tokens[0].1.len(), 5);
        assert_eq!(malicious_sweep(Scale::Reduced).len(), 4);
        assert_eq!(malicious_sweep(Scale::Reduced)[3].malicious_fraction, 0.4);
        let users = user_count_sweep(Scale::Full);
        assert_eq!(
            users.iter().map(|s| s.nodes).collect::<Vec<_>>(),
            vec![500, 1000, 1500]
        );
        let users = user_count_sweep(Scale::Reduced);
        assert_eq!(
            users.iter().map(|s| s.nodes).collect::<Vec<_>>(),
            vec![100, 200, 300]
        );
        assert_eq!(
            users[0].area_km2, 5.0,
            "reduced fig 5.5 keeps the paper's area so density stays sparse"
        );
        assert_eq!(priority_sweep(Scale::Reduced).len(), 2);
        assert_eq!(
            priority_sweep(Scale::Reduced)[0].buffer_bytes,
            50_000_000,
            "reduced fig 5.6 restores the paper's buffer-to-traffic ratio"
        );
        assert_eq!(priority_sweep(Scale::Full)[0].buffer_bytes, 250_000_000);
        for s in selfish_sweep(Scale::Reduced) {
            assert_eq!(s.validate(), Ok(()), "{}", s.name);
        }
    }

    #[test]
    fn scales_expose_seeds() {
        assert_eq!(Scale::Full.seeds().len(), 5, "paper: five runs");
        assert_eq!(Scale::Reduced.seeds().len(), 3);
        assert_eq!(Scale::Full.base_scenario().nodes, 500);
        assert_eq!(Scale::Reduced.base_scenario().nodes, 100);
    }
}
