//! # dtn-workloads
//!
//! Scenario and workload generation for the incentive-mechanism
//! experiments:
//!
//! * [`scenario`] — the experimental condition as plain data (Table 5.1
//!   knobs, population mix, traffic model, protocol config);
//! * [`population`] — interest assignment, honest/selfish/malicious
//!   population synthesis, source quality classes;
//! * [`traffic`] — the message-creation schedule with ground-truth
//!   content and expected destination sets;
//! * [`runner`] — builds simulations, runs seeds, pairs the Incentive and
//!   ChitChat arms over identical workloads;
//! * [`resume`] — crash-resumable runs: periodic whole-world snapshots
//!   with run identity attached, and byte-identical resume;
//! * [`sweep`] — the work-stealing sweep executor with a memoized run
//!   cache: whole figure grids as one saturated worker-pool queue;
//! * [`paper`] — Table 5.1 constructors and the per-figure sweeps
//!   (Figs. 5.1–5.6).
//!
//! ## Example
//!
//! ```no_run
//! use dtn_workloads::prelude::*;
//!
//! // A quick reduced-scale Fig. 5.1 point: 30% selfish nodes, both arms.
//! let mut scenario = reduced_scenario();
//! scenario.selfish_fraction = 0.3;
//! let cmp = compare_arms(&scenario, &[101]);
//! println!(
//!     "MDR incentive {:.3} vs chitchat {:.3}, traffic saved {:.1}%",
//!     cmp.incentive.delivery_ratio,
//!     cmp.chitchat.delivery_ratio,
//!     cmp.traffic_reduction_pct()
//! );
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dispersion;
pub mod paper;
pub mod population;
pub mod resume;
pub mod runner;
pub mod scenario;
pub mod sweep;
pub mod traffic;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::dispersion::{run_seeds_detailed, Dispersion, SeedStats};
    pub use crate::paper::{
        malicious_sweep, priority_sweep, reduced_scenario, selfish_sweep, table51_scenario,
        token_sweep, user_count_sweep, Scale, PAPER_SEEDS, QUICK_SEEDS,
    };
    pub use crate::population::{Population, SourceClass};
    pub use crate::resume::{
        latest_snapshot, read_snapshot, resume_simulation, run_with_snapshots, snapshot_path,
        write_snapshot, RunMeta, RunProgress, SnapshotDoc, SnapshotPolicy,
    };
    pub use crate::runner::{
        arm_for, build_backend_simulation, build_simulation, compare_arms, compare_overlays,
        protocol_for, run_backend, run_backend_checked, run_once, run_seeds, ArmRun, BackendRouter,
        Comparison,
    };
    pub use crate::scenario::{Arm, Mobility, Scenario, SourceClassMix};
    pub use crate::sweep::{run_cells, Cell, CellKind, CellResult, RouterKind};
    pub use crate::traffic::generate_schedule;
    pub use dtn_routing::backend::{BackendKind, Overlay};
}
