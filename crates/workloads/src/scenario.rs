//! Scenario configuration.
//!
//! A [`Scenario`] captures every knob of one experimental condition —
//! Table 5.1's simulation parameters plus the population mix (selfish /
//! malicious fractions), the traffic model, and the protocol configuration.
//! Scenarios are plain data (serde round-trippable) so experiment sweeps
//! are just `Vec<Scenario>`.

use serde::{Deserialize, Serialize};

use dtn_core::params::ProtocolParams;
use dtn_sim::mobility::{MobilityModel, RandomWalk, RandomWaypoint};
use dtn_sim::mobility_map::ManhattanGrid;
use dtn_sim::radio::RadioConfig;

/// The protocol arm a scenario is run under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Arm {
    /// The paper's full mechanism (credit + DRM + enrichment).
    Incentive,
    /// The ChitChat baseline (same behaviors, mechanism off).
    ChitChat,
}

impl Arm {
    /// Both arms, mechanism first.
    pub const BOTH: [Arm; 2] = [Arm::Incentive, Arm::ChitChat];

    /// Display label used in experiment tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Arm::Incentive => "Incentive",
            Arm::ChitChat => "ChitChat",
        }
    }
}

/// Which mobility model the population moves under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Mobility {
    /// ONE's pedestrian Random Waypoint (the paper's model; the default).
    #[default]
    RandomWaypoint,
    /// Free-space random walk at pedestrian speed.
    RandomWalk,
    /// Manhattan street-grid movement (downtown profile).
    ManhattanGrid,
}

impl Mobility {
    /// Instantiates one node's mobility model.
    #[must_use]
    pub fn instantiate(self) -> Box<dyn MobilityModel> {
        match self {
            Mobility::RandomWaypoint => Box::new(RandomWaypoint::pedestrian()),
            Mobility::RandomWalk => Box::new(RandomWalk::new(1.2)),
            Mobility::ManhattanGrid => Box::new(ManhattanGrid::downtown()),
        }
    }
}

/// The three source classes of the Fig. 5.6 workload: "50% of the nodes
/// generated high quality larger size and high priority messages, 30%
/// created medium quality and the rest produced low quality."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SourceClassMix {
    /// Fraction of nodes producing high-quality/high-priority messages.
    pub high: f64,
    /// Fraction producing medium-quality/medium-priority messages.
    pub medium: f64,
    /// Fraction producing low-quality/low-priority messages (the rest).
    pub low: f64,
}

impl SourceClassMix {
    /// The paper's 50/30/20 split.
    #[must_use]
    pub fn paper_default() -> Self {
        SourceClassMix {
            high: 0.5,
            medium: 0.3,
            low: 0.2,
        }
    }

    /// Validates that the fractions are a partition of 1.
    ///
    /// # Errors
    ///
    /// Returns a description when fractions are negative or do not sum
    /// to 1 (within 1e-9).
    pub fn validate(&self) -> Result<(), String> {
        if self.high < 0.0 || self.medium < 0.0 || self.low < 0.0 {
            return Err("class fractions must be non-negative".into());
        }
        let sum = self.high + self.medium + self.low;
        if (sum - 1.0).abs() > 1e-9 {
            return Err(format!("class fractions must sum to 1, got {sum}"));
        }
        Ok(())
    }
}

impl Default for SourceClassMix {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One experimental condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable condition name (appears in experiment tables).
    pub name: String,
    /// Number of participants (Table 5.1: 500).
    pub nodes: usize,
    /// World surface in square kilometers (Table 5.1: 5).
    pub area_km2: f64,
    /// Simulated time in seconds (Table 5.1: 24 h).
    pub duration_secs: f64,
    /// Size of the social-interest keyword pool (Table 5.1: 200).
    pub keyword_pool: u32,
    /// Direct interests per node (Table 5.1: 20).
    pub interests_per_node: usize,
    /// Radio parameters (Table 5.1: 250 kB/s, 100 m).
    pub radio: RadioConfig,
    /// Buffer capacity in bytes (Table 5.1: 250 MB).
    pub buffer_bytes: u64,
    /// Base message size in bytes (Table 5.1: 1 MB).
    pub message_size: u64,
    /// Message TTL in seconds.
    pub message_ttl_secs: f64,
    /// Mean seconds between message creations network-wide.
    pub message_interval_secs: f64,
    /// Keywords in each message's hidden ground truth.
    pub ground_truth_keywords: usize,
    /// Fraction of the ground truth the source annotates (operator
    /// function `Annotate`); the rest is enrichment head-room.
    pub source_tag_fraction: f64,
    /// Fraction of nodes that are selfish (1-in-10 duty cycle).
    pub selfish_fraction: f64,
    /// Fraction of nodes that are malicious taggers.
    pub malicious_fraction: f64,
    /// Source quality/priority classes.
    pub class_mix: SourceClassMix,
    /// Optional finite battery per node, in joules (`None` = ideal power,
    /// as in the paper's evaluation). Used by the network-lifetime
    /// extension experiment.
    pub battery_joules: Option<f64>,
    /// The population's mobility model (default: the paper's Random
    /// Waypoint).
    #[serde(default)]
    pub mobility: Mobility,
    /// Protocol configuration for the Incentive arm (the ChitChat arm
    /// derives from it by disabling the mechanism).
    pub protocol: ProtocolParams,
    /// Optional deterministic fault-injection plan (crashes, link cuts,
    /// battery spikes, transfer loss/corruption; see
    /// [`dtn_sim::faults::FaultPlan`]). `None` = no chaos, as in every
    /// paper experiment.
    #[serde(default)]
    pub chaos: Option<dtn_sim::faults::FaultPlan>,
    /// Optional transfer-recovery policy (checkpointed resume plus
    /// deterministic retry/backoff; see
    /// [`dtn_sim::transfer::RecoveryPolicy`]). `None` = no recovery, as in
    /// every paper experiment — aborted transfers are simply lost.
    #[serde(default)]
    pub recovery: Option<dtn_sim::transfer::RecoveryPolicy>,
    /// Shard count for the kernel's data-parallel step phases (mobility,
    /// striped contact detection). `None` = 1 = the serial kernel. Output
    /// is byte-identical at any value — this is a wall-clock knob only, so
    /// it is fair to sweep it on one scenario and compare against a serial
    /// baseline. Read through [`Scenario::effective_threads`].
    #[serde(default)]
    pub threads: Option<usize>,
    /// The routing backend the incentive overlay composes with (`None` =
    /// the paper's ChitChat substrate). Read through
    /// [`Scenario::effective_backend`].
    #[serde(default)]
    pub backend: Option<dtn_routing::backend::BackendKind>,
    /// Whether the incentive mechanism wraps the backend (`None` = decided
    /// by the run's [`Arm`]/overlay argument, as in every paper
    /// experiment). Read through [`Scenario::effective_overlay`].
    #[serde(default)]
    pub overlay: Option<dtn_routing::backend::Overlay>,
    /// Optional economic-adversary population
    /// ([`dtn_core::strategy::StrategyMix`]): free-riders, minority-game
    /// players, tag-farmer rings, whitewashers, and whether the
    /// countermeasures are armed. `None` = no strategies, as in every
    /// paper experiment.
    #[serde(default)]
    pub strategies: Option<dtn_core::strategy::StrategyMix>,
    /// Optional in-run invariant audit cadence in sim-seconds, applied
    /// when the caller does not pass its own cadence — the adversary
    /// experiments set this so every sweep cell is audited even through
    /// the memoizing cache path. `None` = audit only when the caller asks.
    #[serde(default)]
    pub audit_every: Option<u64>,
    /// Duty cycle of the selfish population (`None` = the paper's 0.1:
    /// "open one out of ten times"). Read through
    /// [`Scenario::effective_selfish_duty_cycle`]; validated at build time
    /// so NaN or out-of-range probabilities cannot skew the participation
    /// gate silently.
    #[serde(default)]
    pub selfish_duty_cycle: Option<f64>,
    /// Which simulation core drives the run (`None` = the event-driven
    /// core, the default since snapshot format v2). Both cores are
    /// byte-identical — this is a wall-clock/conformance knob only. Read
    /// through [`Scenario::effective_kernel_mode`].
    #[serde(default)]
    pub kernel_mode: Option<dtn_sim::events::KernelMode>,
}

impl Scenario {
    /// Validates cross-field invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("a scenario needs nodes".into());
        }
        if self.area_km2 <= 0.0 {
            return Err("area must be positive".into());
        }
        if self.duration_secs <= 0.0 {
            return Err("duration must be positive".into());
        }
        if self.interests_per_node as u32 > self.keyword_pool {
            return Err("cannot assign more interests than the pool holds".into());
        }
        if self.ground_truth_keywords == 0 || self.ground_truth_keywords as u32 > self.keyword_pool
        {
            return Err("ground-truth size must lie in [1, pool]".into());
        }
        if !(0.0..=1.0).contains(&self.source_tag_fraction) || self.source_tag_fraction == 0.0 {
            return Err("source_tag_fraction must lie in (0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.selfish_fraction) {
            return Err("selfish_fraction must lie in [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.malicious_fraction) {
            return Err("malicious_fraction must lie in [0, 1]".into());
        }
        if self.selfish_fraction + self.malicious_fraction > 1.0 {
            return Err("selfish + malicious fractions exceed the population".into());
        }
        if self.message_interval_secs <= 0.0 {
            return Err("message interval must be positive".into());
        }
        if let Some(j) = self.battery_joules {
            if j <= 0.0 {
                return Err("battery_joules must be positive when set".into());
            }
        }
        self.class_mix.validate()?;
        self.protocol.validate()?;
        if let Some(chaos) = &self.chaos {
            chaos.validate()?;
        }
        if let Some(recovery) = &self.recovery {
            recovery.validate()?;
        }
        if self.threads == Some(0) {
            return Err("threads must be at least 1".into());
        }
        if self.backend == Some(dtn_routing::backend::BackendKind::SprayAndWait(0)) {
            return Err("spray-and-wait needs at least one ticket".into());
        }
        if let Some(mix) = &self.strategies {
            mix.validate()?;
        }
        if self.audit_every == Some(0) {
            return Err("audit_every must be at least 1 when set".into());
        }
        dtn_core::behavior::NodeBehavior::Selfish {
            duty_cycle: self.effective_selfish_duty_cycle(),
        }
        .validate()?;
        Ok(())
    }

    /// The selfish population's duty cycle (default: the paper's 0.1).
    #[must_use]
    pub fn effective_selfish_duty_cycle(&self) -> f64 {
        self.selfish_duty_cycle.unwrap_or(0.1)
    }

    /// The routing backend this scenario asks for (default: ChitChat).
    #[must_use]
    pub fn effective_backend(&self) -> dtn_routing::backend::BackendKind {
        self.backend
            .unwrap_or(dtn_routing::backend::BackendKind::ChitChat)
    }

    /// The overlay state this scenario asks for, given the caller's
    /// default (callers that predate the backend grid pass their `Arm`
    /// translated to an overlay).
    #[must_use]
    pub fn effective_overlay(
        &self,
        fallback: dtn_routing::backend::Overlay,
    ) -> dtn_routing::backend::Overlay {
        self.overlay.unwrap_or(fallback)
    }

    /// The kernel shard count this scenario asks for (`threads`, default 1).
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        self.threads.unwrap_or(1)
    }

    /// The simulation core this scenario asks for (default: event-driven).
    #[must_use]
    pub fn effective_kernel_mode(&self) -> dtn_sim::events::KernelMode {
        self.kernel_mode.unwrap_or_default()
    }

    /// Expected number of messages the traffic model will create.
    #[must_use]
    pub fn expected_message_count(&self) -> usize {
        // Creation stops one TTL before the end so every message has a
        // fighting chance to be delivered within the run.
        let window = (self.duration_secs - self.message_ttl_secs.min(self.duration_secs * 0.25))
            .max(self.message_interval_secs);
        (window / self.message_interval_secs).floor() as usize
    }

    /// A copy with a different condition name.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn class_mix_validation() {
        assert_eq!(SourceClassMix::paper_default().validate(), Ok(()));
        let bad = SourceClassMix {
            high: 0.9,
            medium: 0.3,
            low: 0.2,
        };
        assert!(bad.validate().is_err());
        let neg = SourceClassMix {
            high: -0.1,
            medium: 0.9,
            low: 0.2,
        };
        assert!(neg.validate().is_err());
    }

    #[test]
    fn arm_labels() {
        assert_eq!(Arm::Incentive.label(), "Incentive");
        assert_eq!(Arm::ChitChat.label(), "ChitChat");
        assert_eq!(Arm::BOTH.len(), 2);
    }

    #[test]
    fn scenario_validation_catches_bad_fields() {
        let base = paper::reduced_scenario();
        assert_eq!(base.validate(), Ok(()));

        let mut s = base.clone();
        s.nodes = 0;
        assert!(s.validate().is_err());

        let mut s = base.clone();
        s.interests_per_node = 500;
        assert!(s.validate().is_err());

        let mut s = base.clone();
        s.selfish_fraction = 0.7;
        s.malicious_fraction = 0.5;
        assert!(s.validate().is_err());

        let mut s = base.clone();
        s.source_tag_fraction = 0.0;
        assert!(s.validate().is_err());

        let mut s = base.clone();
        s.recovery = Some(dtn_sim::transfer::RecoveryPolicy {
            backoff_base_secs: -1.0,
            ..dtn_sim::transfer::RecoveryPolicy::default()
        });
        assert!(s.validate().is_err(), "invalid recovery policy rejected");
    }

    #[test]
    fn scenario_serde_round_trip() {
        let s = paper::reduced_scenario();
        let json = serde_json::to_string(&s).expect("serializable");
        let back: Scenario = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(s, back);
    }

    #[test]
    fn mobility_variants_instantiate() {
        for m in [
            Mobility::RandomWaypoint,
            Mobility::RandomWalk,
            Mobility::ManhattanGrid,
        ] {
            let _boxed = m.instantiate();
        }
        assert_eq!(Mobility::default(), Mobility::RandomWaypoint);
    }

    #[test]
    fn mobility_survives_serde_and_defaults_when_absent() {
        let mut s = paper::reduced_scenario();
        s.mobility = Mobility::ManhattanGrid;
        let json = serde_json::to_string(&s).expect("serializable");
        let back: Scenario = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back.mobility, Mobility::ManhattanGrid);
        // Configs written before the field existed still parse.
        let stripped = json.replace("\"mobility\":\"ManhattanGrid\",", "");
        let legacy: Scenario = serde_json::from_str(&stripped).expect("legacy parses");
        assert_eq!(legacy.mobility, Mobility::RandomWaypoint);
    }

    #[test]
    fn recovery_survives_serde_and_defaults_when_absent() {
        let mut s = paper::reduced_scenario();
        s.recovery = Some(dtn_sim::transfer::RecoveryPolicy::default());
        let json = serde_json::to_string(&s).expect("serializable");
        let back: Scenario = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back.recovery, s.recovery);
        assert_eq!(back, s);
        // Configs written before the recovery field existed still parse
        // (and mean what they always meant: no recovery).
        let plain = serde_json::to_string(&paper::reduced_scenario()).expect("serializable");
        let stripped = plain
            .replace(",\"recovery\":null", "")
            .replace("\"recovery\":null,", "");
        assert_ne!(stripped, plain, "the field was present to strip");
        let legacy: Scenario = serde_json::from_str(&stripped).expect("legacy parses");
        assert_eq!(legacy.recovery, None);
    }

    #[test]
    fn threads_survives_serde_and_defaults_when_absent() {
        let mut s = paper::reduced_scenario();
        s.threads = Some(8);
        let json = serde_json::to_string(&s).expect("serializable");
        let back: Scenario = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back.effective_threads(), 8);
        assert_eq!(back, s);
        // Configs written before the threads field existed still parse
        // (and mean what they always meant: the serial kernel).
        let plain = serde_json::to_string(&paper::reduced_scenario()).expect("serializable");
        let stripped = plain
            .replace(",\"threads\":null", "")
            .replace("\"threads\":null,", "");
        assert_ne!(stripped, plain, "the field was present to strip");
        let legacy: Scenario = serde_json::from_str(&stripped).expect("legacy parses");
        assert_eq!(legacy.threads, None);
        assert_eq!(legacy.effective_threads(), 1);

        s.threads = Some(0);
        assert!(s.validate().is_err(), "zero threads rejected");
    }

    #[test]
    fn backend_and_overlay_survive_serde_and_default_when_absent() {
        use dtn_routing::backend::{BackendKind, Overlay};
        let mut s = paper::reduced_scenario();
        s.backend = Some(BackendKind::Prophet);
        s.overlay = Some(Overlay::On);
        let json = serde_json::to_string(&s).expect("serializable");
        let back: Scenario = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back.effective_backend(), BackendKind::Prophet);
        assert_eq!(back.effective_overlay(Overlay::Off), Overlay::On);
        assert_eq!(back, s);
        // Configs written before the backend grid existed still parse (and
        // mean what they always meant: ChitChat, overlay per the arm).
        let plain = serde_json::to_string(&paper::reduced_scenario()).expect("serializable");
        let stripped = plain
            .replace(",\"backend\":null", "")
            .replace(",\"overlay\":null", "");
        assert_ne!(stripped, plain, "the fields were present to strip");
        let legacy: Scenario = serde_json::from_str(&stripped).expect("legacy parses");
        assert_eq!(legacy.backend, None);
        assert_eq!(legacy.effective_backend(), BackendKind::ChitChat);
        assert_eq!(legacy.effective_overlay(Overlay::Off), Overlay::Off);

        s.backend = Some(BackendKind::SprayAndWait(0));
        assert!(s.validate().is_err(), "zero spray tickets rejected");
    }

    #[test]
    fn strategy_fields_survive_serde_and_default_when_absent() {
        let mut s = paper::reduced_scenario();
        s.strategies = Some("free=0.2,defense".parse().expect("valid mix"));
        s.audit_every = Some(300);
        s.selfish_duty_cycle = Some(0.25);
        assert_eq!(s.validate(), Ok(()));
        let json = serde_json::to_string(&s).expect("serializable");
        let back: Scenario = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, s);
        assert_eq!(back.effective_selfish_duty_cycle(), 0.25);
        // Configs written before the adversary suite existed still parse
        // (and mean what they always meant: no strategies, no standing
        // audit, the paper's 0.1 duty cycle).
        let plain = serde_json::to_string(&paper::reduced_scenario()).expect("serializable");
        let stripped = plain
            .replace(",\"strategies\":null", "")
            .replace(",\"audit_every\":null", "")
            .replace(",\"selfish_duty_cycle\":null", "");
        assert_ne!(stripped, plain, "the fields were present to strip");
        let legacy: Scenario = serde_json::from_str(&stripped).expect("legacy parses");
        assert_eq!(legacy.strategies, None);
        assert_eq!(legacy.audit_every, None);
        assert_eq!(legacy.effective_selfish_duty_cycle(), 0.1);
    }

    #[test]
    fn strategy_fields_are_validated_at_build_time() {
        let mut s = paper::reduced_scenario();
        s.audit_every = Some(0);
        assert!(s.validate().is_err(), "zero audit cadence rejected");

        let mut s = paper::reduced_scenario();
        s.selfish_duty_cycle = Some(f64::NAN);
        assert!(s.validate().is_err(), "NaN duty cycle rejected");
        s.selfish_duty_cycle = Some(1.5);
        assert!(s.validate().is_err(), "out-of-range duty cycle rejected");

        let mut s = paper::reduced_scenario();
        s.strategies = Some(dtn_core::strategy::StrategyMix {
            free_rider_fraction: 0.8,
            farmer_fraction: 0.8,
            ..Default::default()
        });
        assert!(s.validate().is_err(), "overfull strategy mix rejected");
    }

    #[test]
    fn expected_message_count_is_positive() {
        let s = paper::reduced_scenario();
        assert!(s.expected_message_count() > 0);
    }
}
