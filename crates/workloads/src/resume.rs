//! Crash-resumable runs: whole-world snapshots with run identity attached.
//!
//! The kernel's [`WorldState`] captures every byte of dynamic state but
//! deliberately none of the configuration — a resumed run rebuilds the
//! world from the same scenario through the same build path and then
//! overwrites the dynamic state. This module pairs the two: a
//! [`SnapshotDoc`] embeds the full [`Scenario`] (plus arm, seed and
//! instrumentation knobs) next to the world, so `--resume-from <file>` is
//! self-contained — no flag on the resuming command line can drift from
//! what the interrupted run was doing.
//!
//! Snapshots are written atomically (tmp-then-rename, see
//! [`dtn_sim::snapshot`]) under zero-padded sim-time names, so the
//! lexicographically greatest file in a snapshot directory is always the
//! latest consistent checkpoint — that is what crash-recovery tooling (and
//! the CI crash-resume job) picks up.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use dtn_core::protocol::DcimRouter;
use dtn_sim::kernel::{Simulation, WorldState};
use dtn_sim::snapshot::{self, SnapshotError};
use dtn_sim::stats::RunSummary;
use dtn_sim::time::SimTime;

use crate::runner::build_simulation_checked;
use crate::scenario::{Arm, Scenario};

/// The identity of the run a snapshot belongs to: everything needed to
/// rebuild the *same* simulation (configuration), as opposed to the
/// [`WorldState`] (dynamic state) restored into it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMeta {
    /// The full experimental condition, embedded verbatim.
    pub scenario: Scenario,
    /// Which arm the run executes.
    pub arm: Arm,
    /// The run's seed.
    pub seed: u64,
    /// Bounded trace capacity, when the run records a kernel event trace.
    pub trace_capacity: Option<usize>,
    /// Invariant-audit cadence in steps, when auditing is on.
    pub check_every: Option<u64>,
}

/// One on-disk snapshot: run identity plus the whole-kernel state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotDoc {
    /// How to rebuild the simulation this state belongs to.
    pub meta: RunMeta,
    /// The kernel's dynamic state at the capture instant.
    pub world: WorldState,
}

/// Where (and how often) a run writes periodic snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotPolicy {
    /// Simulated seconds between snapshots. Checkpoints land at sim-time
    /// multiples of this cadence, so an interrupted-and-resumed run
    /// checkpoints at the same instants as an uninterrupted one.
    pub every_secs: f64,
    /// Directory the snapshot files are written into.
    pub dir: PathBuf,
}

/// The file name for a checkpoint taken at `now`, zero-padded so
/// lexicographic order is sim-time order.
#[must_use]
pub fn snapshot_path(dir: &Path, now: SimTime) -> PathBuf {
    dir.join(format!("snap-{:012}.dtnsnap", now.as_secs().round() as u64))
}

/// The latest (greatest sim-time) snapshot in `dir`, if any.
///
/// # Errors
///
/// Fails when the directory cannot be read.
pub fn latest_snapshot(dir: &Path) -> Result<Option<PathBuf>, SnapshotError> {
    let entries = std::fs::read_dir(dir).map_err(|source| SnapshotError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let mut best: Option<PathBuf> = None;
    for entry in entries {
        let entry = entry.map_err(|source| SnapshotError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let path = entry.path();
        let is_snap = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("snap-") && n.ends_with(".dtnsnap"));
        if is_snap && best.as_ref().is_none_or(|b| *b < path) {
            best = Some(path);
        }
    }
    Ok(best)
}

/// Captures `sim` into a [`SnapshotDoc`] and writes it atomically.
///
/// # Errors
///
/// Fails when serialization or the filesystem write fails.
pub fn write_snapshot(
    sim: &Simulation<DcimRouter>,
    meta: &RunMeta,
    path: &Path,
) -> Result<(), SnapshotError> {
    let doc = SnapshotDoc {
        meta: meta.clone(),
        world: sim.snapshot(),
    };
    snapshot::save(&doc, path)
}

/// Reads a snapshot back, verifying magic, version and checksum.
///
/// # Errors
///
/// Propagates the typed rejection: truncated, corrupt, version-mismatched
/// and malformed files each fail with their own [`SnapshotError`] variant.
pub fn read_snapshot(path: &Path) -> Result<SnapshotDoc, SnapshotError> {
    snapshot::load(path)
}

/// Rebuilds the simulation a snapshot belongs to and restores its state:
/// the run continues exactly where the capture left it, byte-identically
/// to never having stopped.
///
/// # Errors
///
/// Fails with [`SnapshotError::Mismatch`] when the embedded world state
/// does not fit the simulation the embedded metadata builds (a hand-edited
/// or cross-version document).
///
/// # Panics
///
/// Panics if the embedded scenario fails validation.
pub fn resume_simulation(doc: &SnapshotDoc) -> Result<Simulation<DcimRouter>, SnapshotError> {
    let trace = doc
        .meta
        .trace_capacity
        .map(dtn_sim::trace::TraceLog::bounded);
    let mut sim = build_simulation_checked(
        &doc.meta.scenario,
        doc.meta.arm,
        doc.meta.seed,
        trace,
        doc.meta.check_every,
    );
    sim.restore(&doc.world)?;
    Ok(sim)
}

/// How a snapshot-aware run ended.
#[derive(Debug)]
pub enum RunProgress {
    /// The run reached its horizon; the summary is final.
    Finished(RunSummary),
    /// The interrupt flag fired mid-run. When a [`SnapshotPolicy`] was
    /// active, a final checkpoint was flushed at the interruption instant.
    Interrupted {
        /// Sim time at which the run stopped.
        at: SimTime,
        /// The final checkpoint, when one was written.
        snapshot: Option<PathBuf>,
    },
}

/// Steps `sim` to `until`, writing a checkpoint at every cadence multiple
/// and polling `interrupted` (with the current sim time) between steps.
///
/// Checkpoints land at sim-time multiples of the cadence (not offsets from
/// the start instant), so a resumed run checkpoints at the same instants
/// the uninterrupted run would have. On interruption a final checkpoint is
/// flushed at the current instant before returning.
///
/// # Errors
///
/// Fails when a checkpoint cannot be written; the simulation itself is
/// left intact at the failing instant.
pub fn run_with_snapshots(
    sim: &mut Simulation<DcimRouter>,
    meta: &RunMeta,
    until: SimTime,
    policy: Option<&SnapshotPolicy>,
    interrupted: &dyn Fn(SimTime) -> bool,
) -> Result<RunProgress, SnapshotError> {
    let mut next_snap = policy.map(|p| {
        let every = p.every_secs.max(1.0);
        ((sim.api().now().as_secs() / every).floor() + 1.0) * every
    });
    while sim.api().now() < until {
        if interrupted(sim.api().now()) {
            let snapshot = match policy {
                Some(p) => {
                    let path = snapshot_path(&p.dir, sim.api().now());
                    write_snapshot(sim, meta, &path)?;
                    Some(path)
                }
                None => None,
            };
            return Ok(RunProgress::Interrupted {
                at: sim.api().now(),
                snapshot,
            });
        }
        sim.step_once();
        if let (Some(p), Some(at)) = (policy, next_snap.as_mut()) {
            if sim.api().now().as_secs() >= *at {
                write_snapshot(sim, meta, &snapshot_path(&p.dir, sim.api().now()))?;
                let every = p.every_secs.max(1.0);
                *at = ((sim.api().now().as_secs() / every).floor() + 1.0) * every;
            }
        }
    }
    Ok(RunProgress::Finished(sim.run_until(until)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    fn scenario() -> Scenario {
        let mut s = paper::reduced_scenario();
        s.nodes = 20;
        s.area_km2 = 0.2;
        s.duration_secs = 1500.0;
        s.message_interval_secs = 30.0;
        s.message_ttl_secs = 900.0;
        s.chaos = Some(
            "crash=4,crashdown=60,cut=12,cutdown=15,loss=0.1"
                .parse()
                .unwrap(),
        );
        s.recovery = Some(dtn_sim::transfer::RecoveryPolicy::default());
        s.strategies = Some("free=0.2,white=0.1,defense".parse().expect("valid mix"));
        s.named("resume-test")
    }

    fn meta(s: &Scenario, seed: u64) -> RunMeta {
        RunMeta {
            scenario: s.clone(),
            arm: Arm::Incentive,
            seed,
            trace_capacity: Some(100_000),
            check_every: Some(50),
        }
    }

    fn fresh_sim(m: &RunMeta) -> Simulation<DcimRouter> {
        let trace = m.trace_capacity.map(dtn_sim::trace::TraceLog::bounded);
        build_simulation_checked(&m.scenario, m.arm, m.seed, trace, m.check_every)
    }

    #[test]
    fn kill_and_resume_is_byte_identical_across_seeds_and_threads() {
        let dir = std::env::temp_dir().join(format!("dtn-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for threads in [1usize, 8] {
            for seed in [11u64, 12, 13] {
                let mut s = scenario();
                s.threads = Some(threads);
                let m = meta(&s, seed);
                let horizon = SimTime::from_secs(s.duration_secs);

                // The uninterrupted golden run.
                let mut golden = fresh_sim(&m);
                let golden_summary = golden.run_until(horizon);
                let golden_trace = golden.api().trace().render();

                // Kill mid-run, flushing a final checkpoint.
                let mut victim = fresh_sim(&m);
                let kill_at = SimTime::from_secs(500.0);
                let progress = run_with_snapshots(
                    &mut victim,
                    &m,
                    horizon,
                    Some(&SnapshotPolicy {
                        every_secs: 200.0,
                        dir: dir.clone(),
                    }),
                    &|now| now >= kill_at,
                )
                .unwrap();
                let RunProgress::Interrupted { snapshot, .. } = progress else {
                    panic!("the interrupt flag must stop the run");
                };
                let from = snapshot.expect("a policy was active");
                assert_eq!(latest_snapshot(&dir).unwrap().as_deref(), Some(&*from));

                // Resume from the on-disk checkpoint and finish.
                let doc = read_snapshot(&from).unwrap();
                assert_eq!(doc.meta, m, "run identity round-trips");
                let mut resumed = resume_simulation(&doc).unwrap();
                let resumed_summary = resumed.run_until(horizon);
                assert_eq!(
                    resumed_summary, golden_summary,
                    "summary diverged (seed {seed}, {threads} threads)"
                );
                assert_eq!(
                    resumed.api().trace().render(),
                    golden_trace,
                    "trace diverged (seed {seed}, {threads} threads)"
                );
                // Clean the per-iteration checkpoints so the next seed's
                // latest-snapshot assertion sees only its own files.
                for entry in std::fs::read_dir(&dir).unwrap() {
                    let _ = std::fs::remove_file(entry.unwrap().path());
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn periodic_checkpoints_land_on_cadence_multiples() {
        let dir = std::env::temp_dir().join(format!("dtn-cadence-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let s = scenario();
        let m = meta(&s, 3);
        let mut sim = fresh_sim(&m);
        let progress = run_with_snapshots(
            &mut sim,
            &m,
            SimTime::from_secs(650.0),
            Some(&SnapshotPolicy {
                every_secs: 200.0,
                dir: dir.clone(),
            }),
            &|_| false,
        )
        .unwrap();
        assert!(matches!(progress, RunProgress::Finished(_)));
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                "snap-000000000200.dtnsnap",
                "snap-000000000400.dtnsnap",
                "snap-000000000600.dtnsnap"
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_corrupted_and_foreign_documents() {
        let dir = std::env::temp_dir().join(format!("dtn-reject-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let s = scenario();
        let m = meta(&s, 5);
        let mut sim = fresh_sim(&m);
        let _ = run_with_snapshots(&mut sim, &m, SimTime::from_secs(100.0), None, &|_| false);
        let path = dir.join("victim.dtnsnap");
        write_snapshot(&sim, &m, &path).unwrap();

        // Corrupt one body byte: checksum rejection, not a panic.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] = bytes[last].wrapping_add(1);
        let corrupted = dir.join("corrupt.dtnsnap");
        std::fs::write(&corrupted, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&corrupted),
            Err(SnapshotError::Corrupt { .. })
        ));

        // A snapshot from a *different* world shape: reuse this doc's meta
        // but swap in a world from a smaller scenario — restore must fail
        // with a typed mismatch, not restore garbage.
        let mut small = scenario();
        small.nodes = 10;
        let small_meta = meta(&small, 5);
        let small_sim = fresh_sim(&small_meta);
        let mut doc = read_snapshot(&path).unwrap();
        doc.world = small_sim.snapshot();
        assert!(matches!(
            resume_simulation(&doc),
            Err(SnapshotError::Mismatch { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
