//! The traffic model: message creation schedules.
//!
//! The thesis does not publish its ONE message-generation settings beyond
//! the 1 MB size; we use ONE's standard model — one message created
//! network-wide every `message_interval_secs`, from a uniformly drawn
//! source — and stop creating one TTL before the end of the run so late
//! messages are not structurally undeliverable.

use dtn_core::ops::annotate;
use dtn_sim::kernel::ScheduledMessage;
use dtn_sim::message::{Keyword, Quality};
use dtn_sim::rng::SimRng;
use dtn_sim::time::SimTime;
use dtn_sim::world::NodeId;

use crate::population::Population;
use crate::scenario::Scenario;

/// Generates the full message schedule for one run.
///
/// Each message gets: a ground truth of `ground_truth_keywords` distinct
/// pool keywords, source tags covering `source_tag_fraction` of the truth
/// (the `Annotate` operator), quality/priority/size from the source's
/// class, and the expected destination set (nodes with a direct interest
/// in a source tag) for the delivery-ratio metric.
#[must_use]
pub fn generate_schedule(
    scenario: &Scenario,
    population: &Population,
    rng: &SimRng,
) -> Vec<ScheduledMessage> {
    let mut traffic_rng = rng.stream(10);
    let count = scenario.expected_message_count();
    let mut out = Vec::with_capacity(count);
    for k in 0..count {
        let at = SimTime::from_secs((k as f64 + 1.0) * scenario.message_interval_secs);
        let source = NodeId(traffic_rng.index(scenario.nodes) as u32);
        let class = population.classes[source.index()];
        let ground_truth: Vec<Keyword> = traffic_rng
            .choose_indices(
                scenario.keyword_pool as usize,
                scenario.ground_truth_keywords,
            )
            .into_iter()
            .map(|i| Keyword(i as u32))
            .collect();
        let source_tags = annotate(
            &ground_truth,
            scenario.source_tag_fraction,
            &mut traffic_rng,
        );
        let (q_lo, q_hi) = class.quality_range();
        let quality = Quality::new(traffic_rng.uniform(q_lo, q_hi));
        let size_bytes = (scenario.message_size as f64 * class.size_multiplier()) as u64;
        let expected_destinations = population.destinations_for(&source_tags, source);
        out.push(ScheduledMessage {
            at,
            source,
            size_bytes,
            ttl_secs: scenario.message_ttl_secs,
            priority: class.priority(),
            quality,
            ground_truth,
            source_tags,
            expected_destinations,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use crate::population::SourceClass;

    #[test]
    fn schedule_matches_scenario_shape() {
        let s = paper::reduced_scenario();
        let rng = SimRng::new(3);
        let pop = Population::synthesize(&s, &rng);
        let sched = generate_schedule(&s, &pop, &rng);
        assert_eq!(sched.len(), s.expected_message_count());
        for m in &sched {
            assert!(m.source.index() < s.nodes);
            assert_eq!(m.ground_truth.len(), s.ground_truth_keywords);
            assert!(!m.source_tags.is_empty());
            assert!(m.source_tags.iter().all(|t| m.ground_truth.contains(t)));
            assert!(m.size_bytes > 0);
            assert!(m.ttl_secs == s.message_ttl_secs);
            assert!(m.at.as_secs() <= s.duration_secs, "creation within the run");
            assert!(!m.expected_destinations.contains(&m.source));
        }
        // Creation times strictly increase.
        assert!(sched.windows(2).all(|w| w[0].at < w[1].at));
    }

    #[test]
    fn class_drives_message_properties() {
        let mut s = paper::reduced_scenario();
        s.class_mix.high = 1.0;
        s.class_mix.medium = 0.0;
        s.class_mix.low = 0.0;
        let rng = SimRng::new(4);
        let pop = Population::synthesize(&s, &rng);
        assert!(pop.classes.iter().all(|c| *c == SourceClass::High));
        let sched = generate_schedule(&s, &pop, &rng);
        for m in &sched {
            assert_eq!(m.priority, dtn_sim::message::Priority::High);
            assert!(m.quality.value() >= 0.8);
            assert_eq!(m.size_bytes, (s.message_size as f64 * 1.5) as u64);
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let s = paper::reduced_scenario();
        let rng = SimRng::new(5);
        let pop = Population::synthesize(&s, &rng);
        let a = generate_schedule(&s, &pop, &rng);
        let b = generate_schedule(&s, &pop, &rng);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.ground_truth, y.ground_truth);
            assert_eq!(x.source_tags, y.source_tags);
        }
    }
}
