//! Building and running scenarios, one or many seeds at a time.

use dtn_core::behavior::NodeBehavior;
use dtn_core::params::ProtocolParams;
use dtn_core::protocol::{DcimRouter, ProtocolStats};
use dtn_routing::backend::{BackendKind, Overlay, RouterBackend};
use dtn_sim::geometry::Area;
use dtn_sim::kernel::{Simulation, SimulationBuilder};
use dtn_sim::metrics::{MetricsRegistry, PhaseTiming};
use dtn_sim::rng::SimRng;
use dtn_sim::stats::RunSummary;
use dtn_sim::time::SimTime;
use dtn_sim::world::NodeId;
use serde::{Deserialize, Serialize};

use crate::population::Population;
use crate::scenario::{Arm, Scenario};
use crate::traffic::generate_schedule;

/// The protocol configuration for one arm of a scenario.
///
/// The scenario's keyword pool is the single source of truth: whatever the
/// protocol struct carried, the effective configuration draws malicious
/// tags from the same pool the workload assigns interests from.
#[must_use]
pub fn protocol_for(scenario: &Scenario, arm: Arm) -> ProtocolParams {
    let base = ProtocolParams {
        keyword_pool_size: scenario.keyword_pool,
        ..scenario.protocol
    };
    match arm {
        Arm::Incentive => base,
        Arm::ChitChat => ProtocolParams {
            incentive_enabled: false,
            drm_enabled: false,
            enrichment_enabled: false,
            ..base
        },
    }
}

/// Builds a ready-to-run simulation for `scenario` under `arm` and `seed`.
///
/// Both arms of the same `(scenario, seed)` see the *identical* workload:
/// same mobility, same population (interests, behaviors, classes, roles)
/// and same message schedule — only the mechanism differs. That is what
/// makes the paper's pairwise comparisons (Figs. 5.1–5.6) meaningful.
///
/// # Panics
///
/// Panics if the scenario fails validation.
#[must_use]
pub fn build_simulation(scenario: &Scenario, arm: Arm, seed: u64) -> Simulation<DcimRouter> {
    build_simulation_traced(scenario, arm, seed, None)
}

/// [`build_simulation`] with an optional kernel event trace attached (see
/// [`dtn_sim::trace::TraceLog`]); used by the CLI's `--trace` flag and by
/// sequence-asserting tests.
///
/// # Panics
///
/// Panics if the scenario fails validation.
#[must_use]
pub fn build_simulation_traced(
    scenario: &Scenario,
    arm: Arm,
    seed: u64,
    trace: Option<dtn_sim::trace::TraceLog>,
) -> Simulation<DcimRouter> {
    build_simulation_checked(scenario, arm, seed, trace, None)
}

/// [`build_simulation_traced`] with an optional invariant-audit cadence:
/// when `check_every` is set, the kernel audits its own conservation
/// invariants and the router's (token conservation, rating bounds, offer
/// hygiene) every that-many steps, aborting with a replayable report on a
/// breach. The scenario's `chaos` plan, if any, is always wired in.
///
/// # Panics
///
/// Panics if the scenario fails validation.
#[must_use]
pub fn build_simulation_checked(
    scenario: &Scenario,
    arm: Arm,
    seed: u64,
    trace: Option<dtn_sim::trace::TraceLog>,
    check_every: Option<u64>,
) -> Simulation<DcimRouter> {
    build_simulation_opts(scenario, arm, seed, trace, check_every, false)
}

/// [`build_simulation_checked`] plus the wall-clock phase profiler
/// (`profile = true` enables per-phase timing and peak-buffer tracking;
/// results are unaffected either way).
///
/// # Panics
///
/// Panics if the scenario fails validation.
#[must_use]
pub fn build_simulation_opts(
    scenario: &Scenario,
    arm: Arm,
    seed: u64,
    trace: Option<dtn_sim::trace::TraceLog>,
    check_every: Option<u64>,
    profile: bool,
) -> Simulation<DcimRouter> {
    scenario.validate().expect("scenario must validate");
    let check_every = check_every.or(scenario.audit_every);
    let workload_rng = SimRng::new(seed);
    let population = Population::synthesize(scenario, &workload_rng);
    let schedule = generate_schedule(scenario, &population, &workload_rng);

    let mut router = DcimRouter::new(scenario.nodes, protocol_for(scenario, arm), seed);
    for i in 0..population.interests.len() {
        let node = NodeId(i as u32);
        router.subscribe(node, population.sorted_interests(node));
    }
    for (i, &behavior) in population.behaviors.iter().enumerate() {
        if behavior != NodeBehavior::Honest {
            router.set_behavior(NodeId(i as u32), behavior);
        }
    }
    for (i, &role) in population.roles.iter().enumerate() {
        router.set_role(NodeId(i as u32), role);
    }
    apply_strategies(&mut router, scenario, &population);

    // The mechanism evicts lowest-priority copies first under buffer
    // pressure; without it (plain ChitChat, or an ablation with the credit
    // system off) ONE's drop-oldest default applies. Derived from the
    // effective params rather than the arm label so ablations behave
    // consistently.
    let drop_policy = if protocol_for(scenario, arm).incentive_enabled {
        dtn_sim::buffer::DropPolicy::DropLowestPriority
    } else {
        dtn_sim::buffer::DropPolicy::DropOldest
    };
    let mut builder = SimulationBuilder::new(Area::square_km(scenario.area_km2), seed)
        .radio(scenario.radio)
        .buffer_capacity(scenario.buffer_bytes)
        .drop_policy(drop_policy)
        .threads(scenario.effective_threads())
        .kernel_mode(scenario.effective_kernel_mode())
        .nodes(scenario.nodes, || scenario.mobility.instantiate());
    if let Some(j) = scenario.battery_joules {
        builder = builder.battery_joules(j);
    }
    if let Some(t) = trace {
        builder = builder.trace(t);
    }
    if let Some(plan) = scenario.chaos {
        builder = builder.faults(plan);
    }
    if let Some(policy) = scenario.recovery {
        builder = builder.recovery(policy);
    }
    if let Some(every) = check_every {
        builder = builder.check_invariants_every(every);
    }
    builder.profile(profile).messages(schedule).build(router)
}

/// Wires the population's strategy assignment (and the mix's defense flag)
/// into a router. A scenario without strategies touches nothing, so the
/// router stays on the byte-identical paper-default path.
fn apply_strategies<B: RouterBackend>(
    router: &mut DcimRouter<B>,
    scenario: &Scenario,
    population: &Population,
) {
    let Some(mix) = &scenario.strategies else {
        return;
    };
    for (i, &strategy) in population.strategies.iter().enumerate() {
        if strategy.is_some() {
            router.set_strategy(NodeId(i as u32), strategy);
        }
    }
    if mix.defense {
        router.set_strategy_defense(true);
    }
}

/// Builds the same world and workload as [`build_simulation`] but wires in
/// an arbitrary protocol constructed from the synthesized population —
/// used to compare third-party routers (Epidemic, PRoPHET, CEDO, …)
/// against the mechanism on identical workloads.
///
/// # Panics
///
/// Panics if the scenario fails validation.
#[must_use]
pub fn build_with_protocol<P, F>(scenario: &Scenario, seed: u64, make: F) -> Simulation<P>
where
    P: dtn_sim::protocol::Protocol,
    F: FnOnce(&Population, &[dtn_sim::kernel::ScheduledMessage]) -> P,
{
    scenario.validate().expect("scenario must validate");
    let workload_rng = SimRng::new(seed);
    let population = Population::synthesize(scenario, &workload_rng);
    let schedule = generate_schedule(scenario, &population, &workload_rng);
    let protocol = make(&population, &schedule);
    let mut builder = SimulationBuilder::new(Area::square_km(scenario.area_km2), seed)
        .radio(scenario.radio)
        .buffer_capacity(scenario.buffer_bytes)
        // Third-party routers are priority-blind, so they get ONE's
        // drop-oldest default *explicitly*: comparisons against the
        // mechanism must not silently inherit whatever default the kernel
        // builder happens to carry.
        .drop_policy(dtn_sim::buffer::DropPolicy::DropOldest)
        .threads(scenario.effective_threads())
        .kernel_mode(scenario.effective_kernel_mode())
        .nodes(scenario.nodes, || scenario.mobility.instantiate());
    if let Some(j) = scenario.battery_joules {
        builder = builder.battery_joules(j);
    }
    if let Some(plan) = scenario.chaos {
        builder = builder.faults(plan);
    }
    if let Some(policy) = scenario.recovery {
        builder = builder.recovery(policy);
    }
    builder.messages(schedule).build(protocol)
}

/// The incentive overlay over a dynamically chosen routing backend.
pub type BackendRouter = DcimRouter<Box<dyn RouterBackend>>;

/// The [`Arm`] a given overlay state corresponds to: the overlay axis *is*
/// the paper's arm split, generalized beyond ChitChat.
#[must_use]
pub fn arm_for(overlay: Overlay) -> Arm {
    match overlay {
        Overlay::On => Arm::Incentive,
        Overlay::Off => Arm::ChitChat,
    }
}

/// Builds the incentive overlay over an arbitrary routing backend on the
/// *identical* world and workload as [`build_simulation_checked`]: same
/// mobility, population (interests, behaviors, classes, roles), message
/// schedule, chaos plan, recovery policy and drop-policy rule. With
/// `BackendKind::ChitChat` this reproduces the corresponding `Arm` build
/// byte-for-byte — that equivalence is pinned by the conformance suite.
///
/// # Panics
///
/// Panics if the scenario fails validation.
#[must_use]
pub fn build_backend_simulation(
    scenario: &Scenario,
    kind: BackendKind,
    overlay: Overlay,
    seed: u64,
    check_every: Option<u64>,
) -> Simulation<BackendRouter> {
    scenario.validate().expect("scenario must validate");
    let check_every = check_every.or(scenario.audit_every);
    let workload_rng = SimRng::new(seed);
    let population = Population::synthesize(scenario, &workload_rng);
    let schedule = generate_schedule(scenario, &population, &workload_rng);

    let params = protocol_for(scenario, arm_for(overlay));
    let backend = kind.instantiate(scenario.nodes, &params.chitchat);
    let mut router = DcimRouter::with_backend(backend, params, seed);
    for i in 0..population.interests.len() {
        let node = NodeId(i as u32);
        router.subscribe(node, population.sorted_interests(node));
    }
    for (i, &behavior) in population.behaviors.iter().enumerate() {
        if behavior != NodeBehavior::Honest {
            router.set_behavior(NodeId(i as u32), behavior);
        }
    }
    for (i, &role) in population.roles.iter().enumerate() {
        router.set_role(NodeId(i as u32), role);
    }
    apply_strategies(&mut router, scenario, &population);

    let drop_policy = if params.incentive_enabled {
        dtn_sim::buffer::DropPolicy::DropLowestPriority
    } else {
        dtn_sim::buffer::DropPolicy::DropOldest
    };
    let mut builder = SimulationBuilder::new(Area::square_km(scenario.area_km2), seed)
        .radio(scenario.radio)
        .buffer_capacity(scenario.buffer_bytes)
        .drop_policy(drop_policy)
        .threads(scenario.effective_threads())
        .kernel_mode(scenario.effective_kernel_mode())
        .nodes(scenario.nodes, || scenario.mobility.instantiate());
    if let Some(j) = scenario.battery_joules {
        builder = builder.battery_joules(j);
    }
    if let Some(plan) = scenario.chaos {
        builder = builder.faults(plan);
    }
    if let Some(policy) = scenario.recovery {
        builder = builder.recovery(policy);
    }
    if let Some(every) = check_every {
        builder = builder.check_invariants_every(every);
    }
    builder.messages(schedule).build(router)
}

/// Runs one `(scenario, backend, overlay, seed)` cell to completion.
#[must_use]
pub fn run_backend(scenario: &Scenario, kind: BackendKind, overlay: Overlay, seed: u64) -> ArmRun {
    run_backend_checked(scenario, kind, overlay, seed, None)
}

/// [`run_backend`] with an optional invariant-audit cadence: the same
/// token-conservation, rating-bound and no-double-pay audits the paper
/// arms run under apply to every backend × overlay combination.
#[must_use]
pub fn run_backend_checked(
    scenario: &Scenario,
    kind: BackendKind,
    overlay: Overlay,
    seed: u64,
    check_every: Option<u64>,
) -> ArmRun {
    let mut sim = build_backend_simulation(scenario, kind, overlay, seed, check_every);
    let _ = sim.run_until(SimTime::from_secs(scenario.duration_secs));
    let (router, summary) = sim.finish();
    ArmRun {
        summary,
        broke_nodes: router.ledger().broke_nodes().len(),
        attacker_tokens: router.attacker_tokens(),
        protocol: router.stats(),
    }
}

/// The result of one arm under one seed.
#[derive(Debug, Clone)]
pub struct ArmRun {
    /// Kernel-level statistics.
    pub summary: RunSummary,
    /// Mechanism-level counters.
    pub protocol: ProtocolStats,
    /// Nodes that ended the run with zero tokens.
    pub broke_nodes: usize,
    /// Tokens held by strategy-playing nodes at the end of the run
    /// (`0.0` in every strategy-free scenario).
    pub attacker_tokens: f64,
}

/// Runs one `(scenario, arm, seed)` to completion.
#[must_use]
pub fn run_once(scenario: &Scenario, arm: Arm, seed: u64) -> ArmRun {
    run_once_traced(scenario, arm, seed, None).0
}

/// [`run_once`] with an optional kernel event trace: when `trace_capacity`
/// is set, the run records up to that many events and returns their
/// rendered text alongside the results (the CLI's `--trace` flag).
#[must_use]
pub fn run_once_traced(
    scenario: &Scenario,
    arm: Arm,
    seed: u64,
    trace_capacity: Option<usize>,
) -> (ArmRun, Option<String>) {
    run_once_checked(scenario, arm, seed, trace_capacity, None)
}

/// [`run_once_traced`] with an optional invariant-audit cadence (see
/// [`build_simulation_checked`]). A breach panics with the seed, the chaos
/// spec and a trace excerpt — everything needed for a one-command replay.
#[must_use]
pub fn run_once_checked(
    scenario: &Scenario,
    arm: Arm,
    seed: u64,
    trace_capacity: Option<usize>,
    check_every: Option<u64>,
) -> (ArmRun, Option<String>) {
    let (run, rendered, _) =
        run_once_observed(scenario, arm, seed, trace_capacity, check_every, false);
    (run, rendered)
}

/// The fully instrumented single run: optional trace, optional invariant
/// audit, optional wall-clock profiling (see [`PerfReport`]) — the CLI's
/// `run` command with all flags. Profiling changes no simulation outcome.
#[must_use]
pub fn run_once_observed(
    scenario: &Scenario,
    arm: Arm,
    seed: u64,
    trace_capacity: Option<usize>,
    check_every: Option<u64>,
    profile: bool,
) -> (ArmRun, Option<String>, Option<PerfReport>) {
    let trace = trace_capacity.map(dtn_sim::trace::TraceLog::bounded);
    let mut sim = build_simulation_opts(scenario, arm, seed, trace, check_every, profile);
    let t0 = std::time::Instant::now();
    let _ = sim.run_until(SimTime::from_secs(scenario.duration_secs));
    let perf = profile.then(|| PerfReport::capture(&sim, t0.elapsed().as_secs_f64()));
    let rendered = trace_capacity.map(|_| sim.api().trace().render());
    let (router, summary) = sim.finish();
    (
        ArmRun {
            summary,
            broke_nodes: router.ledger().broke_nodes().len(),
            attacker_tokens: router.attacker_tokens(),
            protocol: router.stats(),
        },
        rendered,
        perf,
    )
}

/// Wall-clock performance report for one or more runs: the observability
/// record every later perf PR diffs against. Produced by the perf-enabled
/// run variants ([`run_once_perf`], [`run_seeds_perf`],
/// [`compare_arms_perf`]) and serialized by the CLI's `--metrics-out` and
/// `dtn-bench`'s `perf` binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Number of `(arm, seed)` runs folded into this report.
    pub runs: u64,
    /// Total wall-clock seconds spent simulating.
    pub wall_secs: f64,
    /// Total simulated seconds.
    pub sim_secs: f64,
    /// Speedup over real time: simulated seconds per wall-clock second.
    pub sim_secs_per_sec: f64,
    /// Kernel steps executed.
    pub steps: u64,
    /// Kernel events processed (contacts, creations, transfers, expiries).
    pub events: u64,
    /// Kernel events per wall-clock second — the headline throughput.
    pub events_per_sec: f64,
    /// Peak total buffered bytes across all nodes (max over runs).
    pub peak_buffer_bytes: u64,
    /// Per-phase wall-clock totals in kernel execution order.
    pub phases: Vec<PhaseTiming>,
    /// The full metrics registry (counters, gauges, step-time histogram).
    pub metrics: MetricsRegistry,
}

impl PerfReport {
    /// Captures a finished simulation's counters and phase timings,
    /// attributing `wall_secs` of measured wall-clock to it.
    #[must_use]
    pub fn capture<P: dtn_sim::protocol::Protocol>(
        sim: &Simulation<P>,
        wall_secs: f64,
    ) -> PerfReport {
        let counters = *sim.api().counters();
        let sim_secs = sim.api().now().as_secs();
        let wall = wall_secs.max(1e-12);
        PerfReport {
            runs: 1,
            wall_secs,
            sim_secs,
            sim_secs_per_sec: sim_secs / wall,
            steps: counters.steps,
            events: counters.events(),
            events_per_sec: counters.events() as f64 / wall,
            peak_buffer_bytes: counters.peak_buffer_bytes,
            phases: sim.profiler().timings(),
            metrics: sim.export_metrics(),
        }
    }

    /// Folds another report into this one: wall-clock, steps and events
    /// sum; rates are re-derived; the buffer peak keeps the maximum;
    /// phases merge by label.
    pub fn merge(&mut self, other: &PerfReport) {
        self.runs += other.runs;
        self.wall_secs += other.wall_secs;
        self.sim_secs += other.sim_secs;
        self.steps += other.steps;
        self.events += other.events;
        self.peak_buffer_bytes = self.peak_buffer_bytes.max(other.peak_buffer_bytes);
        let wall = self.wall_secs.max(1e-12);
        self.sim_secs_per_sec = self.sim_secs / wall;
        self.events_per_sec = self.events as f64 / wall;
        for theirs in &other.phases {
            if let Some(mine) = self.phases.iter_mut().find(|p| p.phase == theirs.phase) {
                mine.secs += theirs.secs;
                mine.calls += theirs.calls;
            } else {
                self.phases.push(theirs.clone());
            }
        }
        self.metrics.merge(&other.metrics);
    }

    /// A human-readable performance summary with the per-phase wall-clock
    /// table (the CLI's `--verbose` output).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf: {} run(s), {:.2} s wall · {:.0}× real time · {:.0} events/s · peak buffers {:.1} MB",
            self.runs,
            self.wall_secs,
            self.sim_secs_per_sec,
            self.events_per_sec,
            self.peak_buffer_bytes as f64 / 1e6
        );
        let c = |name: &str| self.metrics.counter(name);
        let _ = writeln!(
            out,
            "  transfers: {} completed · {} aborted (contact {} / source {} / cancelled {} / injected {})",
            c("kernel.transfers_completed"),
            c("kernel.transfers_aborted"),
            c("kernel.transfers_aborted_contact"),
            c("kernel.transfers_aborted_source"),
            c("kernel.transfers_aborted_cancelled"),
            c("kernel.transfers_aborted_injected"),
        );
        let _ = writeln!(
            out,
            "  recovery: {} retried · {} resumed · {} abandoned",
            c("kernel.transfers_retried"),
            c("kernel.transfers_resumed"),
            c("kernel.transfers_abandoned"),
        );
        let total: f64 = self.phases.iter().map(|p| p.secs).sum();
        let total = total.max(1e-12);
        let _ = writeln!(out, "  phase              wall (s)    share");
        for p in &self.phases {
            let _ = writeln!(
                out,
                "  {:<18} {:>8.3}   {:>5.1}%",
                p.phase,
                p.secs,
                100.0 * p.secs / total
            );
        }
        out
    }
}

/// [`run_once`] with the phase profiler enabled, returning the run's
/// [`PerfReport`] alongside the results. The simulation outcome is
/// identical to an unprofiled run of the same `(scenario, arm, seed)`.
#[must_use]
pub fn run_once_perf(scenario: &Scenario, arm: Arm, seed: u64) -> (ArmRun, PerfReport) {
    let (run, _, perf) = run_once_observed(scenario, arm, seed, None, None, true);
    (run, perf.expect("profiling was enabled"))
}

/// The worker-thread cap for multi-seed runs: the machine's available
/// parallelism (at least 1). Unbounded one-thread-per-seed spawning
/// oversubscribes small machines at `--full` paper scale and skews every
/// wall-clock metric this module reports.
#[must_use]
pub fn seed_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs one arm over several seeds — through the [`crate::sweep`]
/// executor's shared worker-pool queue — and averages the summaries.
/// Results are order-stable and identical to a sequential run of the same
/// seeds (each seed's simulation is deterministic and shares no state).
///
/// # Panics
///
/// Panics if `seeds` is empty or a worker thread panics.
#[must_use]
pub fn run_seeds(scenario: &Scenario, arm: Arm, seeds: &[u64]) -> RunSummary {
    RunSummary::mean_of(&run_each_seed(scenario, arm, seeds))
}

/// Runs every seed and returns the per-seed summaries in `seeds` order.
///
/// Seeds execute on the sweep executor's worker pool: one shared queue,
/// no chunk barriers (the old `chunks(seed_parallelism())` path made every
/// chunk wait on its slowest seed), and memoized — a seed another figure
/// already simulated is answered from the run cache.
///
/// # Panics
///
/// Panics if `seeds` is empty or a worker thread panics.
#[must_use]
pub fn run_each_seed(scenario: &Scenario, arm: Arm, seeds: &[u64]) -> Vec<RunSummary> {
    crate::sweep::run_arm_seeds(scenario, arm, seeds)
}

/// [`run_seeds`] with profiling: seeds run *sequentially* so the merged
/// [`PerfReport`]'s wall-clock and throughput numbers measure the kernel,
/// not thread-scheduler contention.
///
/// # Panics
///
/// Panics if `seeds` is empty.
#[must_use]
pub fn run_seeds_perf(scenario: &Scenario, arm: Arm, seeds: &[u64]) -> (RunSummary, PerfReport) {
    assert!(!seeds.is_empty(), "need at least one seed");
    let mut report: Option<PerfReport> = None;
    let mut runs = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let (run, perf) = run_once_perf(scenario, arm, seed);
        runs.push(run.summary);
        match &mut report {
            Some(r) => r.merge(&perf),
            None => report = Some(perf),
        }
    }
    (
        RunSummary::mean_of(&runs),
        report.expect("at least one seed"),
    )
}

/// A paired comparison of the two arms on the same scenario and seeds —
/// the row format of every figure in the paper.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The condition name.
    pub name: String,
    /// The Incentive arm's mean summary.
    pub incentive: RunSummary,
    /// The ChitChat arm's mean summary.
    pub chitchat: RunSummary,
}

impl Comparison {
    /// Percentage of relayed traffic saved by the mechanism relative to
    /// ChitChat (Fig. 5.2's y-axis).
    #[must_use]
    pub fn traffic_reduction_pct(&self) -> f64 {
        if self.chitchat.relays_completed == 0 {
            return 0.0;
        }
        100.0 * (self.chitchat.relays_completed as f64 - self.incentive.relays_completed as f64)
            / self.chitchat.relays_completed as f64
    }

    /// MDR difference (ChitChat − Incentive); positive means the mechanism
    /// trades some delivery for the traffic savings, as the paper reports.
    #[must_use]
    pub fn mdr_gap(&self) -> f64 {
        self.chitchat.delivery_ratio - self.incentive.delivery_ratio
    }
}

/// Runs both arms over `seeds` as one sweep plan (every `(arm, seed)`
/// cell on the shared worker pool) and pairs the averaged results.
///
/// # Panics
///
/// Panics if `seeds` is empty or a worker thread panics.
#[must_use]
pub fn compare_arms(scenario: &Scenario, seeds: &[u64]) -> Comparison {
    use crate::sweep::{run_cells, Cell};
    assert!(!seeds.is_empty(), "need at least one seed");
    let cells: Vec<Cell> = Arm::BOTH
        .iter()
        .flat_map(|&arm| {
            seeds
                .iter()
                .map(move |&seed| Cell::arm(scenario.clone(), arm, seed))
        })
        .collect();
    let results = run_cells(&cells);
    let (inc, cc) = results.split_at(seeds.len());
    let mean = |half: &[crate::sweep::CellResult]| {
        RunSummary::mean_of(&half.iter().map(|r| r.summary.clone()).collect::<Vec<_>>())
    };
    Comparison {
        name: scenario.name.clone(),
        incentive: mean(inc),
        chitchat: mean(cc),
    }
}

/// [`compare_arms`] with profiling: both arms run sequentially (seeds
/// too), and the returned [`PerfReport`] folds the whole comparison's
/// wall-clock, throughput and phase breakdown together.
#[must_use]
pub fn compare_arms_perf(scenario: &Scenario, seeds: &[u64]) -> (Comparison, PerfReport) {
    let (incentive, mut perf) = run_seeds_perf(scenario, Arm::Incentive, seeds);
    let (chitchat, cc_perf) = run_seeds_perf(scenario, Arm::ChitChat, seeds);
    perf.merge(&cc_perf);
    (
        Comparison {
            name: scenario.name.clone(),
            incentive,
            chitchat,
        },
        perf,
    )
}

/// Runs overlay-on and overlay-off over `seeds` for one backend as a
/// single sweep plan and pairs the averaged results: the generalized form
/// of [`compare_arms`] ("Incentive vs ChitChat" is exactly
/// `compare_overlays(_, BackendKind::ChitChat, _)` — and its cells share
/// the arm cells' cache entries).
///
/// # Panics
///
/// Panics if `seeds` is empty or a worker thread panics.
#[must_use]
pub fn compare_overlays(scenario: &Scenario, kind: BackendKind, seeds: &[u64]) -> Comparison {
    use crate::sweep::{run_cells, Cell};
    assert!(!seeds.is_empty(), "need at least one seed");
    let cells: Vec<Cell> = Overlay::BOTH
        .iter()
        .flat_map(|&overlay| {
            seeds
                .iter()
                .map(move |&seed| Cell::backend(scenario.clone(), kind, overlay, seed))
        })
        .collect();
    let results = run_cells(&cells);
    let (on, off) = results.split_at(seeds.len());
    let mean = |half: &[crate::sweep::CellResult]| {
        RunSummary::mean_of(&half.iter().map(|r| r.summary.clone()).collect::<Vec<_>>())
    };
    Comparison {
        name: scenario.name.clone(),
        incentive: mean(on),
        chitchat: mean(off),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    /// A tiny scenario that runs in well under a second.
    fn tiny() -> Scenario {
        let mut s = paper::reduced_scenario();
        s.nodes = 20;
        s.area_km2 = 0.2;
        s.duration_secs = 1200.0;
        s.message_interval_secs = 30.0;
        s.message_ttl_secs = 900.0;
        s.named("tiny")
    }

    #[test]
    fn arms_differ_only_in_mechanism() {
        let s = tiny();
        let inc = protocol_for(&s, Arm::Incentive);
        let cc = protocol_for(&s, Arm::ChitChat);
        assert!(inc.incentive_enabled && !cc.incentive_enabled);
        assert!(!cc.drm_enabled && !cc.enrichment_enabled);
        assert_eq!(inc.chitchat, cc.chitchat, "identical routing constants");
    }

    #[test]
    fn run_once_produces_traffic_and_deliveries() {
        let run = run_once(&tiny(), Arm::ChitChat, 7);
        assert!(run.summary.created > 0);
        assert!(run.summary.relays_completed > 0, "some forwarding happened");
        assert!(run.summary.delivery_ratio > 0.0, "something was delivered");
        assert!(run.summary.delivery_ratio <= 1.0);
    }

    #[test]
    fn incentive_arm_settles_payments() {
        let run = run_once(&tiny(), Arm::Incentive, 7);
        assert!(run.protocol.settlements > 0, "deliveries were paid for");
        assert!(run.protocol.tokens_awarded > 0.0);
    }

    #[test]
    fn identical_seed_identical_result() {
        let s = tiny();
        let a = run_once(&s, Arm::Incentive, 3);
        let b = run_once(&s, Arm::Incentive, 3);
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.protocol, b.protocol);
    }

    #[test]
    fn token_exhaustion_gates_receptions() {
        // Fig. 5.2's traffic reduction comes from token exhaustion; the
        // statistically robust form of that claim at tiny scale is that
        // starved destinations exist and are refused receptions, pulling
        // the incentive arm's delivery count below ChitChat's. (The
        // network-level traffic totals at full load are checked by the
        // figure harness, where the effect dominates ordering noise.)
        let mut s = tiny();
        s.selfish_fraction = 0.4;
        s.protocol.incentive.initial_tokens = 5.0;
        s.protocol.enrichment_enabled = false;
        let inc = run_once(&s, Arm::Incentive, 1);
        let cc = run_once(&s, Arm::ChitChat, 1);
        assert!(inc.broke_nodes > 0, "some nodes ran out of tokens");
        assert!(
            inc.protocol.refused_broke_destination > 0,
            "broke destinations were refused receptions"
        );
        assert!(
            inc.summary.delivered_pairs < cc.summary.delivered_pairs,
            "starvation lowers deliveries: {} vs {}",
            inc.summary.delivered_pairs,
            cc.summary.delivered_pairs
        );
    }

    #[test]
    fn chaotic_scenario_replays_identically_under_audit() {
        let mut s = tiny();
        s.chaos = Some(
            "crash=4,crashdown=90,cut=10,cutdown=20,loss=0.05"
                .parse()
                .unwrap(),
        );
        let a = run_once_checked(&s, Arm::Incentive, 5, None, Some(30)).0;
        let b = run_once_checked(&s, Arm::Incentive, 5, None, Some(30)).0;
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.protocol, b.protocol);
    }

    #[test]
    fn chaos_plan_actually_perturbs_the_run() {
        let s = tiny();
        let mut chaotic = tiny();
        chaotic.chaos = Some("crash=8,crashdown=120,wipe,loss=0.2".parse().unwrap());
        let clean = run_once(&s, Arm::Incentive, 7);
        let faulty = run_once_checked(&chaotic, Arm::Incentive, 7, None, Some(60)).0;
        assert_ne!(
            clean.summary, faulty.summary,
            "a hot plan must change the outcome"
        );
        assert!(
            faulty.summary.delivery_ratio <= clean.summary.delivery_ratio,
            "chaos does not help delivery: {} vs {}",
            faulty.summary.delivery_ratio,
            clean.summary.delivery_ratio
        );
    }

    #[test]
    fn recovery_policy_is_wired_through_and_reported() {
        let mut s = tiny();
        s.chaos = Some("loss=0.3".parse().unwrap());
        s.recovery = Some(dtn_sim::transfer::RecoveryPolicy {
            backoff_base_secs: 5.0,
            ..dtn_sim::transfer::RecoveryPolicy::default()
        });
        let sim = build_simulation(&s, Arm::Incentive, 7);
        assert_eq!(sim.recovery_policy(), s.recovery.as_ref());
        let (run, _, perf) = run_once_observed(&s, Arm::Incentive, 7, None, Some(60), true);
        assert!(
            run.summary.transfers_retried > 0,
            "loss chaos forces retries"
        );
        let perf = perf.expect("profiled");
        let rendered = perf.render();
        assert!(rendered.contains("injected"), "abort breakdown rendered");
        assert!(rendered.contains("retried"), "recovery counters rendered");
        assert_eq!(
            perf.metrics.counter("kernel.transfers_retried"),
            run.summary.transfers_retried
        );
        // An inert policy builds to no recovery at all.
        let mut off = tiny();
        off.recovery = Some(dtn_sim::transfer::RecoveryPolicy::disabled());
        assert_eq!(
            build_simulation(&off, Arm::Incentive, 7).recovery_policy(),
            None
        );
    }

    #[test]
    fn third_party_builds_pin_drop_oldest_and_match_chitchat_world() {
        use dtn_sim::buffer::DropPolicy;
        use dtn_sim::protocol::NullProtocol;
        let s = tiny();
        let sim = build_with_protocol(&s, 3, |_, _| NullProtocol);
        assert_eq!(
            sim.api().buffer(NodeId(0)).policy(),
            DropPolicy::DropOldest,
            "explicit ONE default, independent of the kernel builder's"
        );
        // Same world as the DcimRouter build: node count, buffer capacity
        // and schedule-driven message creation all line up.
        let reference = build_simulation(&s, Arm::ChitChat, 3);
        assert_eq!(sim.api().node_count(), reference.api().node_count());
        assert_eq!(
            sim.api().buffer(NodeId(0)).capacity_bytes(),
            reference.api().buffer(NodeId(0)).capacity_bytes()
        );
        assert_eq!(
            reference.api().buffer(NodeId(0)).policy(),
            DropPolicy::DropOldest,
            "chitchat arm keeps drop-oldest too"
        );
    }

    #[test]
    fn mean_across_seeds_uses_all_runs() {
        let s = tiny();
        let one = run_seeds(&s, Arm::ChitChat, &[1]);
        let two = run_seeds(&s, Arm::ChitChat, &[1, 2]);
        // Averaging with a second seed must move some field unless the two
        // seeds coincidentally agree everywhere (they do not).
        assert!(one != two);
    }

    #[test]
    fn executor_run_seeds_matches_sequential_merge() {
        // More seeds than most CI machines have cores, so the executor's
        // queue actually backs up; the merged result must equal the old
        // strictly sequential merge, in order. (Seven seeds: the figure
        // binaries' largest seed family plus headroom, per the chunk-path
        // removal note.)
        let s = tiny();
        let seeds: Vec<u64> = (1..=7).collect();
        crate::sweep::clear_memo();
        let pooled = run_each_seed(&s, Arm::ChitChat, &seeds);
        let sequential: Vec<_> = seeds
            .iter()
            .map(|&seed| run_once(&s, Arm::ChitChat, seed).summary)
            .collect();
        assert_eq!(pooled, sequential);
        assert_eq!(
            run_seeds(&s, Arm::ChitChat, &seeds),
            RunSummary::mean_of(&sequential)
        );
        assert!(seed_parallelism() >= 1);
    }

    #[test]
    fn compare_arms_routes_both_arms_through_one_plan() {
        let s = tiny();
        crate::sweep::clear_memo();
        let cmp = compare_arms(&s, &[1, 2]);
        assert_eq!(cmp.name, s.name);
        assert_eq!(
            cmp.incentive,
            RunSummary::mean_of(&[
                run_once(&s, Arm::Incentive, 1).summary,
                run_once(&s, Arm::Incentive, 2).summary,
            ])
        );
        assert_eq!(
            cmp.chitchat,
            RunSummary::mean_of(&[
                run_once(&s, Arm::ChitChat, 1).summary,
                run_once(&s, Arm::ChitChat, 2).summary,
            ])
        );
    }

    #[test]
    fn perf_run_reproduces_unprofiled_results() {
        let s = tiny();
        let plain = run_once(&s, Arm::Incentive, 7);
        let (profiled, perf) = run_once_perf(&s, Arm::Incentive, 7);
        assert_eq!(
            plain.summary, profiled.summary,
            "metrics collection must not perturb the simulation"
        );
        assert_eq!(plain.protocol, profiled.protocol);
        assert_eq!(perf.runs, 1);
        assert!(perf.wall_secs > 0.0);
        assert_eq!(perf.sim_secs, s.duration_secs);
        assert!(perf.sim_secs_per_sec > 0.0);
        assert_eq!(perf.steps, s.duration_secs as u64);
        assert!(perf.events > 0);
        assert!(perf.events_per_sec > 0.0);
        assert!(perf.peak_buffer_bytes > 0);
        assert!(!perf.phases.is_empty());
        assert!(
            perf.phases.iter().map(|p| p.secs).sum::<f64>() <= perf.wall_secs,
            "phase totals cannot exceed the measured wall-clock"
        );
        assert_eq!(perf.metrics.counter("kernel.steps"), perf.steps);
    }

    #[test]
    fn perf_reports_merge_additively() {
        let s = tiny();
        let (_, a) = run_once_perf(&s, Arm::ChitChat, 1);
        let (_, b) = run_once_perf(&s, Arm::ChitChat, 2);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.runs, 2);
        assert_eq!(merged.steps, a.steps + b.steps);
        assert_eq!(merged.events, a.events + b.events);
        assert!((merged.wall_secs - (a.wall_secs + b.wall_secs)).abs() < 1e-9);
        assert_eq!(
            merged.peak_buffer_bytes,
            a.peak_buffer_bytes.max(b.peak_buffer_bytes)
        );
        let phase_sum: f64 = merged.phases.iter().map(|p| p.secs).sum();
        let parts: f64 = a.phases.iter().chain(&b.phases).map(|p| p.secs).sum();
        assert!((phase_sum - parts).abs() < 1e-9);
        // And the comparison helper folds both arms into one report.
        let (cmp, perf) = compare_arms_perf(&s, &[1]);
        assert_eq!(perf.runs, 2, "one run per arm");
        assert!(cmp.incentive != cmp.chitchat);
    }
}
