//! Property-based tests over the ChitChat RTSR model.

use proptest::prelude::*;

use dtn_routing::interests::{psi, ChitChatParams, InterestKind, InterestTable};
use dtn_sim::message::Keyword;
use dtn_sim::time::SimTime;

fn params() -> ChitChatParams {
    ChitChatParams::paper_default()
}

proptest! {
    /// Weights stay in [0, 1] under arbitrary interleavings of subscribe,
    /// decay and growth.
    #[test]
    fn weights_always_bounded(
        ops in prop::collection::vec((0u8..3, 0u32..10, 0.0f64..500.0), 0..120)
    ) {
        let p = params();
        let mut t = InterestTable::new();
        let mut peer = InterestTable::new();
        for k in 0..5u32 {
            peer.subscribe(Keyword(k), &p, SimTime::ZERO);
        }
        let mut now = 0.0;
        for (op, kw, dt) in ops {
            now += dt;
            match op {
                0 => t.subscribe(Keyword(kw), &p, SimTime::from_secs(now)),
                1 => t.decay(SimTime::from_secs(now), &p, |_| false),
                _ => t.grow(&peer, dt, &p, SimTime::from_secs(now)),
            }
            for (_, e) in t.iter() {
                prop_assert!(e.weight >= 0.0 && e.weight <= 1.0, "weight {}", e.weight);
            }
        }
    }

    /// Decay never raises any weight and never removes a direct interest.
    #[test]
    fn decay_monotone_and_keeps_directs(
        subscribed in prop::collection::btree_set(0u32..20, 1..10),
        elapsed in 1.0f64..10_000.0
    ) {
        let p = params();
        let mut t = InterestTable::new();
        for &k in &subscribed {
            t.subscribe(Keyword(k), &p, SimTime::ZERO);
        }
        let before: Vec<(Keyword, f64)> = t.iter().map(|(k, e)| (k, e.weight)).collect();
        t.decay(SimTime::from_secs(elapsed), &p, |_| false);
        for (k, w) in before {
            let e = t.get(k).expect("direct interests survive decay");
            prop_assert!(e.weight <= w + 1e-12);
            prop_assert_eq!(e.kind, InterestKind::Direct);
        }
    }

    /// Growth is monotone: growing from a peer never lowers a weight, and
    /// longer contact credit never yields a smaller weight.
    #[test]
    fn growth_monotone(
        secs_a in 0.0f64..500.0,
        secs_b in 0.0f64..500.0
    ) {
        let p = params();
        let mut peer = InterestTable::new();
        peer.subscribe(Keyword(1), &p, SimTime::ZERO);
        let (short, long) = if secs_a <= secs_b { (secs_a, secs_b) } else { (secs_b, secs_a) };

        let mut t_short = InterestTable::new();
        t_short.subscribe(Keyword(1), &p, SimTime::ZERO);
        let mut t_long = t_short.clone();
        let before = t_short.weight(Keyword(1));
        t_short.grow(&peer, short, &p, SimTime::ZERO);
        t_long.grow(&peer, long, &p, SimTime::ZERO);
        prop_assert!(t_short.weight(Keyword(1)) >= before);
        prop_assert!(t_long.weight(Keyword(1)) >= t_short.weight(Keyword(1)));
    }

    /// ψ covers exactly {1..6}, each case once, ordered so that stronger
    /// provenance grows faster (smaller divisor).
    #[test]
    fn psi_total_and_injective(_dummy in 0u8..1) {
        use InterestKind::{Direct, Transient};
        let cases = [
            (Some(Direct), Direct),
            (Some(Direct), Transient),
            (Some(Transient), Direct),
            (Some(Transient), Transient),
            (None, Direct),
            (None, Transient),
        ];
        let values: Vec<u8> = cases.iter().map(|&(o, pk)| psi(o, pk)).collect();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, vec![1, 2, 3, 4, 5, 6]);
        prop_assert_eq!(values[0], 1);
    }

    /// Sum of weights is additive over keywords and zero for unknown ones.
    #[test]
    fn sum_of_weights_additive(kws in prop::collection::vec(0u32..30, 0..10)) {
        let p = params();
        let mut t = InterestTable::new();
        for k in 0..10u32 {
            t.subscribe(Keyword(k), &p, SimTime::ZERO);
        }
        let keywords: Vec<Keyword> = kws.iter().map(|&k| Keyword(k)).collect();
        let sum = t.sum_of_weights(&keywords);
        let manual: f64 = keywords.iter().map(|&k| t.weight(k)).sum();
        prop_assert!((sum - manual).abs() < 1e-12);
        if !keywords.is_empty() {
            let mean = t.mean_weight(&keywords);
            prop_assert!((mean - sum / keywords.len() as f64).abs() < 1e-12);
        }
    }

    /// A destination is exactly a node with a direct interest in at least
    /// one keyword.
    #[test]
    fn destination_test_matches_direct_interests(
        direct in prop::collection::btree_set(0u32..20, 0..8),
        probe in prop::collection::vec(0u32..20, 1..8)
    ) {
        let p = params();
        let mut t = InterestTable::new();
        for &k in &direct {
            t.subscribe(Keyword(k), &p, SimTime::ZERO);
        }
        let keywords: Vec<Keyword> = probe.iter().map(|&k| Keyword(k)).collect();
        let expected = probe.iter().any(|k| direct.contains(k));
        prop_assert_eq!(t.is_destination_for(&keywords), expected);
    }
}

// ---------------------------------------------------------------------------
// Settlement wheel vs. legacy full scan (DESIGN.md §16): over arbitrary
// interleavings of contact-open (service), contact-close and reopen, the
// wheel must emit exactly the pairs the per-tick full scan would, in the
// same sorted order, with the same credited spans — including across a
// mid-run snapshot rebuild.
// ---------------------------------------------------------------------------

mod wheel_equivalence {
    use super::*;
    use dtn_routing::exchange::{due_pairs_into, ExchangeWheel};
    use dtn_sim::time::SimDuration;
    use dtn_sim::world::{ordered_pair, NodeId};
    use std::collections::HashMap;

    /// One scripted kernel step: `kind % 3` selects open/service (0),
    /// close (1) or no contact event (2) on the pair named by `a`/`b`.
    type Op = (u8, u8, u8);

    /// Drives the legacy scan and the wheel in lockstep over `ops`,
    /// asserting identical due emissions every step. `kill_at` optionally
    /// rebuilds the wheel from its sorted snapshot form before that step,
    /// exactly as `import_state` does after a crash/resume.
    fn check(dt: f64, interval: f64, ops: &[Op], kill_at: Option<usize>) {
        let mut legacy: HashMap<(NodeId, NodeId), SimTime> = HashMap::new();
        let mut wheel = ExchangeWheel::new();
        let mut expected = Vec::new();
        let mut got = Vec::new();
        // Mimic the kernel clock: `now` accumulates dt step by step, so
        // the float rounding the wheel must tolerate is reproduced here.
        let mut now = SimTime::ZERO;
        for (i, &(kind, a, b)) in ops.iter().enumerate() {
            let step = i as u64;
            if kill_at == Some(i) {
                let mut entries: Vec<_> = wheel.iter().collect();
                entries.sort_unstable_by_key(|&(pair, _)| pair);
                let mut fresh = ExchangeWheel::new();
                fresh.restore(entries);
                wheel = fresh;
            }
            let pair = ordered_pair(NodeId(u32::from(a % 5)), NodeId(u32::from(b % 5)));
            if pair.0 != pair.1 {
                match kind % 3 {
                    0 => {
                        legacy.insert(pair, now);
                        wheel.note_serviced(pair, now, step);
                    }
                    1 => {
                        legacy.remove(&pair);
                        wheel.remove(pair);
                    }
                    _ => {}
                }
            }
            due_pairs_into(&legacy, now, interval, &mut expected);
            wheel.drain_due_into(now, step, interval, dt, &mut got);
            prop_assert_eq!(&got, &expected, "divergence at step {}", i);
            for &(p, _) in &expected {
                legacy.insert(p, now);
                wheel.note_serviced(p, now, step);
            }
            now += SimDuration::from_secs(dt);
        }
        prop_assert_eq!(wheel.watched_pairs(), legacy.len());
    }

    proptest! {
        #[test]
        fn wheel_matches_full_scan(
            dt in 0.25f64..5.0,
            interval in 1.0f64..90.0,
            ops in prop::collection::vec((0u8..3, 0u8..8, 0u8..8), 1..250),
        ) {
            check(dt, interval, &ops, None);
        }

        /// Same property with a snapshot kill-and-rebuild at an arbitrary
        /// step: the wheel is derived state, so resuming from the sorted
        /// `(pair, last_serviced)` wire form must not shift any emission.
        #[test]
        fn wheel_survives_snapshot_rebuild(
            dt in 0.25f64..5.0,
            interval in 1.0f64..90.0,
            ops in prop::collection::vec((0u8..3, 0u8..8, 0u8..8), 1..250),
            kill_frac in 0.0f64..1.0,
        ) {
            let kill_at = (kill_frac * ops.len() as f64) as usize;
            check(dt, interval, &ops, Some(kill_at));
        }

        /// The interval boundary itself: a pair serviced once and never
        /// touched again fires first at the same step under both models.
        #[test]
        fn first_fire_step_matches(dt in 0.25f64..5.0, interval in 1.0f64..90.0) {
            let mut ops = vec![(0u8, 0u8, 1u8)];
            ops.resize(260, (2u8, 0u8, 0u8));
            check(dt, interval, &ops, None);
        }
    }
}
