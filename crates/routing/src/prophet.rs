//! PRoPHET — Probabilistic Routing Protocol using History of Encounters
//! and Transitivity (Lindgren, Doria, Schelén — MC2R 2003).
//!
//! The standard probabilistic DTN forwarding baseline (it ships with the
//! ONE simulator the paper evaluates on). Each node maintains delivery
//! predictabilities `P(a, b) ∈ [0, 1]`:
//!
//! * **encounter**:    `P(a,b) ← P(a,b) + (1 − P(a,b))·P_init`
//! * **aging**:        `P(a,b) ← P(a,b)·γ^k` for `k` elapsed time units
//! * **transitivity**: `P(a,c) ← P(a,c) + (1 − P(a,c))·P(a,b)·P(b,c)·β`
//!
//! Forwarding: `a` hands `b` a copy of a message destined for `d` iff
//! `P(b,d) > P(a,d)`. Destinations here are interest-based like the other
//! baselines: the message's destination set is every node with a direct
//! interest in one of its tags (resolved through an
//! [`InterestDirectory`]).

use std::collections::HashMap;

use dtn_sim::buffer::InsertOutcome;
use dtn_sim::kernel::SimApi;
use dtn_sim::message::MessageId;
use dtn_sim::protocol::{Protocol, Reception};
use dtn_sim::time::SimTime;
use dtn_sim::world::NodeId;

use crate::directory::InterestDirectory;

/// PRoPHET's tunables, defaulting to the RFC 6693 values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProphetParams {
    /// `P_init`: the encounter bump (RFC default 0.75).
    pub p_init: f64,
    /// `γ`: the per-second aging base (RFC default 0.98 per time unit; we
    /// use one-minute units, see [`ProphetParams::age_unit_secs`]).
    pub gamma: f64,
    /// `β`: the transitivity damping (RFC default 0.25).
    pub beta: f64,
    /// Seconds per aging unit.
    pub age_unit_secs: f64,
}

impl Default for ProphetParams {
    fn default() -> Self {
        ProphetParams {
            p_init: 0.75,
            gamma: 0.98,
            beta: 0.25,
            age_unit_secs: 60.0,
        }
    }
}

/// One node's predictability table (shared with [`crate::backend`]'s
/// PRoPHET backend).
#[derive(Debug, Clone, Default)]
pub(crate) struct Predictability {
    p: HashMap<NodeId, f64>,
    last_aged: f64,
}

/// Serialized form of one [`Predictability`] table, peer-sorted.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub(crate) struct PredictabilityState {
    p: Vec<(NodeId, f64)>,
    last_aged: f64,
}

impl Predictability {
    pub(crate) fn export_state(&self) -> PredictabilityState {
        let mut p: Vec<(NodeId, f64)> = self.p.iter().map(|(&n, &v)| (n, v)).collect();
        p.sort_unstable_by_key(|&(n, _)| n);
        PredictabilityState {
            p,
            last_aged: self.last_aged,
        }
    }

    pub(crate) fn import_state(&mut self, state: &PredictabilityState) {
        self.p = state.p.iter().copied().collect();
        self.last_aged = state.last_aged;
    }
}

impl Predictability {
    pub(crate) fn age(&mut self, now: f64, params: &ProphetParams) {
        let units = (now - self.last_aged) / params.age_unit_secs;
        if units <= 0.0 {
            return;
        }
        let factor = params.gamma.powf(units);
        for v in self.p.values_mut() {
            *v *= factor;
        }
        self.p.retain(|_, v| *v > 1e-6);
        self.last_aged = now;
    }

    pub(crate) fn encounter(&mut self, peer: NodeId, params: &ProphetParams) {
        let e = self.p.entry(peer).or_insert(0.0);
        *e += (1.0 - *e) * params.p_init;
    }

    pub(crate) fn transit(
        &mut self,
        via: NodeId,
        peer_table: &HashMap<NodeId, f64>,
        params: &ProphetParams,
    ) {
        let p_ab = self.p.get(&via).copied().unwrap_or(0.0);
        for (&c, &p_bc) in peer_table {
            let e = self.p.entry(c).or_insert(0.0);
            *e += (1.0 - *e) * p_ab * p_bc * params.beta;
        }
    }

    pub(crate) fn get(&self, node: NodeId) -> f64 {
        self.p.get(&node).copied().unwrap_or(0.0)
    }

    /// A copy of the raw table, for the pre-transit snapshots the update
    /// rule needs.
    pub(crate) fn snapshot(&self) -> HashMap<NodeId, f64> {
        self.p.clone()
    }
}

/// The PRoPHET router.
#[derive(Debug)]
pub struct ProphetRouter {
    directory: InterestDirectory,
    params: ProphetParams,
    tables: Vec<Predictability>,
}

impl ProphetRouter {
    /// Creates the router over a fixed interest directory.
    #[must_use]
    pub fn new(directory: InterestDirectory, params: ProphetParams) -> Self {
        let n = directory.node_count();
        ProphetRouter {
            directory,
            params,
            tables: (0..n).map(|_| Predictability::default()).collect(),
        }
    }

    /// The delivery predictability `P(a, b)` as currently held by `a`.
    #[must_use]
    pub fn predictability(&self, a: NodeId, b: NodeId) -> f64 {
        self.tables[a.index()].get(b)
    }

    fn update_pair(&mut self, now: SimTime, a: NodeId, b: NodeId) {
        let now = now.as_secs();
        self.tables[a.index()].age(now, &self.params);
        self.tables[b.index()].age(now, &self.params);
        self.tables[a.index()].encounter(b, &self.params);
        self.tables[b.index()].encounter(a, &self.params);
        let snap_a = self.tables[a.index()].p.clone();
        let snap_b = self.tables[b.index()].p.clone();
        self.tables[a.index()].transit(b, &snap_b, &self.params);
        self.tables[b.index()].transit(a, &snap_a, &self.params);
    }

    fn offer(&mut self, api: &mut SimApi, from: NodeId, to: NodeId) {
        for id in api.buffer(from).ids_sorted() {
            if api.buffer(to).contains(id) || api.is_sending(from, to, id) {
                continue;
            }
            let Some(copy) = api.buffer(from).get(id) else {
                continue;
            };
            let keywords = copy.keywords();
            if self.directory.is_destination(to, &keywords) {
                if !api.is_delivered(to, id) {
                    api.send(from, to, id);
                }
                continue;
            }
            // Forward when the peer is a better bet for *some* destination
            // of the message.
            let source = copy.body.source;
            let better = self
                .directory
                .destinations_for(&keywords, source)
                .into_iter()
                .any(|d| self.tables[to.index()].get(d) > self.tables[from.index()].get(d));
            if better {
                api.send(from, to, id);
            }
        }
    }
}

impl Protocol for ProphetRouter {
    fn on_contact_up(&mut self, api: &mut SimApi, a: NodeId, b: NodeId) {
        self.update_pair(api.now(), a, b);
        self.offer(api, a, b);
        self.offer(api, b, a);
    }

    fn on_message_created(&mut self, api: &mut SimApi, node: NodeId, message: MessageId) {
        let _ = message;
        for peer in api.peers_of(node) {
            self.offer(api, node, peer);
        }
    }

    fn on_transfer_complete(&mut self, api: &mut SimApi, r: &Reception<'_>) {
        let (to, id) = (r.transfer.to, r.transfer.message);
        if !matches!(r.outcome, InsertOutcome::Stored { .. }) {
            return;
        }
        let keywords = api
            .buffer(to)
            .get(id)
            .map(|c| c.keywords())
            .unwrap_or_default();
        if self.directory.is_destination(to, &keywords) {
            api.mark_delivered(to, id);
        }
        for peer in api.peers_of(to) {
            self.offer(api, to, peer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::geometry::{Area, Point};
    use dtn_sim::kernel::{ScheduledMessage, SimulationBuilder};
    use dtn_sim::message::{Keyword, Priority, Quality};
    use dtn_sim::mobility::ScriptedWaypoints;

    #[test]
    fn encounter_raises_predictability() {
        let mut p = Predictability::default();
        let params = ProphetParams::default();
        p.encounter(NodeId(1), &params);
        assert_eq!(p.get(NodeId(1)), 0.75);
        p.encounter(NodeId(1), &params);
        assert!(
            (p.get(NodeId(1)) - 0.9375).abs() < 1e-12,
            "0.75 + 0.25·0.75"
        );
        assert!(p.get(NodeId(1)) < 1.0);
    }

    #[test]
    fn aging_decays_predictability() {
        let mut p = Predictability::default();
        let params = ProphetParams::default();
        p.encounter(NodeId(1), &params);
        p.age(600.0, &params); // 10 one-minute units
        let expected = 0.75 * 0.98f64.powf(10.0);
        assert!((p.get(NodeId(1)) - expected).abs() < 1e-9);
    }

    #[test]
    fn transitivity_bridges() {
        let params = ProphetParams::default();
        let mut a = Predictability::default();
        a.encounter(NodeId(1), &params); // P(a,b)=0.75
        let mut b_table = HashMap::new();
        b_table.insert(NodeId(2), 0.8); // P(b,c)=0.8
        a.transit(NodeId(1), &b_table, &params);
        let expected = 0.75 * 0.8 * 0.25;
        assert!((a.get(NodeId(2)) - expected).abs() < 1e-12);
    }

    #[test]
    fn end_to_end_chain_delivery() {
        // n1 shuttles between n0 and n2, building predictability toward n2
        // so n0 hands it the message.
        let mut dir = InterestDirectory::new(3);
        dir.subscribe(NodeId(2), [Keyword(1)]);
        let router = ProphetRouter::new(dir, ProphetParams::default());
        let shuttle = ScriptedWaypoints::new(vec![
            (0.0, Point::new(180.0, 0.0)), // near n2 first: learn P(1,2)
            (200.0, Point::new(180.0, 0.0)),
            (300.0, Point::new(20.0, 0.0)), // then visit n0
            (500.0, Point::new(20.0, 0.0)),
            (600.0, Point::new(180.0, 0.0)), // and return to n2
            (900.0, Point::new(180.0, 0.0)),
        ]);
        let mut sim = SimulationBuilder::new(Area::new(500.0, 500.0), 1)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
            .node(Box::new(shuttle))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(180.0, 0.0))))
            .message(ScheduledMessage {
                at: SimTime::from_secs(250.0),
                source: NodeId(0),
                size_bytes: 10_000,
                ttl_secs: 100_000.0,
                priority: Priority::High,
                quality: Quality::new(0.9),
                ground_truth: vec![Keyword(1)],
                source_tags: vec![Keyword(1)],
                expected_destinations: vec![NodeId(2)],
            })
            .build(router);
        let summary = sim.run_until(SimTime::from_secs(1200.0));
        assert_eq!(summary.delivered_pairs, 1, "PRoPHET routed via the shuttle");
        let router = sim.protocol();
        assert!(router.predictability(NodeId(1), NodeId(2)) > 0.0);
        assert!(
            router.predictability(NodeId(0), NodeId(2)) > 0.0,
            "transitivity gave n0 an opinion about n2"
        );
    }
}
