//! # dtn-routing
//!
//! DTN routing protocols over the [`dtn_sim`] kernel:
//!
//! * [`chitchat`] — the ChitChat algorithm (McGeehan, Lin, Madria — ICDCS
//!   2016): Real-time Transient Social Relationship modeling (decay/growth
//!   weight exchange) plus the `S_v > S_u` data-centric forwarding rule.
//!   This is the routing substrate *and* the evaluation baseline of the
//!   reproduced incentive paper.
//! * [`baselines`] — Epidemic, Direct Delivery, binary Spray-and-Wait and
//!   Two-Hop Relay, for calibration and ablation studies.
//! * [`prophet`] — PRoPHET probabilistic routing (RFC 6693), the standard
//!   history-based DTN baseline.
//! * [`cedo`] — CEDO, the request-driven content-centric dissemination
//!   scheme the thesis contrasts ChitChat with (§1.2).
//! * [`backend`] — the [`backend::RouterBackend`] seam: every router above
//!   as a pluggable substrate the incentive overlay in `dtn-core` composes
//!   with.
//! * [`interests`] — the RTSR interest-table model shared with `dtn-core`.
//! * [`directory`] — static interest registry used by the node-centric
//!   baselines' delivery criterion.
//!
//! ## Example
//!
//! ```
//! use dtn_routing::prelude::*;
//! use dtn_sim::prelude::*;
//!
//! let mut router = ChitChatRouter::new(10, ChitChatParams::paper_default());
//! router.subscribe(NodeId(3), [Keyword(42)]);
//! assert!(router.is_destination(NodeId(3), &[Keyword(42)]));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod baselines;
pub mod cedo;
pub mod chitchat;
pub mod directory;
pub mod exchange;
pub mod interests;
pub mod prophet;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::backend::{
        BackendKind, ChitChatBackend, DirectBackend, EpidemicBackend, Overlay, ProphetBackend,
        RouterBackend, SprayBackend, TwoHopBackend,
    };
    pub use crate::baselines::{
        DirectDeliveryRouter, EpidemicRouter, SprayAndWaitRouter, TwoHopRelayRouter,
    };
    pub use crate::cedo::CedoRouter;
    pub use crate::chitchat::ChitChatRouter;
    pub use crate::directory::InterestDirectory;
    pub use crate::exchange::{due_pairs, rtsr_exchange, shared_keywords, KeywordSet};
    pub use crate::interests::{ChitChatParams, InterestEntry, InterestKind, InterestTable};
    pub use crate::prophet::{ProphetParams, ProphetRouter};
}
