//! Shared pairwise-exchange plumbing.
//!
//! Three routers run the same two rituals on long-lived contacts: the RTSR
//! weight exchange (decay → swap → grow, Algorithms 1–2) and a periodic
//! "which pairs are due again" scan with exact once-per-span time
//! crediting. Keeping one implementation here means a semantics fix to
//! either ritual reaches ChitChat, the incentive protocol, and CEDO at
//! once — the incentive arm of every experiment must run the *same*
//! ChitChat substrate as the baseline arm.

use std::cell::RefCell;
use std::collections::HashMap;

use dtn_sim::fxhash::FxHashMap;
use dtn_sim::message::Keyword;
use dtn_sim::time::SimTime;
use dtn_sim::world::NodeId;

use crate::interests::{ChitChatParams, InterestRow, InterestTable};

/// A set of keywords as a bitmap over the keyword id space.
///
/// Keyword ids are dense small integers drawn from the scenario's pool
/// (Table 5.1: 200), so membership — the only operation the exchange
/// ritual needs — is one bit test instead of a hash probe. Building the
/// union of several peers' tables touches a handful of words; the hashed
/// set this replaces dominated the settlement-tick profile.
#[derive(Debug, Clone, Default)]
pub struct KeywordSet {
    bits: Vec<u64>,
}

impl KeywordSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `keyword` to the set.
    pub fn insert(&mut self, keyword: Keyword) {
        let (word, bit) = (keyword.0 as usize / 64, keyword.0 % 64);
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        self.bits[word] |= 1 << bit;
    }

    /// Removes `keyword` from the set.
    pub fn remove(&mut self, keyword: Keyword) {
        let (word, bit) = (keyword.0 as usize / 64, keyword.0 % 64);
        if let Some(w) = self.bits.get_mut(word) {
            *w &= !(1 << bit);
        }
    }

    /// Whether `keyword` is in the set.
    #[must_use]
    pub fn contains(&self, keyword: Keyword) -> bool {
        let (word, bit) = (keyword.0 as usize / 64, keyword.0 % 64);
        self.bits.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Adds every keyword of `other` to this set (word-wise union).
    pub fn union_with(&mut self, other: &KeywordSet) {
        if other.bits.len() > self.bits.len() {
            self.bits.resize(other.bits.len(), 0);
        }
        for (dst, &src) in self.bits.iter_mut().zip(&other.bits) {
            *dst |= src;
        }
    }

    /// Number of keywords in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Empties the set, keeping the allocation (scratch reuse).
    pub fn clear(&mut self) {
        self.bits.clear();
    }

    /// Whether both sets hold exactly the same keywords. Trailing zero
    /// words are ignored, so sets that grew to different capacities still
    /// compare equal by content.
    #[must_use]
    pub fn same_keywords(&self, other: &KeywordSet) -> bool {
        let (short, long) = if self.bits.len() <= other.bits.len() {
            (&self.bits, &other.bits)
        } else {
            (&other.bits, &self.bits)
        };
        short
            .iter()
            .zip(long.iter())
            .all(|(&a, &b)| a == b)
            && long[short.len()..].iter().all(|&w| w == 0)
    }

    /// Heap bytes held by the bitmap.
    #[must_use]
    pub fn state_bytes(&self) -> usize {
        self.bits.capacity() * std::mem::size_of::<u64>()
    }
}

/// Runs one RTSR weight exchange between connected `a` and `b`, crediting
/// `connected_secs` of contact time: decay both tables (an interest shared
/// by a currently-connected device is frozen, per the `shared_*` sets),
/// swap the decayed tables, grow both.
///
/// # Panics
///
/// Panics if `a` or `b` index outside `tables`.
#[allow(clippy::too_many_arguments)] // the Algorithm 1+2 parameter list
pub fn rtsr_exchange(
    tables: &mut [InterestTable],
    a: NodeId,
    b: NodeId,
    connected_secs: f64,
    params: &ChitChatParams,
    now: SimTime,
    shared_a: &KeywordSet,
    shared_b: &KeywordSet,
) {
    tables[a.index()].decay(now, params, |k| shared_a.contains(k));
    tables[b.index()].decay(now, params, |k| shared_b.contains(k));
    let (left, right) = tables.split_at_mut(a.index().max(b.index()));
    let (ta, tb) = if a < b {
        (&mut left[a.index()], &mut right[0])
    } else {
        (&mut right[0], &mut left[b.index()])
    };
    // Steady state (no new keyword crossing the transient floor in either
    // direction) grows both tables in place with no merge vectors at all;
    // only a genuine transient acquisition takes the buffered path below.
    if InterestTable::grow_mutual_in_place(ta, tb, connected_secs, params, now) {
        return;
    }
    // Both grows read the other side's *pre-growth* entries: the merge
    // walks write into scratch vectors and commit only afterwards, so no
    // snapshot clone is needed (the clone plus the per-grow allocation
    // used to be a fifth of the settlement-tick profile). The scratch is
    // thread-local, cleared on every use — pure buffer reuse, invisible
    // to determinism and snapshots.
    GROW_SCRATCH.with(|scratch| {
        let (buf_a, buf_b) = &mut *scratch.borrow_mut();
        let grew_a = ta.grow_into(tb.entries_slice(), connected_secs, params, now, buf_a);
        let grew_b = tb.grow_into(ta.entries_slice(), connected_secs, params, now, buf_b);
        if grew_a {
            ta.commit_entries(buf_a);
        }
        if grew_b {
            tb.commit_entries(buf_b);
        }
    });
}

/// One side's reusable merge buffer for [`rtsr_exchange`]'s grows.
type GrowBuf = Vec<InterestRow>;

thread_local! {
    /// Reusable merge buffers for [`rtsr_exchange`]'s two grows.
    static GROW_SCRATCH: RefCell<(GrowBuf, GrowBuf)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// The union of keywords held by `peers`' tables — the "a connected device
/// shares this interest" test of Algorithm 1.
///
/// Each table maintains its own keyword bitmap, so the union is a handful
/// of word ORs per peer rather than a walk over every entry — this call
/// runs twice per due pair every settlement tick and used to dominate the
/// exchange profile at 1k nodes.
#[must_use]
pub fn shared_keywords(tables: &[InterestTable], peers: &[NodeId]) -> KeywordSet {
    let mut set = KeywordSet::new();
    shared_keywords_into(tables, peers, &mut set);
    set
}

/// [`shared_keywords`] into a caller-owned set (cleared first), so the
/// per-due-pair call sites stop allocating two bitmaps per settlement
/// service.
pub fn shared_keywords_into(tables: &[InterestTable], peers: &[NodeId], out: &mut KeywordSet) {
    out.clear();
    for &peer in peers {
        out.union_with(tables[peer.index()].keywords());
    }
}

/// Scans a `pair → last-serviced-at` map for pairs due another round:
/// returns `(pair, credited_secs)` sorted by pair, where `credited_secs`
/// is the exact span since the pair was last serviced (so repeated rounds
/// during one contact credit the contact time exactly once). The caller
/// updates the map after servicing.
#[must_use]
pub fn due_pairs<S: std::hash::BuildHasher>(
    last_serviced: &HashMap<(NodeId, NodeId), SimTime, S>,
    now: SimTime,
    interval_secs: f64,
) -> Vec<((NodeId, NodeId), f64)> {
    let mut due = Vec::new();
    due_pairs_into(last_serviced, now, interval_secs, &mut due);
    due
}

/// [`due_pairs`] writing into a caller-provided scratch vector, so call
/// sites that scan every settlement tick stop paying the allocator for a
/// fresh sorted vector each time. `out` is cleared first.
pub fn due_pairs_into<S: std::hash::BuildHasher>(
    last_serviced: &HashMap<(NodeId, NodeId), SimTime, S>,
    now: SimTime,
    interval_secs: f64,
    out: &mut Vec<((NodeId, NodeId), f64)>,
) {
    out.clear();
    out.extend(last_serviced.iter().filter_map(|(&pair, &t)| {
        let elapsed = now.duration_since(t).as_secs();
        (elapsed >= interval_secs).then_some((pair, elapsed))
    }));
    out.sort_unstable_by_key(|(pair, _)| *pair);
}

/// A watched pair's wheel slot: when it was last serviced and the absolute
/// step its current bucket entry is scheduled for (bucket entries are
/// lazily deleted, so a popped entry is live only if the slot agrees).
#[derive(Debug, Clone, Copy)]
struct PairSlot {
    last_serviced: SimTime,
    due_step: u64,
}

/// An incremental due-pair scheduler: a bucketed timing wheel keyed by
/// next-due step, replacing the per-tick full scan of [`due_pairs`] with
/// work proportional to the pairs actually due.
///
/// Determinism argument (see DESIGN.md §16): the kernel clock accumulates
/// `now += dt`, so the exact step at which `now − last ≥ interval` first
/// holds cannot be computed analytically without repeating the float
/// accumulation. The wheel therefore schedules *conservatively early* —
/// `service_step + max(1, ⌊interval/dt⌋)` — and re-validates the exact
/// legacy predicate on every pop, pushing not-yet-due pairs one bucket
/// forward. A pair is emitted at exactly the first step where the legacy
/// predicate holds (scheduling is never late, and from the scheduled step
/// on the pair is re-checked every step), with the same credited span and
/// the same sorted emission order, so traces stay byte-identical to the
/// full scan. Stale bucket entries from serviced or closed pairs are
/// dropped lazily when popped (`PairSlot::due_step` no longer matches).
///
/// The wheel is derived state: snapshots carry only the
/// `pair → last-serviced` map (the same wire shape as before the wheel
/// existed), and [`ExchangeWheel::restore`] marks the schedule for lazy
/// rebuild on the next [`ExchangeWheel::drain_due_into`].
#[derive(Debug, Default)]
pub struct ExchangeWheel {
    slots: FxHashMap<(NodeId, NodeId), PairSlot>,
    /// Ring of buckets, indexed by `due_step % buckets.len()`. Sized to
    /// `interval_steps + 2` so a pair scheduled the full interval ahead
    /// never aliases the bucket currently being drained.
    buckets: Vec<Vec<(NodeId, NodeId)>>,
    /// Steps per exchange interval (`max(1, ⌊interval/dt⌋)`); 0 until the
    /// first call that knows the kernel step length.
    interval_steps: u64,
    /// Pairs inserted before the step length is known (or awaiting a
    /// post-restore rebuild) — scheduled on the next drain.
    unscheduled: Vec<(NodeId, NodeId)>,
}

impl ExchangeWheel {
    /// Creates an empty wheel.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of watched (open) pairs.
    #[must_use]
    pub fn watched_pairs(&self) -> usize {
        self.slots.len()
    }

    /// Total bucket entries, including stale ones awaiting lazy deletion —
    /// the schedule's memory occupancy, exported as a gauge.
    #[must_use]
    pub fn bucket_occupancy(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum::<usize>() + self.unscheduled.len()
    }

    /// Whether `pair` is watched.
    #[must_use]
    pub fn contains(&self, pair: (NodeId, NodeId)) -> bool {
        self.slots.contains_key(&pair)
    }

    /// When `pair` was last serviced, if watched.
    #[must_use]
    pub fn last_serviced(&self, pair: (NodeId, NodeId)) -> Option<SimTime> {
        self.slots.get(&pair).map(|s| s.last_serviced)
    }

    /// Iterates `(pair, last_serviced)` in arbitrary order (callers that
    /// serialize must sort, exactly as with the map this replaced).
    pub fn iter(&self) -> impl Iterator<Item = ((NodeId, NodeId), SimTime)> + '_ {
        self.slots.iter().map(|(&p, s)| (p, s.last_serviced))
    }

    /// Records that `pair` was serviced at `now` during `step` and
    /// schedules its next due check. Called on contact-up and after each
    /// settlement service; `step` is the kernel step counter.
    pub fn note_serviced(&mut self, pair: (NodeId, NodeId), now: SimTime, step: u64) {
        let due_step = if self.interval_steps == 0 {
            // Step length not seen yet (contact-up before the first
            // settlement drain): park the pair; the first drain schedules
            // it properly.
            self.unscheduled.push(pair);
            u64::MAX
        } else {
            let due = step + self.interval_steps;
            self.push_bucket(pair, due);
            due
        };
        self.slots.insert(
            pair,
            PairSlot {
                last_serviced: now,
                due_step,
            },
        );
    }

    /// Stops watching `pair` (contact closed). Its bucket entry is dropped
    /// lazily when popped.
    pub fn remove(&mut self, pair: (NodeId, NodeId)) {
        self.slots.remove(&pair);
    }

    /// Replaces the watched set with `pair → last-serviced` entries from a
    /// snapshot. Scheduling is deferred to the next
    /// [`Self::drain_due_into`] (the restore path does not know the kernel
    /// clock); the wheel is rebuilt as derived state, so the snapshot wire
    /// format is unchanged from the full-scan era.
    pub fn restore(&mut self, entries: impl IntoIterator<Item = ((NodeId, NodeId), SimTime)>) {
        self.slots.clear();
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.unscheduled.clear();
        for (pair, last_serviced) in entries {
            self.slots.insert(
                pair,
                PairSlot {
                    last_serviced,
                    due_step: u64::MAX,
                },
            );
            self.unscheduled.push(pair);
        }
    }

    fn push_bucket(&mut self, pair: (NodeId, NodeId), due_step: u64) {
        let len = self.buckets.len() as u64;
        self.buckets[(due_step % len) as usize].push(pair);
    }

    /// Lazily sizes the ring once the step length is known and schedules
    /// any parked pairs relative to `(now, step)`.
    fn ensure_scheduled(&mut self, now: SimTime, step: u64, interval_secs: f64, step_secs: f64) {
        if self.interval_steps == 0 {
            let steps = if step_secs > 0.0 {
                (interval_secs / step_secs).floor() as u64
            } else {
                1
            };
            self.interval_steps = steps.max(1);
            self.buckets
                .resize_with(self.interval_steps as usize + 2, Vec::new);
        }
        if self.unscheduled.is_empty() {
            return;
        }
        let parked = std::mem::take(&mut self.unscheduled);
        for pair in parked {
            let Some(slot) = self.slots.get_mut(&pair) else {
                continue; // closed while parked
            };
            if slot.due_step != u64::MAX {
                continue; // rescheduled while parked (reopened contact)
            }
            // Conservative-early: schedule at the remaining whole steps of
            // the interval (never later than the legacy predicate can
            // first hold), clamped into the ring.
            let elapsed = now.duration_since(slot.last_serviced).as_secs();
            let remaining = interval_secs - elapsed;
            let wait = if step_secs > 0.0 && remaining > 0.0 {
                ((remaining / step_secs).floor() as u64).min(self.interval_steps)
            } else {
                0
            };
            slot.due_step = step + wait;
            let due = slot.due_step;
            self.push_bucket(pair, due);
        }
    }

    /// Pops every pair due at `(now, step)` into `out` (cleared first) as
    /// `(pair, credited_secs)` sorted by pair — the same contract as
    /// [`due_pairs`] over an equal watched set. Pairs whose conservative
    /// schedule fired early are re-checked next step. The caller services
    /// each emitted pair and calls [`Self::note_serviced`].
    pub fn drain_due_into(
        &mut self,
        now: SimTime,
        step: u64,
        interval_secs: f64,
        step_secs: f64,
        out: &mut Vec<((NodeId, NodeId), f64)>,
    ) {
        out.clear();
        self.ensure_scheduled(now, step, interval_secs, step_secs);
        let len = self.buckets.len() as u64;
        let bucket = (step % len) as usize;
        let next_bucket = ((step + 1) % len) as usize;
        let mut popped = std::mem::take(&mut self.buckets[bucket]);
        for pair in popped.drain(..) {
            let Some(slot) = self.slots.get_mut(&pair) else {
                continue; // closed: lazy delete
            };
            if slot.due_step != step {
                continue; // stale entry (re-serviced or reopened): lazy delete
            }
            let elapsed = now.duration_since(slot.last_serviced).as_secs();
            if elapsed >= interval_secs {
                out.push((pair, elapsed));
            } else {
                // Scheduled early (float accumulation): check again next
                // step, exactly as the full scan would.
                slot.due_step = step + 1;
                self.buckets[next_bucket].push(pair);
            }
        }
        // Hand the drained bucket's storage back for reuse.
        let slot = &mut self.buckets[bucket];
        if slot.is_empty() {
            *slot = popped;
        }
        out.sort_unstable_by_key(|(pair, _)| *pair);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn exchange_grows_both_sides_and_acquires_transients() {
        let params = ChitChatParams::paper_default();
        let mut tables = vec![InterestTable::new(), InterestTable::new()];
        tables[0].subscribe(Keyword(1), &params, t(0.0));
        tables[1].subscribe(Keyword(2), &params, t(0.0));
        let empty = KeywordSet::new();
        rtsr_exchange(
            &mut tables,
            NodeId(0),
            NodeId(1),
            60.0,
            &params,
            t(60.0),
            &empty,
            &empty,
        );
        assert!(tables[0].weight(Keyword(2)) > 0.0, "n0 acquired kw2");
        assert!(tables[1].weight(Keyword(1)) > 0.0, "n1 acquired kw1");
        assert!(!tables[0].is_direct(Keyword(2)));
    }

    #[test]
    fn shared_interests_are_frozen_during_exchange() {
        let params = ChitChatParams::paper_default();
        let mut tables = vec![InterestTable::new(), InterestTable::new()];
        tables[0].subscribe(Keyword(1), &params, t(0.0));
        // Grow n0's kw1 above baseline, then exchange much later with the
        // keyword marked shared: no decay may have pulled it down.
        let mut peer = InterestTable::new();
        peer.subscribe(Keyword(1), &params, t(0.0));
        tables[0].grow(&peer, 120.0, &params, t(0.0));
        let before = tables[0].weight(Keyword(1));
        let mut shared = KeywordSet::new();
        shared.insert(Keyword(1));
        let empty = KeywordSet::new();
        rtsr_exchange(
            &mut tables,
            NodeId(0),
            NodeId(1),
            1.0,
            &params,
            t(5_000.0),
            &shared,
            &empty,
        );
        assert!(
            tables[0].weight(Keyword(1)) >= before,
            "shared interest did not decay"
        );
    }

    #[test]
    fn shared_keywords_unions_peer_tables() {
        let params = ChitChatParams::paper_default();
        let mut tables = vec![
            InterestTable::new(),
            InterestTable::new(),
            InterestTable::new(),
        ];
        tables[1].subscribe(Keyword(1), &params, t(0.0));
        tables[2].subscribe(Keyword(2), &params, t(0.0));
        let set = shared_keywords(&tables, &[NodeId(1), NodeId(2)]);
        assert!(set.contains(Keyword(1)) && set.contains(Keyword(2)));
        assert_eq!(set.len(), 2);
        assert!(shared_keywords(&tables, &[]).is_empty());
    }

    #[test]
    fn due_pairs_credits_exact_elapsed_and_sorts() {
        let mut last = HashMap::new();
        last.insert((NodeId(3), NodeId(5)), t(10.0));
        last.insert((NodeId(0), NodeId(1)), t(40.0));
        last.insert((NodeId(2), NodeId(4)), t(95.0)); // not due at 100/30s
        let due = due_pairs(&last, t(100.0), 30.0);
        assert_eq!(
            due,
            vec![
                ((NodeId(0), NodeId(1)), 60.0),
                ((NodeId(3), NodeId(5)), 90.0)
            ]
        );
    }

    #[test]
    fn nothing_due_before_the_interval() {
        let mut last = HashMap::new();
        last.insert((NodeId(0), NodeId(1)), t(90.0));
        assert!(due_pairs(&last, t(100.0), 30.0).is_empty());
    }
}
