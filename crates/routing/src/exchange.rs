//! Shared pairwise-exchange plumbing.
//!
//! Three routers run the same two rituals on long-lived contacts: the RTSR
//! weight exchange (decay → swap → grow, Algorithms 1–2) and a periodic
//! "which pairs are due again" scan with exact once-per-span time
//! crediting. Keeping one implementation here means a semantics fix to
//! either ritual reaches ChitChat, the incentive protocol, and CEDO at
//! once — the incentive arm of every experiment must run the *same*
//! ChitChat substrate as the baseline arm.

use std::cell::RefCell;
use std::collections::HashMap;

use dtn_sim::message::Keyword;
use dtn_sim::time::SimTime;
use dtn_sim::world::NodeId;

use crate::interests::{ChitChatParams, InterestEntry, InterestTable};

/// A set of keywords as a bitmap over the keyword id space.
///
/// Keyword ids are dense small integers drawn from the scenario's pool
/// (Table 5.1: 200), so membership — the only operation the exchange
/// ritual needs — is one bit test instead of a hash probe. Building the
/// union of several peers' tables touches a handful of words; the hashed
/// set this replaces dominated the settlement-tick profile.
#[derive(Debug, Clone, Default)]
pub struct KeywordSet {
    bits: Vec<u64>,
}

impl KeywordSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `keyword` to the set.
    pub fn insert(&mut self, keyword: Keyword) {
        let (word, bit) = (keyword.0 as usize / 64, keyword.0 % 64);
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        self.bits[word] |= 1 << bit;
    }

    /// Removes `keyword` from the set.
    pub fn remove(&mut self, keyword: Keyword) {
        let (word, bit) = (keyword.0 as usize / 64, keyword.0 % 64);
        if let Some(w) = self.bits.get_mut(word) {
            *w &= !(1 << bit);
        }
    }

    /// Whether `keyword` is in the set.
    #[must_use]
    pub fn contains(&self, keyword: Keyword) -> bool {
        let (word, bit) = (keyword.0 as usize / 64, keyword.0 % 64);
        self.bits.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Adds every keyword of `other` to this set (word-wise union).
    pub fn union_with(&mut self, other: &KeywordSet) {
        if other.bits.len() > self.bits.len() {
            self.bits.resize(other.bits.len(), 0);
        }
        for (dst, &src) in self.bits.iter_mut().zip(&other.bits) {
            *dst |= src;
        }
    }

    /// Number of keywords in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }
}

/// Runs one RTSR weight exchange between connected `a` and `b`, crediting
/// `connected_secs` of contact time: decay both tables (an interest shared
/// by a currently-connected device is frozen, per the `shared_*` sets),
/// swap the decayed tables, grow both.
///
/// # Panics
///
/// Panics if `a` or `b` index outside `tables`.
#[allow(clippy::too_many_arguments)] // the Algorithm 1+2 parameter list
pub fn rtsr_exchange(
    tables: &mut [InterestTable],
    a: NodeId,
    b: NodeId,
    connected_secs: f64,
    params: &ChitChatParams,
    now: SimTime,
    shared_a: &KeywordSet,
    shared_b: &KeywordSet,
) {
    tables[a.index()].decay(now, params, |k| shared_a.contains(k));
    tables[b.index()].decay(now, params, |k| shared_b.contains(k));
    let (left, right) = tables.split_at_mut(a.index().max(b.index()));
    let (ta, tb) = if a < b {
        (&mut left[a.index()], &mut right[0])
    } else {
        (&mut right[0], &mut left[b.index()])
    };
    // Steady state (no new keyword crossing the transient floor in either
    // direction) grows both tables in place with no merge vectors at all;
    // only a genuine transient acquisition takes the buffered path below.
    if InterestTable::grow_mutual_in_place(ta, tb, connected_secs, params, now) {
        return;
    }
    // Both grows read the other side's *pre-growth* entries: the merge
    // walks write into scratch vectors and commit only afterwards, so no
    // snapshot clone is needed (the clone plus the per-grow allocation
    // used to be a fifth of the settlement-tick profile). The scratch is
    // thread-local, cleared on every use — pure buffer reuse, invisible
    // to determinism and snapshots.
    GROW_SCRATCH.with(|scratch| {
        let (buf_a, buf_b) = &mut *scratch.borrow_mut();
        let grew_a = ta.grow_into(tb.entries_slice(), connected_secs, params, now, buf_a);
        let grew_b = tb.grow_into(ta.entries_slice(), connected_secs, params, now, buf_b);
        if grew_a {
            ta.commit_entries(buf_a);
        }
        if grew_b {
            tb.commit_entries(buf_b);
        }
    });
}

/// One side's reusable merge buffer for [`rtsr_exchange`]'s grows.
type GrowBuf = Vec<(Keyword, InterestEntry)>;

thread_local! {
    /// Reusable merge buffers for [`rtsr_exchange`]'s two grows.
    static GROW_SCRATCH: RefCell<(GrowBuf, GrowBuf)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// The union of keywords held by `peers`' tables — the "a connected device
/// shares this interest" test of Algorithm 1.
///
/// Each table maintains its own keyword bitmap, so the union is a handful
/// of word ORs per peer rather than a walk over every entry — this call
/// runs twice per due pair every settlement tick and used to dominate the
/// exchange profile at 1k nodes.
#[must_use]
pub fn shared_keywords(tables: &[InterestTable], peers: &[NodeId]) -> KeywordSet {
    let mut set = KeywordSet::new();
    for &peer in peers {
        set.union_with(tables[peer.index()].keywords());
    }
    set
}

/// Scans a `pair → last-serviced-at` map for pairs due another round:
/// returns `(pair, credited_secs)` sorted by pair, where `credited_secs`
/// is the exact span since the pair was last serviced (so repeated rounds
/// during one contact credit the contact time exactly once). The caller
/// updates the map after servicing.
#[must_use]
pub fn due_pairs<S: std::hash::BuildHasher>(
    last_serviced: &HashMap<(NodeId, NodeId), SimTime, S>,
    now: SimTime,
    interval_secs: f64,
) -> Vec<((NodeId, NodeId), f64)> {
    let mut due: Vec<((NodeId, NodeId), f64)> = last_serviced
        .iter()
        .filter_map(|(&pair, &t)| {
            let elapsed = now.duration_since(t).as_secs();
            (elapsed >= interval_secs).then_some((pair, elapsed))
        })
        .collect();
    due.sort_unstable_by_key(|(pair, _)| *pair);
    due
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn exchange_grows_both_sides_and_acquires_transients() {
        let params = ChitChatParams::paper_default();
        let mut tables = vec![InterestTable::new(), InterestTable::new()];
        tables[0].subscribe(Keyword(1), &params, t(0.0));
        tables[1].subscribe(Keyword(2), &params, t(0.0));
        let empty = KeywordSet::new();
        rtsr_exchange(
            &mut tables,
            NodeId(0),
            NodeId(1),
            60.0,
            &params,
            t(60.0),
            &empty,
            &empty,
        );
        assert!(tables[0].weight(Keyword(2)) > 0.0, "n0 acquired kw2");
        assert!(tables[1].weight(Keyword(1)) > 0.0, "n1 acquired kw1");
        assert!(!tables[0].is_direct(Keyword(2)));
    }

    #[test]
    fn shared_interests_are_frozen_during_exchange() {
        let params = ChitChatParams::paper_default();
        let mut tables = vec![InterestTable::new(), InterestTable::new()];
        tables[0].subscribe(Keyword(1), &params, t(0.0));
        // Grow n0's kw1 above baseline, then exchange much later with the
        // keyword marked shared: no decay may have pulled it down.
        let mut peer = InterestTable::new();
        peer.subscribe(Keyword(1), &params, t(0.0));
        tables[0].grow(&peer, 120.0, &params, t(0.0));
        let before = tables[0].weight(Keyword(1));
        let mut shared = KeywordSet::new();
        shared.insert(Keyword(1));
        let empty = KeywordSet::new();
        rtsr_exchange(
            &mut tables,
            NodeId(0),
            NodeId(1),
            1.0,
            &params,
            t(5_000.0),
            &shared,
            &empty,
        );
        assert!(
            tables[0].weight(Keyword(1)) >= before,
            "shared interest did not decay"
        );
    }

    #[test]
    fn shared_keywords_unions_peer_tables() {
        let params = ChitChatParams::paper_default();
        let mut tables = vec![
            InterestTable::new(),
            InterestTable::new(),
            InterestTable::new(),
        ];
        tables[1].subscribe(Keyword(1), &params, t(0.0));
        tables[2].subscribe(Keyword(2), &params, t(0.0));
        let set = shared_keywords(&tables, &[NodeId(1), NodeId(2)]);
        assert!(set.contains(Keyword(1)) && set.contains(Keyword(2)));
        assert_eq!(set.len(), 2);
        assert!(shared_keywords(&tables, &[]).is_empty());
    }

    #[test]
    fn due_pairs_credits_exact_elapsed_and_sorts() {
        let mut last = HashMap::new();
        last.insert((NodeId(3), NodeId(5)), t(10.0));
        last.insert((NodeId(0), NodeId(1)), t(40.0));
        last.insert((NodeId(2), NodeId(4)), t(95.0)); // not due at 100/30s
        let due = due_pairs(&last, t(100.0), 30.0);
        assert_eq!(
            due,
            vec![
                ((NodeId(0), NodeId(1)), 60.0),
                ((NodeId(3), NodeId(5)), 90.0)
            ]
        );
    }

    #[test]
    fn nothing_due_before_the_interval() {
        let mut last = HashMap::new();
        last.insert((NodeId(0), NodeId(1)), t(90.0));
        assert!(due_pairs(&last, t(100.0), 30.0).is_empty());
    }
}
