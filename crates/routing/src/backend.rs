//! Pluggable routing backends for the incentive overlay.
//!
//! The paper's mechanism (credits, reputation, enrichment) and its routing
//! substrate (ChitChat's RTSR weights and `S_v > S_u` forwarding rule) are
//! separable: the mechanism only ever asks the substrate a handful of
//! questions — *is this node a destination?*, *is the peer a better
//! carrier?*, *how interested is the receiver?* — and feeds it a handful of
//! lifecycle events. [`RouterBackend`] is that seam. `dtn-core`'s
//! `DcimRouter` is generic over it, so the same overlay (participation
//! gating, token settlement, DRM, enrichment, invariant audits) composes
//! with Epidemic, Direct Delivery, Spray-and-Wait, Two-Hop and PRoPHET
//! exactly as it does with ChitChat.
//!
//! The contract that keeps the refactor honest: with [`ChitChatBackend`]
//! the generic router must reproduce the pre-trait `DcimRouter`
//! byte-for-byte (pinned by the golden-equivalence suite in
//! `tests/tests/golden_trace.rs`). Every hook here is therefore a verbatim
//! transplant of either the old hard-wired ChitChat calls or a
//! `baselines.rs` router's forwarding rule.

use std::collections::HashMap;

use dtn_sim::message::{Keyword, MessageId};
use dtn_sim::time::SimTime;
use dtn_sim::world::NodeId;
use serde::{Deserialize, Serialize};

use crate::directory::InterestDirectory;
use crate::exchange::{rtsr_exchange, shared_keywords_into, KeywordSet};
use crate::interests::{ChitChatParams, InterestTable};
use crate::prophet::{Predictability, ProphetParams};

/// The routing-substrate interface the incentive overlay composes with.
///
/// Query methods classify a potential hand-off; lifecycle hooks let
/// stateful backends (Spray tickets, PRoPHET predictabilities, ChitChat
/// weights) track the run. All hooks are invoked by the overlay *after*
/// its participation gate — a closed (selfish) medium suppresses the
/// contact for the backend too, exactly as it does for the mechanism.
pub trait RouterBackend: std::fmt::Debug + Send {
    /// Number of nodes this backend was built for.
    fn node_count(&self) -> usize;

    /// Human-readable backend name (for logs and tables).
    fn label(&self) -> &'static str;

    /// Bytes of memory the backend's per-node routing state holds (struct
    /// plus heap capacity), for the `arena.interest_bytes` gauge. Backends
    /// without a meaningful measure may report 0 (the default).
    fn state_bytes(&self) -> usize {
        0
    }

    /// Registers a direct interest of `node` (the `Subscribe` operator).
    fn subscribe(&mut self, node: NodeId, keyword: Keyword, now: SimTime);

    /// Whether `node` is a destination for a message tagged `keywords`.
    fn is_destination(&self, node: NodeId, keywords: &[Keyword]) -> bool;

    /// `S_v`: `node`'s interest mass over `keywords` — feeds the software
    /// promise quote (Algorithm 3) when the overlay is on.
    fn interest_sum(&self, node: NodeId, keywords: &[Keyword]) -> f64;

    /// Mean per-keyword interest of `node` — feeds the relay-prepayment
    /// threshold when the overlay is on.
    fn mean_weight(&self, node: NodeId, keywords: &[Keyword]) -> f64;

    /// Whether `holder` may offer a copy originated by `source` at all
    /// (Direct Delivery restricts offering to the source itself).
    fn may_offer(&self, holder: NodeId, source: NodeId) -> bool {
        let _ = (holder, source);
        true
    }

    /// The backend's relay rule: whether a copy held by `from` should be
    /// handed to non-destination `to`.
    fn accepts_relay(
        &self,
        from: NodeId,
        to: NodeId,
        id: MessageId,
        source: NodeId,
        keywords: &[Keyword],
    ) -> bool;

    /// A contact between `a` and `b` opened (PRoPHET ages, bumps and
    /// transits its predictabilities here).
    fn on_contact_open(&mut self, now: SimTime, a: NodeId, b: NodeId) {
        let _ = (now, a, b);
    }

    /// Periodic pairwise state exchange while a contact is up (ChitChat's
    /// RTSR ritual). `peers_a`/`peers_b` are the endpoints' *open* peer
    /// sets — closed media do not count as connected devices.
    fn exchange(
        &mut self,
        now: SimTime,
        a: NodeId,
        b: NodeId,
        connected_secs: f64,
        peers_a: &[NodeId],
        peers_b: &[NodeId],
    ) {
        let _ = (now, a, b, connected_secs, peers_a, peers_b);
    }

    /// `node` created `id` (Spray-and-Wait endows its ticket budget).
    fn on_message_created(&mut self, node: NodeId, id: MessageId) {
        let _ = (node, id);
    }

    /// A send of `id` from `from` to `to` was initiated; `dest` is whether
    /// the receiver was classified as a destination (Spray splits its
    /// tickets here, held in escrow until the transfer resolves).
    fn on_send_initiated(&mut self, from: NodeId, to: NodeId, id: MessageId, dest: bool) {
        let _ = (from, to, id, dest);
    }

    /// The transfer of `id` from `from` completed and `to` stored the copy
    /// (Spray releases the escrowed ticket grant to the receiver).
    fn on_stored(&mut self, from: NodeId, to: NodeId, id: MessageId) {
        let _ = (from, to, id);
    }

    /// A send of `id` from `from` to `to` failed — aborted, rejected by
    /// the receiver's buffer, or voided by the overlay (Spray refunds the
    /// escrowed grant to the sender).
    fn on_send_failed(&mut self, from: NodeId, to: NodeId, id: MessageId) {
        let _ = (from, to, id);
    }

    /// `node` dropped `messages` (TTL expiry or buffer eviction) — any
    /// per-copy backend state dies with them.
    fn on_removed(&mut self, node: NodeId, messages: &[MessageId]) {
        let _ = (node, messages);
    }

    /// The backend's dynamic routing state as an opaque document, for a
    /// whole-world snapshot. Backends whose only state is the subscription
    /// directory (rebuilt from the scenario on restore) return
    /// [`serde::Value::Null`] (the default); backends whose state evolves
    /// during the run (ChitChat weights, Spray tickets, PRoPHET
    /// predictabilities) must override both this and
    /// [`RouterBackend::restore_state`].
    fn snapshot_state(&self) -> serde::Value {
        serde::Value::Null
    }

    /// Restores the state captured by [`RouterBackend::snapshot_state`]
    /// into a freshly built backend of the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch when `state` is not a
    /// document this backend produces.
    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        if matches!(state, serde::Value::Null) {
            Ok(())
        } else {
            Err(format!(
                "snapshot carries routing state but the {} backend keeps none",
                self.label()
            ))
        }
    }
}

impl RouterBackend for Box<dyn RouterBackend> {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }

    fn label(&self) -> &'static str {
        (**self).label()
    }

    fn subscribe(&mut self, node: NodeId, keyword: Keyword, now: SimTime) {
        (**self).subscribe(node, keyword, now);
    }

    fn is_destination(&self, node: NodeId, keywords: &[Keyword]) -> bool {
        (**self).is_destination(node, keywords)
    }

    fn interest_sum(&self, node: NodeId, keywords: &[Keyword]) -> f64 {
        (**self).interest_sum(node, keywords)
    }

    fn mean_weight(&self, node: NodeId, keywords: &[Keyword]) -> f64 {
        (**self).mean_weight(node, keywords)
    }

    fn may_offer(&self, holder: NodeId, source: NodeId) -> bool {
        (**self).may_offer(holder, source)
    }

    fn accepts_relay(
        &self,
        from: NodeId,
        to: NodeId,
        id: MessageId,
        source: NodeId,
        keywords: &[Keyword],
    ) -> bool {
        (**self).accepts_relay(from, to, id, source, keywords)
    }

    fn on_contact_open(&mut self, now: SimTime, a: NodeId, b: NodeId) {
        (**self).on_contact_open(now, a, b);
    }

    fn exchange(
        &mut self,
        now: SimTime,
        a: NodeId,
        b: NodeId,
        connected_secs: f64,
        peers_a: &[NodeId],
        peers_b: &[NodeId],
    ) {
        (**self).exchange(now, a, b, connected_secs, peers_a, peers_b);
    }

    fn on_message_created(&mut self, node: NodeId, id: MessageId) {
        (**self).on_message_created(node, id);
    }

    fn on_send_initiated(&mut self, from: NodeId, to: NodeId, id: MessageId, dest: bool) {
        (**self).on_send_initiated(from, to, id, dest);
    }

    fn on_stored(&mut self, from: NodeId, to: NodeId, id: MessageId) {
        (**self).on_stored(from, to, id);
    }

    fn on_send_failed(&mut self, from: NodeId, to: NodeId, id: MessageId) {
        (**self).on_send_failed(from, to, id);
    }

    fn on_removed(&mut self, node: NodeId, messages: &[MessageId]) {
        (**self).on_removed(node, messages);
    }

    fn snapshot_state(&self) -> serde::Value {
        (**self).snapshot_state()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        (**self).restore_state(state)
    }
}

// ---------------------------------------------------------------------------
// ChitChat
// ---------------------------------------------------------------------------

/// The paper's substrate: RTSR interest tables with decay/growth exchange
/// and the `S_v > S_u` data-centric relay rule.
#[derive(Debug, Clone)]
pub struct ChitChatBackend {
    params: ChitChatParams,
    tables: Vec<InterestTable>,
    /// Reusable shared-keyword bitmaps for [`RouterBackend::exchange`] —
    /// two per due pair every settlement tick. Transient scratch: cleared
    /// on every use, absent from snapshots.
    shared_scratch: (KeywordSet, KeywordSet),
}

impl ChitChatBackend {
    /// Creates fresh interest tables for `node_count` nodes.
    #[must_use]
    pub fn new(node_count: usize, params: ChitChatParams) -> Self {
        ChitChatBackend {
            params,
            tables: vec![InterestTable::new(); node_count],
            shared_scratch: (KeywordSet::new(), KeywordSet::new()),
        }
    }

    /// `node`'s RTSR interest table.
    #[must_use]
    pub fn table(&self, node: NodeId) -> &InterestTable {
        &self.tables[node.index()]
    }
}

impl RouterBackend for ChitChatBackend {
    fn node_count(&self) -> usize {
        self.tables.len()
    }

    fn label(&self) -> &'static str {
        "ChitChat"
    }

    fn state_bytes(&self) -> usize {
        self.tables.iter().map(InterestTable::state_bytes).sum()
    }

    fn subscribe(&mut self, node: NodeId, keyword: Keyword, now: SimTime) {
        self.tables[node.index()].subscribe(keyword, &self.params, now);
    }

    fn is_destination(&self, node: NodeId, keywords: &[Keyword]) -> bool {
        self.tables[node.index()].is_destination_for(keywords)
    }

    fn interest_sum(&self, node: NodeId, keywords: &[Keyword]) -> f64 {
        self.tables[node.index()].sum_of_weights(keywords)
    }

    fn mean_weight(&self, node: NodeId, keywords: &[Keyword]) -> f64 {
        self.tables[node.index()].mean_weight(keywords)
    }

    fn accepts_relay(
        &self,
        from: NodeId,
        to: NodeId,
        _id: MessageId,
        _source: NodeId,
        keywords: &[Keyword],
    ) -> bool {
        let s_from = self.tables[from.index()].sum_of_weights(keywords);
        let s_to = self.tables[to.index()].sum_of_weights(keywords);
        s_to > s_from
    }

    fn exchange(
        &mut self,
        now: SimTime,
        a: NodeId,
        b: NodeId,
        connected_secs: f64,
        peers_a: &[NodeId],
        peers_b: &[NodeId],
    ) {
        let (shared_a, shared_b) = (&mut self.shared_scratch.0, &mut self.shared_scratch.1);
        shared_keywords_into(&self.tables, peers_a, shared_a);
        shared_keywords_into(&self.tables, peers_b, shared_b);
        rtsr_exchange(
            &mut self.tables,
            a,
            b,
            connected_secs,
            &self.params,
            now,
            shared_a,
            shared_b,
        );
    }

    fn snapshot_state(&self) -> serde::Value {
        self.tables.to_value()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        let tables = Vec::<InterestTable>::from_value(state)
            .map_err(|e| format!("ChitChat tables do not parse: {e}"))?;
        if tables.len() != self.tables.len() {
            return Err(format!(
                "snapshot has {} ChitChat tables for {} nodes",
                tables.len(),
                self.tables.len()
            ));
        }
        self.tables = tables;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Directory-based baselines
// ---------------------------------------------------------------------------

/// Matched-interest mass of `node` over `keywords` for the node-centric
/// baselines: the count of the node's direct interests among the tags.
fn directory_sum(dir: &InterestDirectory, node: NodeId, keywords: &[Keyword]) -> f64 {
    let set = dir.interests_of(node);
    keywords.iter().filter(|k| set.contains(k)).count() as f64
}

/// Mean matched interest per tag (relays match nothing — if they matched,
/// they would *be* destinations — so the prepayment threshold never fires
/// for directory backends).
fn directory_mean(dir: &InterestDirectory, node: NodeId, keywords: &[Keyword]) -> f64 {
    if keywords.is_empty() {
        return 0.0;
    }
    directory_sum(dir, node, keywords) / keywords.len() as f64
}

/// Epidemic flooding: every open peer is a welcome relay.
#[derive(Debug, Clone)]
pub struct EpidemicBackend {
    dir: InterestDirectory,
}

impl EpidemicBackend {
    /// Creates the backend for `node_count` nodes.
    #[must_use]
    pub fn new(node_count: usize) -> Self {
        EpidemicBackend {
            dir: InterestDirectory::new(node_count),
        }
    }
}

impl RouterBackend for EpidemicBackend {
    fn node_count(&self) -> usize {
        self.dir.node_count()
    }

    fn label(&self) -> &'static str {
        "Epidemic"
    }

    fn subscribe(&mut self, node: NodeId, keyword: Keyword, _now: SimTime) {
        self.dir.subscribe(node, [keyword]);
    }

    fn is_destination(&self, node: NodeId, keywords: &[Keyword]) -> bool {
        self.dir.is_destination(node, keywords)
    }

    fn interest_sum(&self, node: NodeId, keywords: &[Keyword]) -> f64 {
        directory_sum(&self.dir, node, keywords)
    }

    fn mean_weight(&self, node: NodeId, keywords: &[Keyword]) -> f64 {
        directory_mean(&self.dir, node, keywords)
    }

    fn accepts_relay(
        &self,
        _from: NodeId,
        _to: NodeId,
        _id: MessageId,
        _source: NodeId,
        _keywords: &[Keyword],
    ) -> bool {
        true
    }
}

/// Direct Delivery: only the source carries, only destinations receive.
#[derive(Debug, Clone)]
pub struct DirectBackend {
    dir: InterestDirectory,
}

impl DirectBackend {
    /// Creates the backend for `node_count` nodes.
    #[must_use]
    pub fn new(node_count: usize) -> Self {
        DirectBackend {
            dir: InterestDirectory::new(node_count),
        }
    }
}

impl RouterBackend for DirectBackend {
    fn node_count(&self) -> usize {
        self.dir.node_count()
    }

    fn label(&self) -> &'static str {
        "Direct Delivery"
    }

    fn subscribe(&mut self, node: NodeId, keyword: Keyword, _now: SimTime) {
        self.dir.subscribe(node, [keyword]);
    }

    fn is_destination(&self, node: NodeId, keywords: &[Keyword]) -> bool {
        self.dir.is_destination(node, keywords)
    }

    fn interest_sum(&self, node: NodeId, keywords: &[Keyword]) -> f64 {
        directory_sum(&self.dir, node, keywords)
    }

    fn mean_weight(&self, node: NodeId, keywords: &[Keyword]) -> f64 {
        directory_mean(&self.dir, node, keywords)
    }

    fn may_offer(&self, holder: NodeId, source: NodeId) -> bool {
        holder == source
    }

    fn accepts_relay(
        &self,
        _from: NodeId,
        _to: NodeId,
        _id: MessageId,
        _source: NodeId,
        _keywords: &[Keyword],
    ) -> bool {
        false
    }
}

/// Binary Spray-and-Wait: a fixed per-message ticket budget halves at each
/// relay hand-off; a single-ticket holder waits for the destination.
///
/// Grants are escrowed at send initiation and settle on the transfer
/// outcome, mirroring `baselines::SprayAndWaitRouter`'s pending-grant
/// bookkeeping so aborted or refused transfers refund the sender.
#[derive(Debug, Clone)]
pub struct SprayBackend {
    dir: InterestDirectory,
    copies: u32,
    tickets: HashMap<(NodeId, MessageId), u32>,
    pending_grants: HashMap<(NodeId, NodeId, MessageId), u32>,
}

impl SprayBackend {
    /// Creates the backend with `copies` initial tickets per message.
    ///
    /// # Panics
    ///
    /// Panics if `copies` is zero.
    #[must_use]
    pub fn new(node_count: usize, copies: u32) -> Self {
        assert!(copies > 0, "spray needs at least one ticket");
        SprayBackend {
            dir: InterestDirectory::new(node_count),
            copies,
            tickets: HashMap::new(),
            pending_grants: HashMap::new(),
        }
    }

    /// Tickets `node` currently holds for `id`.
    #[must_use]
    pub fn tickets(&self, node: NodeId, id: MessageId) -> u32 {
        self.tickets.get(&(node, id)).copied().unwrap_or(0)
    }
}

impl RouterBackend for SprayBackend {
    fn node_count(&self) -> usize {
        self.dir.node_count()
    }

    fn label(&self) -> &'static str {
        "Spray-and-Wait"
    }

    fn subscribe(&mut self, node: NodeId, keyword: Keyword, _now: SimTime) {
        self.dir.subscribe(node, [keyword]);
    }

    fn is_destination(&self, node: NodeId, keywords: &[Keyword]) -> bool {
        self.dir.is_destination(node, keywords)
    }

    fn interest_sum(&self, node: NodeId, keywords: &[Keyword]) -> f64 {
        directory_sum(&self.dir, node, keywords)
    }

    fn mean_weight(&self, node: NodeId, keywords: &[Keyword]) -> f64 {
        directory_mean(&self.dir, node, keywords)
    }

    fn accepts_relay(
        &self,
        from: NodeId,
        _to: NodeId,
        id: MessageId,
        _source: NodeId,
        _keywords: &[Keyword],
    ) -> bool {
        self.tickets(from, id) > 1
    }

    fn on_message_created(&mut self, node: NodeId, id: MessageId) {
        self.tickets.insert((node, id), self.copies);
    }

    fn on_send_initiated(&mut self, from: NodeId, to: NodeId, id: MessageId, dest: bool) {
        if dest {
            // Delivery costs no tickets.
            self.pending_grants.insert((from, to, id), 0);
            return;
        }
        let have = self.tickets(from, id);
        if have > 1 {
            let grant = have.div_ceil(2);
            self.tickets.insert((from, id), have - grant);
            self.pending_grants.insert((from, to, id), grant);
        }
    }

    fn on_stored(&mut self, from: NodeId, to: NodeId, id: MessageId) {
        if let Some(grant) = self.pending_grants.remove(&(from, to, id)) {
            if grant > 0 {
                *self.tickets.entry((to, id)).or_insert(0) += grant;
            }
        }
    }

    fn on_send_failed(&mut self, from: NodeId, to: NodeId, id: MessageId) {
        if let Some(grant) = self.pending_grants.remove(&(from, to, id)) {
            if grant > 0 {
                *self.tickets.entry((from, id)).or_insert(0) += grant;
            }
        }
    }

    fn on_removed(&mut self, node: NodeId, messages: &[MessageId]) {
        for &m in messages {
            self.tickets.remove(&(node, m));
        }
    }

    fn snapshot_state(&self) -> serde::Value {
        let mut tickets: Vec<(NodeId, MessageId, u32)> =
            self.tickets.iter().map(|(&(n, m), &t)| (n, m, t)).collect();
        tickets.sort_unstable_by_key(|&(n, m, _)| (n, m));
        let mut grants: Vec<(NodeId, NodeId, MessageId, u32)> = self
            .pending_grants
            .iter()
            .map(|(&(f, t, m), &g)| (f, t, m, g))
            .collect();
        grants.sort_unstable_by_key(|&(f, t, m, _)| (f, t, m));
        SprayState { tickets, grants }.to_value()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        let state = SprayState::from_value(state)
            .map_err(|e| format!("Spray ticket state does not parse: {e}"))?;
        self.tickets = state.tickets.iter().map(|&(n, m, t)| ((n, m), t)).collect();
        self.pending_grants = state
            .grants
            .iter()
            .map(|&(f, t, m, g)| ((f, t, m), g))
            .collect();
        Ok(())
    }
}

/// Serialized form of [`SprayBackend`]'s ticket economy (key-sorted).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SprayState {
    tickets: Vec<(NodeId, MessageId, u32)>,
    grants: Vec<(NodeId, NodeId, MessageId, u32)>,
}

/// Two-Hop Relay: the source sprays to every peer; relays hold their copy
/// until they meet a destination.
#[derive(Debug, Clone)]
pub struct TwoHopBackend {
    dir: InterestDirectory,
}

impl TwoHopBackend {
    /// Creates the backend for `node_count` nodes.
    #[must_use]
    pub fn new(node_count: usize) -> Self {
        TwoHopBackend {
            dir: InterestDirectory::new(node_count),
        }
    }
}

impl RouterBackend for TwoHopBackend {
    fn node_count(&self) -> usize {
        self.dir.node_count()
    }

    fn label(&self) -> &'static str {
        "Two-Hop Relay"
    }

    fn subscribe(&mut self, node: NodeId, keyword: Keyword, _now: SimTime) {
        self.dir.subscribe(node, [keyword]);
    }

    fn is_destination(&self, node: NodeId, keywords: &[Keyword]) -> bool {
        self.dir.is_destination(node, keywords)
    }

    fn interest_sum(&self, node: NodeId, keywords: &[Keyword]) -> f64 {
        directory_sum(&self.dir, node, keywords)
    }

    fn mean_weight(&self, node: NodeId, keywords: &[Keyword]) -> f64 {
        directory_mean(&self.dir, node, keywords)
    }

    fn accepts_relay(
        &self,
        from: NodeId,
        _to: NodeId,
        _id: MessageId,
        source: NodeId,
        _keywords: &[Keyword],
    ) -> bool {
        from == source
    }
}

/// PRoPHET: history-based delivery predictabilities; a peer is a welcome
/// relay when it is a better bet for *some* destination of the message.
#[derive(Debug, Clone)]
pub struct ProphetBackend {
    dir: InterestDirectory,
    params: ProphetParams,
    tables: Vec<Predictability>,
}

impl ProphetBackend {
    /// Creates the backend for `node_count` nodes.
    #[must_use]
    pub fn new(node_count: usize, params: ProphetParams) -> Self {
        ProphetBackend {
            dir: InterestDirectory::new(node_count),
            params,
            tables: (0..node_count).map(|_| Predictability::default()).collect(),
        }
    }

    /// The delivery predictability `P(a, b)` as currently held by `a`.
    #[must_use]
    pub fn predictability(&self, a: NodeId, b: NodeId) -> f64 {
        self.tables[a.index()].get(b)
    }
}

impl RouterBackend for ProphetBackend {
    fn node_count(&self) -> usize {
        self.dir.node_count()
    }

    fn label(&self) -> &'static str {
        "PRoPHET"
    }

    fn subscribe(&mut self, node: NodeId, keyword: Keyword, _now: SimTime) {
        self.dir.subscribe(node, [keyword]);
    }

    fn is_destination(&self, node: NodeId, keywords: &[Keyword]) -> bool {
        self.dir.is_destination(node, keywords)
    }

    fn interest_sum(&self, node: NodeId, keywords: &[Keyword]) -> f64 {
        directory_sum(&self.dir, node, keywords)
    }

    fn mean_weight(&self, node: NodeId, keywords: &[Keyword]) -> f64 {
        directory_mean(&self.dir, node, keywords)
    }

    fn accepts_relay(
        &self,
        from: NodeId,
        to: NodeId,
        _id: MessageId,
        source: NodeId,
        keywords: &[Keyword],
    ) -> bool {
        self.dir
            .destinations_for(keywords, source)
            .into_iter()
            .any(|d| self.tables[to.index()].get(d) > self.tables[from.index()].get(d))
    }

    fn on_contact_open(&mut self, now: SimTime, a: NodeId, b: NodeId) {
        // Verbatim `ProphetRouter::update_pair`: age both, bump the mutual
        // encounter, then apply transitivity against pre-transit snapshots.
        let now = now.as_secs();
        self.tables[a.index()].age(now, &self.params);
        self.tables[b.index()].age(now, &self.params);
        self.tables[a.index()].encounter(b, &self.params);
        self.tables[b.index()].encounter(a, &self.params);
        let snap_a = self.tables[a.index()].snapshot();
        let snap_b = self.tables[b.index()].snapshot();
        self.tables[a.index()].transit(b, &snap_b, &self.params);
        self.tables[b.index()].transit(a, &snap_a, &self.params);
    }

    fn snapshot_state(&self) -> serde::Value {
        self.tables
            .iter()
            .map(Predictability::export_state)
            .collect::<Vec<_>>()
            .to_value()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        let tables = Vec::<crate::prophet::PredictabilityState>::from_value(state)
            .map_err(|e| format!("PRoPHET tables do not parse: {e}"))?;
        if tables.len() != self.tables.len() {
            return Err(format!(
                "snapshot has {} PRoPHET tables for {} nodes",
                tables.len(),
                self.tables.len()
            ));
        }
        for (table, doc) in self.tables.iter_mut().zip(&tables) {
            table.import_state(doc);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Value types: the backend grid
// ---------------------------------------------------------------------------

/// A selectable routing backend, serializable for scenarios and sweep
/// cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendKind {
    /// The paper's ChitChat substrate (the two `Arm`s live here).
    ChitChat,
    /// Epidemic flooding.
    Epidemic,
    /// Direct Delivery.
    DirectDelivery,
    /// Binary Spray-and-Wait with the given ticket budget.
    SprayAndWait(u32),
    /// Two-Hop Relay.
    TwoHop,
    /// PRoPHET (RFC 6693 defaults).
    Prophet,
}

impl BackendKind {
    /// Every backend, one per family — the exhaustive grid axis. Adding a
    /// variant without extending this array fails the wildcard-free match
    /// in `index`, so the grid can never silently miss a backend.
    pub const ALL: [BackendKind; 6] = [
        BackendKind::ChitChat,
        BackendKind::Epidemic,
        BackendKind::DirectDelivery,
        BackendKind::SprayAndWait(8),
        BackendKind::TwoHop,
        BackendKind::Prophet,
    ];

    /// Stable cache-key tag.
    #[must_use]
    pub fn tag(self) -> String {
        match self {
            BackendKind::ChitChat => "chitchat".to_string(),
            BackendKind::Epidemic => "epidemic".to_string(),
            BackendKind::DirectDelivery => "direct".to_string(),
            BackendKind::SprayAndWait(n) => format!("spray{n}"),
            BackendKind::TwoHop => "twohop".to_string(),
            BackendKind::Prophet => "prophet".to_string(),
        }
    }

    /// Human-readable name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::ChitChat => "ChitChat",
            BackendKind::Epidemic => "Epidemic",
            BackendKind::DirectDelivery => "Direct Delivery",
            BackendKind::SprayAndWait(_) => "Spray-and-Wait",
            BackendKind::TwoHop => "Two-Hop Relay",
            BackendKind::Prophet => "PRoPHET",
        }
    }

    /// The variant's position in [`BackendKind::ALL`] — a wildcard-free
    /// match, so the compiler enforces that `ALL` and the enum stay in
    /// lock-step.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            BackendKind::ChitChat => 0,
            BackendKind::Epidemic => 1,
            BackendKind::DirectDelivery => 2,
            BackendKind::SprayAndWait(_) => 3,
            BackendKind::TwoHop => 4,
            BackendKind::Prophet => 5,
        }
    }

    /// Builds the backend for `node_count` nodes. ChitChat takes the
    /// scenario's `chitchat` params; the others use their canonical
    /// defaults.
    ///
    /// # Panics
    ///
    /// Panics for `SprayAndWait(0)` (scenario validation rejects it
    /// earlier).
    #[must_use]
    pub fn instantiate(
        self,
        node_count: usize,
        chitchat: &ChitChatParams,
    ) -> Box<dyn RouterBackend> {
        match self {
            BackendKind::ChitChat => Box::new(ChitChatBackend::new(node_count, *chitchat)),
            BackendKind::Epidemic => Box::new(EpidemicBackend::new(node_count)),
            BackendKind::DirectDelivery => Box::new(DirectBackend::new(node_count)),
            BackendKind::SprayAndWait(copies) => Box::new(SprayBackend::new(node_count, copies)),
            BackendKind::TwoHop => Box::new(TwoHopBackend::new(node_count)),
            BackendKind::Prophet => {
                Box::new(ProphetBackend::new(node_count, ProphetParams::default()))
            }
        }
    }

    /// Parses a CLI spelling: `chitchat`, `epidemic`, `direct`,
    /// `spray[:N]` (also the tag spelling `sprayN`), `twohop`, `prophet`.
    ///
    /// # Errors
    ///
    /// Returns a description of the accepted spellings on no match.
    pub fn parse(text: &str) -> Result<Self, String> {
        let lower = text.to_ascii_lowercase();
        let spray_count = lower
            .strip_prefix("spray:")
            .or_else(|| lower.strip_prefix("spray").filter(|rest| !rest.is_empty()));
        if let Some(n) = spray_count {
            let copies: u32 = n
                .parse()
                .map_err(|_| format!("bad spray ticket count {n:?}"))?;
            if copies == 0 {
                return Err("spray needs at least one ticket".to_string());
            }
            return Ok(BackendKind::SprayAndWait(copies));
        }
        match lower.as_str() {
            "chitchat" => Ok(BackendKind::ChitChat),
            "epidemic" => Ok(BackendKind::Epidemic),
            "direct" => Ok(BackendKind::DirectDelivery),
            "spray" => Ok(BackendKind::SprayAndWait(8)),
            "twohop" => Ok(BackendKind::TwoHop),
            "prophet" => Ok(BackendKind::Prophet),
            _ => Err(format!(
                "unknown router {text:?} (expected chitchat|epidemic|direct|spray[:N]|twohop|prophet)"
            )),
        }
    }
}

/// Whether the incentive mechanism wraps the backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Overlay {
    /// Credits + reputation + enrichment active (the paper's mechanism).
    On,
    /// Plain routing under the same behavior models (the baseline).
    Off,
}

impl Overlay {
    /// Both overlay states — the second grid axis.
    pub const BOTH: [Overlay; 2] = [Overlay::On, Overlay::Off];

    /// Stable cache-key tag.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Overlay::On => "on",
            Overlay::Off => "off",
        }
    }

    /// Human-readable name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Overlay::On => "Incentive",
            Overlay::Off => "Plain",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_and_index_stay_in_lock_step() {
        for (i, kind) in BackendKind::ALL.into_iter().enumerate() {
            assert_eq!(kind.index(), i, "{}", kind.tag());
        }
        let tags: Vec<String> = BackendKind::ALL.iter().map(|k| k.tag()).collect();
        let mut unique = tags.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), tags.len(), "tags are distinct: {tags:?}");
    }

    #[test]
    fn parse_covers_every_spelling() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(&kind.tag()), Ok(kind));
        }
        assert_eq!(
            BackendKind::parse("spray"),
            Ok(BackendKind::SprayAndWait(8))
        );
        assert_eq!(
            BackendKind::parse("SPRAY:4"),
            Ok(BackendKind::SprayAndWait(4))
        );
        assert!(BackendKind::parse("spray:0").is_err());
        assert!(BackendKind::parse("flood").is_err());
    }

    #[test]
    fn chitchat_backend_mirrors_the_relay_rule() {
        let params = ChitChatParams::paper_default();
        let mut b = ChitChatBackend::new(3, params);
        b.subscribe(NodeId(1), Keyword(7), SimTime::ZERO);
        assert!(b.is_destination(NodeId(1), &[Keyword(7)]));
        assert!(!b.is_destination(NodeId(0), &[Keyword(7)]));
        // n1 has positive weight on k7, n0 and n2 have none: n1 accepts as
        // a relay from n0, but n0 never accepts from n1.
        assert!(b.accepts_relay(NodeId(0), NodeId(1), MessageId(0), NodeId(0), &[Keyword(7)]));
        assert!(!b.accepts_relay(NodeId(1), NodeId(0), MessageId(0), NodeId(1), &[Keyword(7)]));
        assert!(b.interest_sum(NodeId(1), &[Keyword(7)]) > 0.0);
    }

    #[test]
    fn spray_escrow_grants_and_refunds() {
        let mut b = SprayBackend::new(4, 8);
        let (src, relay, id) = (NodeId(0), NodeId(1), MessageId(3));
        b.on_message_created(src, id);
        assert_eq!(b.tickets(src, id), 8);
        assert!(b.accepts_relay(src, relay, id, src, &[]));

        // Successful relay hand-off: half the tickets move.
        b.on_send_initiated(src, relay, id, false);
        assert_eq!(b.tickets(src, id), 4);
        b.on_stored(src, relay, id);
        assert_eq!(b.tickets(relay, id), 4);

        // Failed hand-off: the escrowed grant returns to the sender.
        b.on_send_initiated(src, NodeId(2), id, false);
        assert_eq!(b.tickets(src, id), 2);
        b.on_send_failed(src, NodeId(2), id);
        assert_eq!(b.tickets(src, id), 4);

        // Delivery consumes nothing.
        b.on_send_initiated(src, NodeId(3), id, true);
        assert_eq!(b.tickets(src, id), 4);
        b.on_stored(src, NodeId(3), id);
        assert_eq!(b.tickets(NodeId(3), id), 0);

        // A single ticket stops relaying.
        b.on_removed(src, &[id]);
        assert_eq!(b.tickets(src, id), 0);
        assert!(!b.accepts_relay(src, relay, id, src, &[]));
    }

    #[test]
    fn prophet_backend_tracks_encounters() {
        let mut b = ProphetBackend::new(3, ProphetParams::default());
        b.subscribe(NodeId(2), Keyword(1), SimTime::ZERO);
        b.on_contact_open(SimTime::from_secs(10.0), NodeId(1), NodeId(2));
        assert_eq!(b.predictability(NodeId(1), NodeId(2)), 0.75);
        // n1 is now a better bet for destination n2 than the source n0.
        assert!(b.accepts_relay(NodeId(0), NodeId(1), MessageId(0), NodeId(0), &[Keyword(1)]));
        assert!(!b.accepts_relay(NodeId(1), NodeId(0), MessageId(0), NodeId(1), &[Keyword(1)]));
    }

    #[test]
    fn direct_and_twohop_restrict_relaying() {
        let d = DirectBackend::new(3);
        assert!(d.may_offer(NodeId(0), NodeId(0)));
        assert!(!d.may_offer(NodeId(1), NodeId(0)));
        assert!(!d.accepts_relay(NodeId(0), NodeId(1), MessageId(0), NodeId(0), &[]));

        let t = TwoHopBackend::new(3);
        assert!(t.accepts_relay(NodeId(0), NodeId(1), MessageId(0), NodeId(0), &[]));
        assert!(!t.accepts_relay(NodeId(1), NodeId(2), MessageId(0), NodeId(0), &[]));

        let e = EpidemicBackend::new(3);
        assert!(e.accepts_relay(NodeId(1), NodeId(2), MessageId(0), NodeId(0), &[]));
    }
}
