//! A static interest directory for the node-centric baselines.
//!
//! The classic baselines (Epidemic, Direct Delivery, Spray-and-Wait,
//! Two-Hop) do not model transient social relationships — they only need to
//! know, on reception, whether the receiving node is a destination. The
//! directory stores each node's *direct* interests, fixed for the run, so
//! every protocol is measured against the same delivery criterion.

use std::collections::HashSet;

use dtn_sim::message::Keyword;
use dtn_sim::world::NodeId;

/// Fixed per-node direct-interest sets.
#[derive(Debug, Clone, Default)]
pub struct InterestDirectory {
    interests: Vec<HashSet<Keyword>>,
}

impl InterestDirectory {
    /// Creates an empty directory for `node_count` nodes.
    #[must_use]
    pub fn new(node_count: usize) -> Self {
        InterestDirectory {
            interests: vec![HashSet::new(); node_count],
        }
    }

    /// Subscribes `node` to `keywords`.
    pub fn subscribe(&mut self, node: NodeId, keywords: impl IntoIterator<Item = Keyword>) {
        self.interests[node.index()].extend(keywords);
    }

    /// Whether `node` holds a direct interest in any of `keywords`.
    #[must_use]
    pub fn is_destination(&self, node: NodeId, keywords: &[Keyword]) -> bool {
        let set = &self.interests[node.index()];
        keywords.iter().any(|k| set.contains(k))
    }

    /// The interests of `node`.
    #[must_use]
    pub fn interests_of(&self, node: NodeId) -> &HashSet<Keyword> {
        &self.interests[node.index()]
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.interests.len()
    }

    /// All nodes with a direct interest in any of `keywords`, excluding
    /// `except` (typically the source), sorted.
    #[must_use]
    pub fn destinations_for(&self, keywords: &[Keyword], except: NodeId) -> Vec<NodeId> {
        (0..self.interests.len() as u32)
            .map(NodeId)
            .filter(|&n| n != except && self.is_destination(n, keywords))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscribe_and_query() {
        let mut d = InterestDirectory::new(3);
        d.subscribe(NodeId(1), [Keyword(1), Keyword(2)]);
        d.subscribe(NodeId(2), [Keyword(2)]);
        assert!(d.is_destination(NodeId(1), &[Keyword(1)]));
        assert!(!d.is_destination(NodeId(0), &[Keyword(1)]));
        assert!(!d.is_destination(NodeId(1), &[Keyword(9)]));
        assert_eq!(
            d.destinations_for(&[Keyword(2)], NodeId(2)),
            vec![NodeId(1)]
        );
        assert_eq!(d.interests_of(NodeId(2)).len(), 1);
        assert_eq!(d.node_count(), 3);
    }
}
